//! An executable, untimed reference model of the complete UIPI + xUI
//! system: threads, cores, the kernel's bookkeeping (SN bit, slow path,
//! migration, timer and forwarding multiplexing), and delivery.
//!
//! This model captures the *protocol* — who updates which descriptor when —
//! with no notion of cycles. The cycle-level simulator (`xui-sim`) and the
//! OS model (`xui-kernel`) implement the same transitions with timing; the
//! property tests here establish that the protocol itself never loses or
//! invents interrupts across arbitrary interleavings of sends, context
//! switches, migrations and deliveries.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::XuiError;
use crate::forwarding::{ApicForwarding, Dupid, ForwardDecision, VectorBitmap};
use crate::kb_timer::{KbTimer, TimerMode};
use crate::receiver::{notification_processing, ReceiverState};
use crate::sender::{senduipi, MapUpidMemory, UpidMemory};
use crate::uitt::{Uitt, UittIndex, UpidAddr};
use crate::upid::Upid;
use crate::vectors::{ApicId, UserVector, Vector};

/// Identifier of a thread in the protocol model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub usize);

/// Identifier of a core in the protocol model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadState {
    upid_addr: Option<UpidAddr>,
    receiver: ReceiverState,
    uitt: Uitt,
    running_on: Option<CoreId>,
    dupid: Dupid,
    saved_active: VectorBitmap,
    saved_timer: Option<crate::kb_timer::KbTimerState>,
    kb_timer_enabled: Option<UserVector>,
    delivered: Vec<UserVector>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoreState {
    apic_id: ApicId,
    current: Option<ThreadId>,
    forwarding: ApicForwarding,
    kb_timer: KbTimer,
}

/// The whole-system protocol model.
///
/// # Examples
///
/// ```
/// use xui_core::model::ProtocolModel;
/// use xui_core::vectors::UserVector;
///
/// let mut sys = ProtocolModel::new(2);
/// let sender = sys.create_thread();
/// let receiver = sys.create_thread();
/// sys.register_handler(receiver, 0x4000)?;
/// let idx = sys.register_sender(sender, receiver, UserVector::new(3)?)?;
///
/// sys.schedule(receiver, xui_core::model::CoreId(1))?;
/// sys.schedule(sender, xui_core::model::CoreId(0))?;
/// sys.senduipi(sender, idx)?;
/// let delivered = sys.run_pending(receiver)?;
/// assert_eq!(delivered, vec![UserVector::new(3)?]);
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolModel {
    mem: MapUpidMemory,
    threads: Vec<ThreadState>,
    cores: Vec<CoreState>,
    next_upid_addr: u64,
    /// The conventional vector the kernel assigned for UIPI notifications
    /// (the `UINV` MSR value).
    pub uinv: Vector,
    forward_owner: HashMap<(usize, u8), ThreadId>,
    now: u64,
}

impl ProtocolModel {
    /// Creates a model with `core_count` idle cores.
    #[must_use]
    pub fn new(core_count: usize) -> Self {
        Self {
            mem: MapUpidMemory::new(),
            threads: Vec::new(),
            cores: (0..core_count)
                .map(|i| CoreState {
                    apic_id: ApicId::new(i as u32),
                    current: None,
                    forwarding: ApicForwarding::new(),
                    kb_timer: KbTimer::new(),
                })
                .collect(),
            next_upid_addr: 0x1000,
            uinv: Vector::new(0xec),
            forward_owner: HashMap::new(),
            now: 0,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Current model time (advanced by [`ProtocolModel::advance_time`]).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Creates a new, unscheduled thread.
    pub fn create_thread(&mut self) -> ThreadId {
        self.threads.push(ThreadState {
            upid_addr: None,
            receiver: ReceiverState::new(0),
            uitt: Uitt::new(),
            running_on: None,
            dupid: Dupid::new(),
            saved_active: VectorBitmap::new(),
            saved_timer: None,
            kb_timer_enabled: None,
            delivered: Vec::new(),
        });
        ThreadId(self.threads.len() - 1)
    }

    fn thread(&self, tid: ThreadId) -> Result<&ThreadState, XuiError> {
        self.threads
            .get(tid.0)
            .ok_or(XuiError::UnknownThread { thread: tid.0 })
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Result<&mut ThreadState, XuiError> {
        self.threads
            .get_mut(tid.0)
            .ok_or(XuiError::UnknownThread { thread: tid.0 })
    }

    fn core(&self, core: CoreId) -> Result<&CoreState, XuiError> {
        self.cores
            .get(core.0)
            .ok_or(XuiError::UnknownCore { core: core.0 })
    }

    /// `register_handler(...)` system call (§3.2): allocates a UPID, wires
    /// the handler entry point, and enables user-interrupt reception
    /// (`stui`). The UPID starts with `SN` set because the thread is not
    /// yet running.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn register_handler(&mut self, tid: ThreadId, handler: u64) -> Result<UpidAddr, XuiError> {
        let addr = UpidAddr(self.next_upid_addr);
        self.next_upid_addr += 64; // one cache line per descriptor
        self.register_handler_at(tid, handler, addr)?;
        Ok(addr)
    }

    /// Like [`ProtocolModel::register_handler`], but the caller supplies
    /// the descriptor address — the entry point for a kernel that places
    /// UPIDs through a bitmap slot allocator instead of this model's
    /// bump pointer. Writing to an address that already holds a UPID
    /// replaces it (slot reuse).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn register_handler_at(
        &mut self,
        tid: ThreadId,
        handler: u64,
        addr: UpidAddr,
    ) -> Result<(), XuiError> {
        let uinv = self.uinv;
        let running = self.thread(tid)?.running_on;
        let apic = match running {
            Some(core) => self.core(core)?.apic_id,
            None => ApicId::new(0),
        };
        let mut upid = Upid::new();
        upid.set_nv(uinv);
        upid.set_ndst(apic);
        upid.set_sn(running.is_none());
        self.mem.insert(addr, upid);
        let thread = self.thread_mut(tid)?;
        thread.upid_addr = Some(addr);
        thread.receiver = ReceiverState::new(handler);
        thread.receiver.uif.stui();
        Ok(())
    }

    /// `register_sender(...)` system call (§3.2): adds a UITT entry in the
    /// sender's table pointing at the receiver's UPID.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::HandlerNotRegistered`] if the receiver has no
    /// UPID yet, or [`XuiError::UnknownThread`] for bad ids.
    pub fn register_sender(
        &mut self,
        sender: ThreadId,
        receiver: ThreadId,
        vector: UserVector,
    ) -> Result<UittIndex, XuiError> {
        let upid_addr = self
            .thread(receiver)?
            .upid_addr
            .ok_or(XuiError::HandlerNotRegistered { thread: receiver.0 })?;
        Ok(self.thread_mut(sender)?.uitt.register(upid_addr, vector))
    }

    /// Like [`ProtocolModel::register_sender`], but writes the entry at a
    /// caller-chosen UITT slot — the entry point for a kernel whose
    /// bitmap allocator picks the slot (so freed entries are reused
    /// instead of the table growing forever).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::HandlerNotRegistered`] if the receiver has no
    /// UPID yet, or [`XuiError::UnknownThread`] for bad ids.
    pub fn register_sender_at(
        &mut self,
        sender: ThreadId,
        receiver: ThreadId,
        vector: UserVector,
        index: UittIndex,
    ) -> Result<(), XuiError> {
        let upid_addr = self
            .thread(receiver)?
            .upid_addr
            .ok_or(XuiError::HandlerNotRegistered { thread: receiver.0 })?;
        self.thread_mut(sender)?.uitt.register_at(index, upid_addr, vector);
        Ok(())
    }

    /// Invalidates one of `sender`'s UITT entries (route teardown);
    /// subsequent `senduipi` through this index faults.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::InvalidUittIndex`] if the index is out of
    /// range, or [`XuiError::UnknownThread`] for a bad id.
    pub fn invalidate_sender(&mut self, sender: ThreadId, index: UittIndex) -> Result<(), XuiError> {
        self.thread_mut(sender)?.uitt.invalidate(index)
    }

    /// The address of `tid`'s UPID, if a handler has been registered.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn upid_addr_of(&self, tid: ThreadId) -> Result<Option<UpidAddr>, XuiError> {
        Ok(self.thread(tid)?.upid_addr)
    }

    /// Schedules `tid` onto `core` (kernel context-switch-in, §3.2 &
    /// §4.3 & §4.5):
    ///
    /// - clears `SN` and rewrites `NDST` (handles migration);
    /// - reposts any vectors that were parked in `PIR`/`DUPID` while the
    ///   thread was out (the kernel's slow-path self-repost);
    /// - restores KB_Timer state and the forwarded-active bitmap.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::CoreBusy`] if the core already runs a thread.
    pub fn schedule(&mut self, tid: ThreadId, core: CoreId) -> Result<(), XuiError> {
        if let Some(cur) = self.core(core)?.current {
            if cur != tid {
                return Err(XuiError::CoreBusy { core: core.0 });
            }
            return Ok(());
        }
        self.thread(tid)?; // validate
        let apic = self.core(core)?.apic_id;

        // Descriptor bookkeeping.
        let (upid_addr, parked_dupid, saved_active, saved_timer, kb_enabled) = {
            let thread = self.thread_mut(tid)?;
            thread.running_on = Some(core);
            (
                thread.upid_addr,
                thread.dupid.take(),
                thread.saved_active,
                thread.saved_timer.take(),
                thread.kb_timer_enabled,
            )
        };

        let mut reposted = 0u64;
        if let Some(addr) = upid_addr {
            self.mem.rmw_upid(addr, &mut |upid| {
                upid.set_sn(false);
                upid.set_ndst(apic);
                upid.set_on(false);
                reposted = upid.take_pir();
            })?;
        }
        {
            let thread = self.thread_mut(tid)?;
            thread.receiver.uirr.merge_pir(reposted);
            thread.receiver.uirr.merge_pir(parked_dupid);
        }

        let core_state = &mut self.cores[core.0];
        core_state.current = Some(tid);
        core_state.forwarding.load_active(saved_active);
        match kb_enabled {
            Some(vector) => {
                core_state.kb_timer.enable(vector);
                if let Some(state) = saved_timer {
                    core_state.kb_timer.restore_state(state)?;
                }
            }
            None => core_state.kb_timer.disable(),
        }
        Ok(())
    }

    /// Removes the current thread from `core` (kernel context-switch-out):
    /// sets `SN`, saves KB_Timer state and the forwarded-active bitmap.
    ///
    /// Returns the descheduled thread, if the core was busy.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownCore`] for a bad core id.
    pub fn deschedule(&mut self, core: CoreId) -> Result<Option<ThreadId>, XuiError> {
        let Some(tid) = self.core(core)?.current else {
            return Ok(None);
        };
        let upid_addr = self.thread(tid)?.upid_addr;
        if let Some(addr) = upid_addr {
            self.mem.rmw_upid(addr, &mut |upid| upid.set_sn(true))?;
        }
        let core_state = &mut self.cores[core.0];
        let saved_active = core_state.forwarding.save_active();
        // No thread is in context: every forwarded vector must fall back
        // to the slow path until the owner resumes (§4.5).
        core_state.forwarding.load_active(VectorBitmap::new());
        let saved_timer = core_state.kb_timer.save_state();
        core_state.kb_timer.clear_timer();
        core_state.current = None;
        let thread = self.thread_mut(tid)?;
        thread.running_on = None;
        thread.saved_active = saved_active;
        thread.saved_timer = saved_timer;
        Ok(Some(tid))
    }

    /// Executes `senduipi` on behalf of `sender` (§3.3 steps (1)–(4)).
    ///
    /// Because the model is untimed, the notification IPI "arrives"
    /// immediately: if the destination thread is in context on the
    /// destination core, notification processing runs (PIR drains into its
    /// UIRR). Otherwise the vector stays posted in the UPID for the
    /// kernel's resume-time repost.
    ///
    /// # Errors
    ///
    /// Propagates UITT/UPID lookup failures.
    pub fn senduipi(&mut self, sender: ThreadId, index: UittIndex) -> Result<(), XuiError> {
        let uitt = self.thread(sender)?.uitt.clone();
        let outcome = senduipi(&uitt, &mut self.mem, index)?;
        let Some(ipi) = outcome.ipi else {
            return Ok(());
        };
        // The IPI lands on the core named by NDST. If that core currently
        // runs a thread whose UPID matches, notification processing moves
        // PIR → UIRR; otherwise the kernel captures it (slow path) and the
        // vector is reposted when the thread next runs.
        let entry = uitt.lookup(index)?;
        let dest_core = self
            .cores
            .iter()
            .position(|c| c.apic_id == ipi.dest)
            .map(CoreId);
        if let Some(core) = dest_core {
            if let Some(cur) = self.cores[core.0].current {
                if self.threads[cur.0].upid_addr == Some(entry.upid) {
                    let mut uirr = self.threads[cur.0].receiver.uirr;
                    notification_processing(&mut self.mem, entry.upid, &mut uirr)?;
                    self.threads[cur.0].receiver.uirr = uirr;
                }
            }
        }
        Ok(())
    }

    /// Kernel side: enables the KB_Timer feature for a thread and assigns
    /// its delivery vector (`enable_kb_timer()` syscall, §4.3).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn enable_kb_timer(&mut self, tid: ThreadId, vector: UserVector) -> Result<(), XuiError> {
        let running = self.thread(tid)?.running_on;
        self.thread_mut(tid)?.kb_timer_enabled = Some(vector);
        if let Some(core) = running {
            self.cores[core.0].kb_timer.enable(vector);
        }
        Ok(())
    }

    /// User side: `set_timer(cycles, mode)` on the thread's current core.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::ThreadNotRunning`] if the thread is out of
    /// context, or [`XuiError::KbTimerDisabled`] if the kernel has not
    /// enabled the feature.
    pub fn set_timer(
        &mut self,
        tid: ThreadId,
        cycles: u64,
        mode: TimerMode,
    ) -> Result<(), XuiError> {
        let core = self
            .thread(tid)?
            .running_on
            .ok_or(XuiError::ThreadNotRunning { thread: tid.0 })?;
        let now = self.now;
        self.cores[core.0].kb_timer.set_timer(cycles, mode, now)
    }

    /// Registers `tid` to receive forwarded device interrupts arriving on
    /// `vector` at `core`, returning the assigned user vector (§4.5).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::VectorAlreadyForwarded`] if the conventional
    /// vector is taken on that core.
    pub fn register_forwarding(
        &mut self,
        tid: ThreadId,
        core: CoreId,
        vector: Vector,
        uv: UserVector,
    ) -> Result<(), XuiError> {
        self.thread(tid)?;
        let core_state = self
            .cores
            .get_mut(core.0)
            .ok_or(XuiError::UnknownCore { core: core.0 })?;
        core_state.forwarding.map(vector, uv)?;
        self.forward_owner.insert((core.0, vector.as_u8()), tid);
        // If the registering thread is currently running there, its
        // active bit is set immediately; otherwise it is loaded from the
        // saved bitmap on its next resume.
        if core_state.current == Some(tid) {
            core_state.forwarding.activate(vector);
        } else {
            let mut saved = self.threads[tid.0].saved_active;
            saved.set(vector);
            self.threads[tid.0].saved_active = saved;
        }
        Ok(())
    }

    /// A device interrupt arrives at `core` on conventional `vector`
    /// (§4.5 worked example). Fast path posts to the running thread's
    /// UIRR; slow path parks in the registered thread's DUPID.
    ///
    /// Returns the routing decision for inspection.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownCore`] for a bad core id.
    pub fn device_interrupt(
        &mut self,
        core: CoreId,
        vector: Vector,
    ) -> Result<ForwardDecision, XuiError> {
        let decision = self.core(core)?.forwarding.route(vector);
        match decision {
            ForwardDecision::Legacy => {}
            ForwardDecision::FastPath(uv) => {
                let tid = self.cores[core.0]
                    .current
                    .expect("fast path requires a running thread");
                self.threads[tid.0].receiver.uirr.post(uv);
            }
            ForwardDecision::SlowPath(uv) => {
                if let Some(&tid) = self.forward_owner.get(&(core.0, vector.as_u8())) {
                    self.threads[tid.0].dupid.post(uv);
                }
            }
        }
        Ok(decision)
    }

    /// Advances model time, firing any KB_Timer whose deadline passed and
    /// posting its vector to the thread running on that core.
    pub fn advance_time(&mut self, to: u64) {
        self.now = self.now.max(to);
        for core in &mut self.cores {
            if let (Some(tid), Some(uv)) = (core.current, core.kb_timer.poll(self.now)) {
                self.threads[tid.0].receiver.uirr.post(uv);
            }
        }
    }

    /// Delivers every deliverable pending user interrupt on `tid`
    /// (handler modelled as instantaneous: deliver → log → `uiret`).
    /// Returns the vectors delivered, in delivery order.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::ThreadNotRunning`] if the thread is out of
    /// context — delivery only happens to running threads.
    pub fn run_pending(&mut self, tid: ThreadId) -> Result<Vec<UserVector>, XuiError> {
        if self.thread(tid)?.running_on.is_none() {
            return Err(XuiError::ThreadNotRunning { thread: tid.0 });
        }
        let thread = self.thread_mut(tid)?;
        let mut delivered = Vec::new();
        while let Some(d) = thread.receiver.try_deliver(0, 0) {
            delivered.push(d.frame.vector);
            thread.delivered.push(d.frame.vector);
            thread.receiver.uiret();
        }
        Ok(delivered)
    }

    /// The `clui` instruction on `tid`: clears UIF, masking user-interrupt
    /// delivery until `stui` (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn clui(&mut self, tid: ThreadId) -> Result<(), XuiError> {
        self.thread_mut(tid)?.receiver.uif.clui();
        Ok(())
    }

    /// The `stui` instruction on `tid`: sets UIF, re-enabling delivery.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn stui(&mut self, tid: ThreadId) -> Result<(), XuiError> {
        self.thread_mut(tid)?.receiver.uif.stui();
        Ok(())
    }

    /// The `testui` instruction: reads `tid`'s user-interrupt flag.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn testui(&self, tid: ThreadId) -> Result<bool, XuiError> {
        Ok(self.thread(tid)?.receiver.uif.testui())
    }

    /// All vectors ever delivered to `tid`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownThread`] for a bad id.
    pub fn delivered_log(&self, tid: ThreadId) -> Result<&[UserVector], XuiError> {
        Ok(&self.thread(tid)?.delivered)
    }

    /// Direct read of a thread's UPID (test/diagnostic aid).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::HandlerNotRegistered`] if the thread has no
    /// UPID.
    pub fn upid_of(&self, tid: ThreadId) -> Result<Upid, XuiError> {
        let addr = self
            .thread(tid)?
            .upid_addr
            .ok_or(XuiError::HandlerNotRegistered { thread: tid.0 })?;
        self.mem.load_upid(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    fn two_thread_setup() -> (ProtocolModel, ThreadId, ThreadId, UittIndex) {
        let mut sys = ProtocolModel::new(2);
        let sender = sys.create_thread();
        let receiver = sys.create_thread();
        sys.register_handler(receiver, 0x4000).unwrap();
        let idx = sys.register_sender(sender, receiver, uv(3)).unwrap();
        sys.schedule(sender, CoreId(0)).unwrap();
        (sys, sender, receiver, idx)
    }

    #[test]
    fn fast_path_send_and_deliver() {
        let (mut sys, sender, receiver, idx) = two_thread_setup();
        sys.schedule(receiver, CoreId(1)).unwrap();
        sys.senduipi(sender, idx).unwrap();
        assert_eq!(sys.run_pending(receiver).unwrap(), vec![uv(3)]);
        // UPID is fully drained afterwards.
        let upid = sys.upid_of(receiver).unwrap();
        assert!(!upid.on());
        assert_eq!(upid.pir(), 0);
    }

    #[test]
    fn slow_path_delivers_on_resume() {
        let (mut sys, sender, receiver, idx) = two_thread_setup();
        // Receiver not scheduled: SN is set, send posts without IPI.
        sys.senduipi(sender, idx).unwrap();
        let upid = sys.upid_of(receiver).unwrap();
        assert!(upid.sn());
        assert_eq!(upid.pir(), 1 << 3);
        // Resume: kernel reposts.
        sys.schedule(receiver, CoreId(1)).unwrap();
        assert_eq!(sys.run_pending(receiver).unwrap(), vec![uv(3)]);
    }

    #[test]
    fn migration_updates_ndst() {
        let (mut sys, sender, receiver, idx) = two_thread_setup();
        sys.schedule(receiver, CoreId(1)).unwrap();
        assert_eq!(sys.upid_of(receiver).unwrap().ndst(), ApicId::new(1));
        sys.deschedule(CoreId(1)).unwrap();
        sys.deschedule(CoreId(0)).unwrap();
        sys.schedule(receiver, CoreId(0)).unwrap();
        assert_eq!(sys.upid_of(receiver).unwrap().ndst(), ApicId::new(0));
        sys.schedule(sender, CoreId(1)).unwrap();
        sys.senduipi(sender, idx).unwrap();
        assert_eq!(sys.run_pending(receiver).unwrap(), vec![uv(3)]);
    }

    #[test]
    fn deschedule_sets_sn() {
        let (mut sys, _, receiver, _) = two_thread_setup();
        sys.schedule(receiver, CoreId(1)).unwrap();
        assert!(!sys.upid_of(receiver).unwrap().sn());
        let out = sys.deschedule(CoreId(1)).unwrap();
        assert_eq!(out, Some(receiver));
        assert!(sys.upid_of(receiver).unwrap().sn());
    }

    #[test]
    fn core_busy_rejected() {
        let (mut sys, _, receiver, _) = two_thread_setup();
        assert_eq!(
            sys.schedule(receiver, CoreId(0)),
            Err(XuiError::CoreBusy { core: 0 })
        );
    }

    #[test]
    fn kb_timer_fires_for_running_thread_and_multiplexes() {
        let mut sys = ProtocolModel::new(1);
        let a = sys.create_thread();
        let b = sys.create_thread();
        sys.register_handler(a, 0x1).unwrap();
        sys.register_handler(b, 0x2).unwrap();
        sys.enable_kb_timer(a, uv(1)).unwrap();
        sys.enable_kb_timer(b, uv(2)).unwrap();

        sys.schedule(a, CoreId(0)).unwrap();
        sys.set_timer(a, 1_000, TimerMode::Periodic).unwrap();
        sys.advance_time(1_000);
        assert_eq!(sys.run_pending(a).unwrap(), vec![uv(1)]);

        // Switch to b: a's timer state is saved; b has no armed timer.
        sys.deschedule(CoreId(0)).unwrap();
        sys.schedule(b, CoreId(0)).unwrap();
        sys.advance_time(2_500);
        assert_eq!(sys.run_pending(b).unwrap(), Vec::<UserVector>::new());

        // Back to a: its periodic timer resumes from the saved deadline.
        sys.deschedule(CoreId(0)).unwrap();
        sys.schedule(a, CoreId(0)).unwrap();
        sys.advance_time(2_600);
        assert_eq!(sys.run_pending(a).unwrap(), vec![uv(1)]);
    }

    #[test]
    fn forwarding_fast_and_slow_paths() {
        let mut sys = ProtocolModel::new(1);
        let t = sys.create_thread();
        sys.register_handler(t, 0x1).unwrap();
        sys.register_forwarding(t, CoreId(0), Vector::new(8), uv(4))
            .unwrap();

        // Not running → slow path parks in DUPID.
        let d = sys.device_interrupt(CoreId(0), Vector::new(8)).unwrap();
        assert_eq!(d, ForwardDecision::SlowPath(uv(4)));

        // Resume → DUPID reposts, pending delivers.
        sys.schedule(t, CoreId(0)).unwrap();
        assert_eq!(sys.run_pending(t).unwrap(), vec![uv(4)]);

        // Running → fast path.
        let d = sys.device_interrupt(CoreId(0), Vector::new(8)).unwrap();
        assert_eq!(d, ForwardDecision::FastPath(uv(4)));
        assert_eq!(sys.run_pending(t).unwrap(), vec![uv(4)]);
    }

    #[test]
    fn unmapped_device_vector_is_legacy() {
        let mut sys = ProtocolModel::new(1);
        let d = sys.device_interrupt(CoreId(0), Vector::new(9)).unwrap();
        assert_eq!(d, ForwardDecision::Legacy);
    }

    #[test]
    fn send_to_thread_running_elsewhere_is_captured_not_lost() {
        // Receiver scheduled on core 1, then migrates to core 0 while ON
        // is outstanding: the resume-time repost still delivers.
        let (mut sys, sender, receiver, idx) = two_thread_setup();
        sys.schedule(receiver, CoreId(1)).unwrap();
        sys.deschedule(CoreId(1)).unwrap();
        sys.senduipi(sender, idx).unwrap(); // SN set: posted, no IPI
        sys.schedule(receiver, CoreId(1)).unwrap();
        assert_eq!(sys.run_pending(receiver).unwrap(), vec![uv(3)]);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    #[derive(Debug, Clone)]
    enum Op {
        Send(u8),
        DescheduleReceiver,
        ScheduleReceiver(bool), // core choice
        Deliver,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..8).prop_map(Op::Send),
            Just(Op::DescheduleReceiver),
            any::<bool>().prop_map(Op::ScheduleReceiver),
            Just(Op::Deliver),
        ]
    }

    proptest! {
        /// Across arbitrary interleavings of sends, context switches,
        /// migrations and deliveries, after quiescing:
        /// - every vector that was ever sent has been delivered at least
        ///   once after its send (nothing lost);
        /// - nothing is delivered that was never sent (nothing invented);
        /// - per-vector delivery count never exceeds send count
        ///   (coalescing only merges, never amplifies).
        #[test]
        fn no_interrupt_lost_or_invented(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut sys = ProtocolModel::new(3);
            let sender = sys.create_thread();
            let receiver = sys.create_thread();
            sys.register_handler(receiver, 0x4000).unwrap();
            let mut idx_by_uv = Vec::new();
            for raw in 0..8u8 {
                idx_by_uv.push(sys.register_sender(sender, receiver, uv(raw)).unwrap());
            }
            sys.schedule(sender, CoreId(0)).unwrap();

            let mut sent = [0u32; 8];
            let mut receiver_core: Option<CoreId> = None;

            for op in ops {
                match op {
                    Op::Send(raw) => {
                        sys.senduipi(sender, idx_by_uv[raw as usize]).unwrap();
                        sent[raw as usize] += 1;
                    }
                    Op::DescheduleReceiver => {
                        if let Some(core) = receiver_core.take() {
                            sys.deschedule(core).unwrap();
                        }
                    }
                    Op::ScheduleReceiver(second) => {
                        if receiver_core.is_none() {
                            let core = if second { CoreId(2) } else { CoreId(1) };
                            sys.schedule(receiver, core).unwrap();
                            receiver_core = Some(core);
                        }
                    }
                    Op::Deliver => {
                        if receiver_core.is_some() {
                            sys.run_pending(receiver).unwrap();
                        }
                    }
                }
            }

            // Quiesce: make sure the receiver runs and drains everything.
            if receiver_core.is_none() {
                sys.schedule(receiver, CoreId(1)).unwrap();
            }
            sys.run_pending(receiver).unwrap();

            let mut delivered = [0u32; 8];
            for v in sys.delivered_log(receiver).unwrap() {
                delivered[v.index()] += 1;
            }
            for raw in 0..8usize {
                prop_assert!(delivered[raw] <= sent[raw],
                    "vector {raw}: delivered {} > sent {}", delivered[raw], sent[raw]);
                if sent[raw] > 0 {
                    prop_assert!(delivered[raw] >= 1,
                        "vector {raw}: sent {} times but never delivered", sent[raw]);
                }
            }
        }
    }

    #[derive(Debug, Clone)]
    enum FwdOp {
        DeviceIrq(u8),       // which of 4 forwarded conventional vectors fires
        TimerAdvance(u64),   // advance time (the KB_Timer may fire)
        Deschedule,
        Schedule,
        Deliver,
    }

    fn fwd_op_strategy() -> impl Strategy<Value = FwdOp> {
        prop_oneof![
            (0u8..4).prop_map(FwdOp::DeviceIrq),
            (100u64..5_000).prop_map(FwdOp::TimerAdvance),
            Just(FwdOp::Deschedule),
            Just(FwdOp::Schedule),
            Just(FwdOp::Deliver),
        ]
    }

    proptest! {
        /// Forwarded device interrupts and KB_Timer firings across
        /// arbitrary context-switch interleavings: fast path while the
        /// thread runs, DUPID parking while it doesn't — never losing a
        /// vector that fired at least once, never inventing one.
        #[test]
        fn forwarding_and_timers_never_lose_interrupts(
            ops in proptest::collection::vec(fwd_op_strategy(), 1..80),
        ) {
            let mut sys = ProtocolModel::new(1);
            let t = sys.create_thread();
            sys.register_handler(t, 0x100).unwrap();
            // Four forwarded device vectors (8..12 → uv 10..14) and a
            // periodic KB_Timer on uv 1.
            for i in 0u8..4 {
                sys.register_forwarding(t, CoreId(0), Vector::new(8 + i), uv(10 + i)).unwrap();
            }
            sys.enable_kb_timer(t, uv(1)).unwrap();
            sys.schedule(t, CoreId(0)).unwrap();
            sys.set_timer(t, 1_000, TimerMode::Periodic).unwrap();
            let mut running = true;
            let mut fired = [0u32; 64];
            let mut now = sys.now();

            for op in ops {
                match op {
                    FwdOp::DeviceIrq(i) => {
                        let d = sys.device_interrupt(CoreId(0), Vector::new(8 + i)).unwrap();
                        prop_assert_ne!(d, ForwardDecision::Legacy, "registered vector");
                        fired[(10 + i) as usize] += 1;
                    }
                    FwdOp::TimerAdvance(dt) => {
                        now += dt;
                        sys.advance_time(now);
                        // The timer posts only while its thread runs.
                    }
                    FwdOp::Deschedule => {
                        if running {
                            sys.deschedule(CoreId(0)).unwrap();
                            running = false;
                        }
                    }
                    FwdOp::Schedule => {
                        if !running {
                            sys.schedule(t, CoreId(0)).unwrap();
                            running = true;
                        }
                    }
                    FwdOp::Deliver => {
                        if running {
                            sys.run_pending(t).unwrap();
                        }
                    }
                }
            }
            if !running {
                sys.schedule(t, CoreId(0)).unwrap();
            }
            sys.run_pending(t).unwrap();

            let mut delivered = [0u32; 64];
            for v in sys.delivered_log(t).unwrap() {
                delivered[v.index()] += 1;
            }
            for raw in 10..14usize {
                prop_assert!(delivered[raw] <= fired[raw]);
                if fired[raw] > 0 {
                    prop_assert!(delivered[raw] >= 1,
                        "forwarded vector {raw} fired {} times but never delivered", fired[raw]);
                }
            }
            // Timer deliveries only on uv 1 and never on unfired vectors.
            for raw in (0..64).filter(|r| !(10..14).contains(r) && *r != 1) {
                prop_assert_eq!(delivered[raw], 0, "vector {} was never sourced", raw);
            }
        }
    }
}
