//! Identifier newtypes for the interrupt system: APIC IDs, conventional
//! 8-bit interrupt vectors, and the 6-bit user-vector space introduced by
//! UIPI (§3.1 of the paper).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::XuiError;

/// Physical APIC identifier of a core.
///
/// Interrupt routing in x86 addresses *cores* by APIC ID (§3.1: "Destinations
/// are cores (addressed by APICID)"). APIC IDs are assigned at startup and
/// rarely change; UIPI stores the destination core's APIC ID in the `NDST`
/// field of the [`Upid`](crate::upid::Upid) so senders can find the core a
/// thread currently runs on.
///
/// # Examples
///
/// ```
/// use xui_core::vectors::ApicId;
///
/// let id = ApicId::new(3);
/// assert_eq!(id.as_u32(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ApicId(u32);

impl ApicId {
    /// Creates an APIC ID from its raw 32-bit value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw 32-bit value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ApicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "apic{}", self.0)
    }
}

impl From<u32> for ApicId {
    fn from(raw: u32) -> Self {
        Self::new(raw)
    }
}

/// A conventional 8-bit interrupt vector (0–255).
///
/// This is the per-core vector space shared by devices, timers, IPIs and —
/// with UIPI — the notification vector (`UINV`) used to signal that a user
/// interrupt has been posted.
///
/// # Examples
///
/// ```
/// use xui_core::vectors::Vector;
///
/// let nv = Vector::new(0xec);
/// assert_eq!(nv.as_u8(), 0xec);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Vector(u8);

impl Vector {
    /// Creates a vector from its raw 8-bit value.
    #[must_use]
    pub const fn new(raw: u8) -> Self {
        Self(raw)
    }

    /// Returns the raw 8-bit value.
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the vector as a `usize` index (for bitmap addressing).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u8> for Vector {
    fn from(raw: u8) -> Self {
        Self::new(raw)
    }
}

/// Number of distinct user vectors (the paper's "6-bit user vector, or UV",
/// §3.1).
pub const USER_VECTOR_COUNT: u8 = 64;

/// A 6-bit user interrupt vector (0–63).
///
/// UIPI creates a vector space orthogonal to the per-core 8-bit space so
/// user interrupts do not compete with the kernel for scarce vectors
/// (§3.1 limitation (2)). The user vector is what the receiving handler
/// observes, and it indexes the 64-bit `PIR` field of the
/// [`Upid`](crate::upid::Upid) as well as the `UIRR` register.
///
/// Construction is checked: values ≥ 64 are rejected.
///
/// # Examples
///
/// ```
/// use xui_core::vectors::UserVector;
///
/// let uv = UserVector::new(5)?;
/// assert_eq!(uv.as_u8(), 5);
/// assert!(UserVector::new(64).is_err());
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserVector(u8);

impl UserVector {
    /// Creates a user vector, validating that it fits in 6 bits.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UserVectorOutOfRange`] if `raw >= 64`.
    pub const fn new(raw: u8) -> Result<Self, XuiError> {
        if raw < USER_VECTOR_COUNT {
            Ok(Self(raw))
        } else {
            Err(XuiError::UserVectorOutOfRange { raw })
        }
    }

    /// Creates a user vector from the low 6 bits of `raw`, discarding the
    /// high bits. Mirrors what hardware does when a wider field is
    /// truncated into the UV space.
    #[must_use]
    pub const fn from_truncated(raw: u8) -> Self {
        Self(raw % USER_VECTOR_COUNT)
    }

    /// Returns the raw 6-bit value.
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the vector as a `usize` index (for `PIR`/`UIRR` bit
    /// addressing).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the single-bit mask this vector occupies in a 64-bit
    /// posted-interrupt register.
    #[must_use]
    pub const fn bit(self) -> u64 {
        1u64 << self.0
    }

    /// Iterates over every user vector, in increasing priority order.
    pub fn all() -> impl Iterator<Item = Self> {
        (0..USER_VECTOR_COUNT).map(Self)
    }
}

impl fmt::Display for UserVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uv{}", self.0)
    }
}

impl TryFrom<u8> for UserVector {
    type Error = XuiError;

    fn try_from(raw: u8) -> Result<Self, Self::Error> {
        Self::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apic_id_round_trips() {
        let id = ApicId::new(42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(ApicId::from(42u32), id);
        assert_eq!(id.to_string(), "apic42");
    }

    #[test]
    fn vector_round_trips() {
        let v = Vector::new(0xec);
        assert_eq!(v.as_u8(), 0xec);
        assert_eq!(v.index(), 0xec);
        assert_eq!(Vector::from(0xecu8), v);
    }

    #[test]
    fn user_vector_accepts_six_bits() {
        for raw in 0..USER_VECTOR_COUNT {
            let uv = UserVector::new(raw).expect("in range");
            assert_eq!(uv.as_u8(), raw);
            assert_eq!(uv.bit(), 1u64 << raw);
        }
    }

    #[test]
    fn user_vector_rejects_out_of_range() {
        for raw in USER_VECTOR_COUNT..=u8::MAX {
            assert_eq!(
                UserVector::new(raw),
                Err(XuiError::UserVectorOutOfRange { raw })
            );
        }
    }

    #[test]
    fn user_vector_truncation_wraps_into_range() {
        assert_eq!(UserVector::from_truncated(64).as_u8(), 0);
        assert_eq!(UserVector::from_truncated(65).as_u8(), 1);
        assert_eq!(UserVector::from_truncated(255).as_u8(), 63);
    }

    #[test]
    fn user_vector_all_is_sorted_and_complete() {
        let all: Vec<_> = UserVector::all().collect();
        assert_eq!(all.len(), usize::from(USER_VECTOR_COUNT));
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ordering_matches_raw_values() {
        assert!(UserVector::new(3).unwrap() < UserVector::new(7).unwrap());
        assert!(Vector::new(1) < Vector::new(200));
    }
}
