//! The user-interrupt request register (UIRR).
//!
//! Notification processing drains the UPID's `PIR` into this 64-bit
//! per-core register (§3.3 step (4)); delivery then services the highest
//! pending user vector (step (5)). With xUI, the KB_Timer and interrupt
//! forwarding post into UIRR *directly*, skipping the UPID and its shared
//! memory traffic — that is where the 231 → 105 cycle reduction comes from
//! (§4.2 "Cheaper than shared memory notification?").

use serde::{Deserialize, Serialize};

use crate::vectors::UserVector;

/// The 64-bit user-interrupt request register (one bit per user vector).
///
/// # Examples
///
/// ```
/// use xui_core::uirr::Uirr;
/// use xui_core::vectors::UserVector;
///
/// let mut uirr = Uirr::new();
/// uirr.post(UserVector::new(3)?);
/// uirr.post(UserVector::new(40)?);
/// // Delivery services the highest pending vector first.
/// assert_eq!(uirr.take_highest(), UserVector::new(40).ok());
/// assert_eq!(uirr.take_highest(), UserVector::new(3).ok());
/// assert_eq!(uirr.take_highest(), None);
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Uirr {
    bits: u64,
}

impl Uirr {
    /// Creates an empty register.
    #[must_use]
    pub const fn new() -> Self {
        Self { bits: 0 }
    }

    /// Returns the raw pending bitmap.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// Posts one user vector.
    pub fn post(&mut self, uv: UserVector) {
        self.bits |= uv.bit();
    }

    /// Merges a whole `PIR` bitmap (the notification-processing step).
    pub fn merge_pir(&mut self, pir: u64) {
        self.bits |= pir;
    }

    /// True if no user interrupt is pending.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of pending user vectors.
    #[must_use]
    pub const fn pending_count(self) -> u32 {
        self.bits.count_ones()
    }

    /// Returns the highest pending vector without clearing it.
    #[must_use]
    pub fn peek_highest(self) -> Option<UserVector> {
        if self.bits == 0 {
            None
        } else {
            let idx = 63 - self.bits.leading_zeros() as u8;
            Some(UserVector::new(idx).expect("index of a u64 bit is < 64"))
        }
    }

    /// Clears and returns the highest pending vector — the one delivery
    /// services next (higher vectors have higher priority, matching APIC
    /// convention).
    pub fn take_highest(&mut self) -> Option<UserVector> {
        let uv = self.peek_highest()?;
        self.bits &= !uv.bit();
        Some(uv)
    }

    /// Clears every pending vector (used when state is migrated to the
    /// kernel on the slow path).
    pub fn drain(&mut self) -> u64 {
        core::mem::take(&mut self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    #[test]
    fn empty_register_has_nothing_pending() {
        let mut uirr = Uirr::new();
        assert!(uirr.is_empty());
        assert_eq!(uirr.pending_count(), 0);
        assert_eq!(uirr.peek_highest(), None);
        assert_eq!(uirr.take_highest(), None);
    }

    #[test]
    fn highest_priority_first() {
        let mut uirr = Uirr::new();
        uirr.post(uv(0));
        uirr.post(uv(63));
        uirr.post(uv(17));
        assert_eq!(uirr.pending_count(), 3);
        assert_eq!(uirr.take_highest(), Some(uv(63)));
        assert_eq!(uirr.take_highest(), Some(uv(17)));
        assert_eq!(uirr.take_highest(), Some(uv(0)));
        assert!(uirr.is_empty());
    }

    #[test]
    fn merge_pir_accumulates() {
        let mut uirr = Uirr::new();
        uirr.merge_pir(0b1010);
        uirr.merge_pir(0b0110);
        assert_eq!(uirr.bits(), 0b1110);
    }

    #[test]
    fn posting_same_vector_twice_coalesces() {
        let mut uirr = Uirr::new();
        uirr.post(uv(5));
        uirr.post(uv(5));
        assert_eq!(uirr.pending_count(), 1);
        assert_eq!(uirr.take_highest(), Some(uv(5)));
        assert_eq!(uirr.take_highest(), None);
    }

    #[test]
    fn drain_empties() {
        let mut uirr = Uirr::new();
        uirr.post(uv(1));
        uirr.post(uv(2));
        assert_eq!(uirr.drain(), 0b110);
        assert!(uirr.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Repeated take_highest returns exactly the set of posted vectors
        /// in strictly decreasing order.
        #[test]
        fn take_highest_enumerates_posted_set(bits in any::<u64>()) {
            let mut uirr = Uirr::new();
            uirr.merge_pir(bits);
            let mut seen = 0u64;
            let mut last: Option<u8> = None;
            while let Some(uv) = uirr.take_highest() {
                if let Some(prev) = last {
                    prop_assert!(uv.as_u8() < prev, "not strictly decreasing");
                }
                last = Some(uv.as_u8());
                seen |= uv.bit();
            }
            prop_assert_eq!(seen, bits);
            prop_assert!(uirr.is_empty());
        }
    }
}
