//! # xui-core
//!
//! An architectural model of Intel **UIPI** (user inter-processor
//! interrupts) and the **xUI** extensions from *"Extended User Interrupts
//! (xUI): Fast and Flexible Notification without Polling"* (ASPLOS '25):
//! tracked interrupts, the kernel-bypass timer (`KB_Timer`), hardware
//! safepoints, and interrupt forwarding.
//!
//! This crate contains the *protocol*: the descriptors (UPID per Table 1,
//! UITT, DUPID), the registers (UIF, UIRR, the APIC forwarding bitmaps,
//! KB_Timer state), the instruction semantics (`senduipi`, `uiret`,
//! `clui`/`stui`/`testui`, `set_timer`/`clear_timer`), and an executable
//! whole-system reference model ([`model::ProtocolModel`]). Timing lives in
//! the companion crates: `xui-sim` implements the same transitions at
//! cycle granularity in an out-of-order pipeline model, and `xui-des`-based
//! crates use the calibrated [`costs::CostModel`].
//!
//! ## Quick start
//!
//! ```
//! use xui_core::model::{CoreId, ProtocolModel};
//! use xui_core::vectors::UserVector;
//!
//! // A sender thread notifies a receiver thread with user vector 5.
//! let mut sys = ProtocolModel::new(2);
//! let sender = sys.create_thread();
//! let receiver = sys.create_thread();
//! sys.register_handler(receiver, 0x4000)?;
//! let route = sys.register_sender(sender, receiver, UserVector::new(5)?)?;
//! sys.schedule(sender, CoreId(0))?;
//! sys.schedule(receiver, CoreId(1))?;
//!
//! sys.senduipi(sender, route)?;
//! assert_eq!(sys.run_pending(receiver)?, vec![UserVector::new(5)?]);
//! # Ok::<(), xui_core::error::XuiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod error;
pub mod forwarding;
pub mod kb_timer;
pub mod model;
pub mod msr;
pub mod receiver;
pub mod safepoint;
pub mod sender;
pub mod uif;
pub mod uirr;
pub mod uitt;
pub mod upid;
pub mod vectors;

pub use costs::{CostModel, NotifyMechanism};
pub use error::XuiError;
pub use upid::Upid;
pub use vectors::{ApicId, UserVector, Vector};
