//! The UINTR model-specific-register file.
//!
//! Intel's UIPI exposes its per-thread state through a small set of MSRs
//! that the kernel context-switches (§3.1: "programmed through MSRs and
//! in-memory tables"). This module models that register file faithfully
//! enough to express the paper's mechanisms:
//!
//! | MSR | role |
//! |---|---|
//! | `IA32_UINTR_HANDLER` | user handler entry point |
//! | `IA32_UINTR_STACKADJUST` | stack adjustment/alternate stack on delivery |
//! | `IA32_UINTR_MISC` | `UINV` (notification vector) + `UITTSZ` (UITT size) |
//! | `IA32_UINTR_PD` | UPID address |
//! | `IA32_UINTR_TT` | UITT address (+ enable bit 0) |
//! | `IA32_UINTR_RR` | the UIRR posted-vector bitmap |
//!
//! xUI adds two more (§4.3): `KB_CONFIG` (enable + vector) and
//! `KB_TIMER_STATE` (deadline readout for context switches).
//!
//! Since the `uipi_abi` refactor the register file is a *view* over the
//! packed [`abi::MsrFile`] (addresses 0x985–0x98A): every write goes
//! through the typed interface with deterministic reserved-bit masking,
//! and [`UintrMsrs::pack`] exposes the 48-byte little-endian image the
//! byte-level differ compares across models.

use serde::{DeError, Deserialize, Serialize, Value};
use xui_uipi_abi::{self as abi, MsrFile, UintrMsr};

use crate::vectors::Vector;

/// The per-thread UINTR MSR file.
///
/// # Examples
///
/// ```
/// use xui_core::msr::UintrMsrs;
/// use xui_core::vectors::Vector;
///
/// let mut msrs = UintrMsrs::new();
/// msrs.set_handler(0x4000);
/// msrs.set_uinv(Vector::new(0xec));
/// msrs.set_uittsz(4);
/// let saved = msrs.xsave();
/// let restored = xui_core::msr::UintrMsrs::xrstor(saved);
/// assert_eq!(restored, msrs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UintrMsrs {
    file: MsrFile,
}

impl UintrMsrs {
    /// A zeroed register file (reset state: user interrupts disabled).
    #[must_use]
    pub const fn new() -> Self {
        Self { file: MsrFile::new() }
    }

    /// The packed register file this view reads and writes.
    #[must_use]
    pub const fn file(&self) -> &MsrFile {
        &self.file
    }

    /// Serializes the file's 48-byte little-endian image (MSRs in
    /// address order 0x985..=0x98A) — the form the byte differ compares.
    #[must_use]
    pub fn pack(&self) -> [u8; 48] {
        self.file.pack()
    }

    /// `IA32_UINTR_HANDLER`: the user handler entry point.
    #[must_use]
    pub const fn handler(&self) -> u64 {
        self.file.read(UintrMsr::Handler)
    }

    /// Writes `IA32_UINTR_HANDLER`.
    pub fn set_handler(&mut self, rip: u64) {
        self.file.write(UintrMsr::Handler, rip);
    }

    /// `IA32_UINTR_STACKADJUST`: delivery stack adjustment. Bit 0 selects
    /// "load as stack pointer" vs "subtract from current stack".
    #[must_use]
    pub const fn stack_adjust(&self) -> u64 {
        self.file.read(UintrMsr::StackAdjust)
    }

    /// Writes `IA32_UINTR_STACKADJUST`.
    pub fn set_stack_adjust(&mut self, v: u64) {
        self.file.write(UintrMsr::StackAdjust, v);
    }

    /// `UINV` from `IA32_UINTR_MISC`: the conventional vector that marks
    /// arriving IPIs as user-interrupt notifications.
    #[must_use]
    pub const fn uinv(&self) -> Vector {
        Vector::new(self.file.uinv())
    }

    /// Sets `UINV`.
    pub fn set_uinv(&mut self, v: Vector) {
        self.file.set_uinv(v.as_u8());
    }

    /// `UITTSZ` from `IA32_UINTR_MISC`: highest valid UITT index.
    #[must_use]
    pub const fn uittsz(&self) -> u32 {
        self.file.uittsz()
    }

    /// Sets `UITTSZ`.
    pub fn set_uittsz(&mut self, size: u32) {
        self.file.set_uittsz(size);
    }

    /// `IA32_UINTR_PD`: the UPID address (64-byte aligned; the low 6
    /// bits are reserved and masked on write).
    #[must_use]
    pub const fn upid_addr(&self) -> u64 {
        self.file.read(UintrMsr::Pd)
    }

    /// Writes `IA32_UINTR_PD`.
    pub fn set_upid_addr(&mut self, addr: u64) {
        self.file.write(UintrMsr::Pd, addr);
    }

    /// `IA32_UINTR_TT`: UITT base address; bit 0 enables `senduipi`.
    #[must_use]
    pub const fn uitt_addr(&self) -> u64 {
        self.file.uitt_addr()
    }

    /// True if `senduipi` is enabled for this thread.
    #[must_use]
    pub const fn senduipi_enabled(&self) -> bool {
        self.file.senduipi_enabled()
    }

    /// Writes `IA32_UINTR_TT`.
    pub fn set_uitt(&mut self, addr: u64, enabled: bool) {
        self.file
            .write(UintrMsr::Tt, (addr & !abi::msr::TT_ENABLE) | u64::from(enabled));
    }

    /// `IA32_UINTR_RR`: the UIRR bitmap (one bit per user vector).
    #[must_use]
    pub const fn rr(&self) -> u64 {
        self.file.read(UintrMsr::Rr)
    }

    /// Writes `IA32_UINTR_RR` (kernel slow-path repost).
    pub fn set_rr(&mut self, bits: u64) {
        self.file.write(UintrMsr::Rr, bits);
    }

    /// Serializes the register file as its XSAVE-area image (the kernel
    /// context-switches UINTR state through XSAVES on real hardware).
    #[must_use]
    pub fn xsave(&self) -> [u64; 6] {
        [
            self.handler(),
            self.stack_adjust(),
            self.file.read(UintrMsr::Misc),
            self.upid_addr(),
            self.file.read(UintrMsr::Tt),
            self.rr(),
        ]
    }

    /// Restores from an XSAVE-area image. Reserved bits are masked
    /// deterministically, exactly as a typed `WRMSR` would.
    #[must_use]
    pub fn xrstor(image: [u64; 6]) -> Self {
        let mut file = MsrFile::new();
        file.write(UintrMsr::Handler, image[0]);
        file.write(UintrMsr::StackAdjust, image[1]);
        file.write(UintrMsr::Misc, image[2]);
        file.write(UintrMsr::Pd, image[3]);
        file.write(UintrMsr::Tt, image[4]);
        file.write(UintrMsr::Rr, image[5]);
        Self { file }
    }
}

// Serde keeps the pre-refactor wire form: an object with the six
// registers keyed by field name, exactly what the derived impls on the
// old six-u64 struct produced.
impl Serialize for UintrMsrs {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("handler".to_string(), Value::UInt(u128::from(self.handler()))),
            ("stack_adjust".to_string(), Value::UInt(u128::from(self.stack_adjust()))),
            ("misc".to_string(), Value::UInt(u128::from(self.file.read(UintrMsr::Misc)))),
            ("pd".to_string(), Value::UInt(u128::from(self.upid_addr()))),
            ("tt".to_string(), Value::UInt(u128::from(self.file.read(UintrMsr::Tt)))),
            ("rr".to_string(), Value::UInt(u128::from(self.rr()))),
        ])
    }
}

impl Deserialize for UintrMsrs {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self::xrstor([
            serde::field(v, "UintrMsrs", "handler")?,
            serde::field(v, "UintrMsrs", "stack_adjust")?,
            serde::field(v, "UintrMsrs", "misc")?,
            serde::field(v, "UintrMsrs", "pd")?,
            serde::field(v, "UintrMsrs", "tt")?,
            serde::field(v, "UintrMsrs", "rr")?,
        ]))
    }
}

/// The xUI `kb_config_MSR` (§4.3): kernel enable + assigned user vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KbConfigMsr {
    raw: u64,
}

impl KbConfigMsr {
    const ENABLE: u64 = 1 << 63;

    /// Disabled timer.
    #[must_use]
    pub const fn new() -> Self {
        Self { raw: 0 }
    }

    /// Enables the KB_Timer with a delivery vector.
    pub fn enable(&mut self, uv: u8) {
        self.raw = Self::ENABLE | u64::from(uv & 63);
    }

    /// Disables the timer.
    pub fn disable(&mut self) {
        self.raw = 0;
    }

    /// True if enabled.
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.raw & Self::ENABLE != 0
    }

    /// The assigned user vector.
    #[must_use]
    pub const fn vector(&self) -> u8 {
        (self.raw & 63) as u8
    }

    /// Raw MSR value.
    #[must_use]
    pub const fn raw(&self) -> u64 {
        self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_disabled() {
        let m = UintrMsrs::new();
        assert_eq!(m.handler(), 0);
        assert!(!m.senduipi_enabled());
        assert_eq!(m.rr(), 0);
        assert_eq!(m.uinv(), Vector::new(0));
    }

    #[test]
    fn misc_packs_uinv_and_uittsz_independently() {
        let mut m = UintrMsrs::new();
        m.set_uinv(Vector::new(0xec));
        m.set_uittsz(256);
        assert_eq!(m.uinv(), Vector::new(0xec));
        assert_eq!(m.uittsz(), 256);
        m.set_uittsz(7);
        assert_eq!(m.uinv(), Vector::new(0xec), "UINV survives UITTSZ write");
        m.set_uinv(Vector::new(0x20));
        assert_eq!(m.uittsz(), 7, "UITTSZ survives UINV write");
    }

    #[test]
    fn tt_enable_bit_is_bit_zero() {
        let mut m = UintrMsrs::new();
        m.set_uitt(0x7f00_0000, true);
        assert!(m.senduipi_enabled());
        assert_eq!(m.uitt_addr(), 0x7f00_0000);
        m.set_uitt(0x7f00_0000, false);
        assert!(!m.senduipi_enabled());
    }

    #[test]
    fn xsave_round_trip() {
        let mut m = UintrMsrs::new();
        m.set_handler(0x4000);
        m.set_stack_adjust(0x80);
        m.set_uinv(Vector::new(0xec));
        m.set_uittsz(64);
        m.set_upid_addr(0x2000_0040);
        m.set_uitt(0x3000_0000, true);
        m.set_rr(0b1010);
        assert_eq!(UintrMsrs::xrstor(m.xsave()), m);
    }

    #[test]
    fn kb_config_packs_enable_and_vector() {
        let mut kb = KbConfigMsr::new();
        assert!(!kb.is_enabled());
        kb.enable(63);
        assert!(kb.is_enabled());
        assert_eq!(kb.vector(), 63);
        kb.enable(64 + 5); // masked into the 6-bit space
        assert_eq!(kb.vector(), 5);
        kb.disable();
        assert!(!kb.is_enabled());
        assert_eq!(kb.raw(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// XSAVE/XRSTOR round-trips every defined bit; reserved bits are
        /// masked deterministically on restore (a second round trip is
        /// the identity).
        #[test]
        fn xsave_is_lossless_modulo_reserved(image in any::<[u64; 6]>()) {
            let m = UintrMsrs::xrstor(image);
            let saved = m.xsave();
            let masks = [
                UintrMsr::Handler.defined_mask(),
                UintrMsr::StackAdjust.defined_mask(),
                UintrMsr::Misc.defined_mask(),
                UintrMsr::Pd.defined_mask(),
                UintrMsr::Tt.defined_mask(),
                UintrMsr::Rr.defined_mask(),
            ];
            for i in 0..6 {
                prop_assert_eq!(saved[i], image[i] & masks[i]);
            }
            prop_assert_eq!(UintrMsrs::xrstor(saved), m);
        }

        /// MISC field updates never interfere.
        #[test]
        fn misc_fields_are_isolated(uinv in any::<u8>(), sz in any::<u32>()) {
            let mut m = UintrMsrs::new();
            m.set_uinv(Vector::new(uinv));
            m.set_uittsz(sz);
            prop_assert_eq!(m.uinv(), Vector::new(uinv));
            prop_assert_eq!(m.uittsz(), sz);
        }
    }
}
