//! Interrupt forwarding: routing device interrupts to user threads (§4.5).
//!
//! The local APIC gains two 256-bit registers, `forwarding_enabled` and
//! `forwarded_active`, with one bit per conventional vector. When a device
//! interrupt arrives on a vector whose `forwarding_enabled` bit is set, the
//! APIC posts the mapped user vector into `UIRR`; if the vector's
//! `forwarded_active` bit is also set (the registered thread is the one
//! running), delivery proceeds straight to user level — the *fast path*,
//! which never touches shared memory. Otherwise the APIC raises a
//! conventional interrupt so the kernel can park the event in the DUPID
//! for the registered thread — the *slow path*.

use serde::{Deserialize, Serialize};

use crate::error::XuiError;
use crate::vectors::{UserVector, Vector};

/// A 256-bit bitmap indexed by conventional vector, as used by the two new
/// APIC registers.
///
/// # Examples
///
/// ```
/// use xui_core::forwarding::VectorBitmap;
/// use xui_core::vectors::Vector;
///
/// let mut bm = VectorBitmap::new();
/// bm.set(Vector::new(8));
/// assert!(bm.get(Vector::new(8)));
/// bm.clear(Vector::new(8));
/// assert!(bm.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct VectorBitmap {
    words: [u64; 4],
}

impl VectorBitmap {
    /// Creates an empty bitmap.
    #[must_use]
    pub const fn new() -> Self {
        Self { words: [0; 4] }
    }

    /// Sets the bit for `vector`.
    pub fn set(&mut self, vector: Vector) {
        self.words[vector.index() / 64] |= 1u64 << (vector.index() % 64);
    }

    /// Clears the bit for `vector`.
    pub fn clear(&mut self, vector: Vector) {
        self.words[vector.index() / 64] &= !(1u64 << (vector.index() % 64));
    }

    /// Tests the bit for `vector`.
    #[must_use]
    pub const fn get(&self, vector: Vector) -> bool {
        self.words[vector.index() / 64] & (1u64 << (vector.index() % 64)) != 0
    }

    /// True if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates over the set vectors in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Vector> + '_ {
        (0u16..256)
            .map(|i| Vector::new(i as u8))
            .filter(move |v| self.get(*v))
    }

    /// Raw words, for MSR-style save/restore.
    #[must_use]
    pub const fn words(&self) -> [u64; 4] {
        self.words
    }

    /// Rebuilds from raw words.
    #[must_use]
    pub const fn from_words(words: [u64; 4]) -> Self {
        Self { words }
    }
}

/// Device User Interrupt Posted Descriptor (§4.5 "Multiplexing interrupt
/// forwarding"): a per-thread descriptor, "similar to the UPID", where the
/// kernel parks forwarded interrupts that arrive while the registered
/// thread is not running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Dupid {
    /// Posted forwarded interrupts, one bit per user vector (like PIR).
    pub pir: u64,
}

impl Dupid {
    /// Creates an empty descriptor.
    #[must_use]
    pub const fn new() -> Self {
        Self { pir: 0 }
    }

    /// Posts a forwarded user vector for later delivery.
    pub fn post(&mut self, uv: UserVector) {
        self.pir |= uv.bit();
    }

    /// Drains the posted set (the kernel's resume-time repost).
    pub fn take(&mut self) -> u64 {
        core::mem::take(&mut self.pir)
    }

    /// True if anything is parked.
    #[must_use]
    pub const fn has_posted(&self) -> bool {
        self.pir != 0
    }
}

/// Where a forwarded interrupt goes (§4.5 "Microarchitecture design").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardDecision {
    /// `forwarding_enabled[v]` clear: not a forwarded vector; handled by
    /// the OS as a conventional interrupt.
    Legacy,
    /// Fast path: the registered thread is running; deliver the mapped
    /// user vector directly (no UPID/DUPID access).
    FastPath(UserVector),
    /// Slow path: forwarding is enabled but the registered thread is not
    /// in context; the kernel parks the mapped user vector in the thread's
    /// DUPID.
    SlowPath(UserVector),
}

/// The per-core forwarding state added to the local APIC: the two 256-bit
/// registers plus the vector→user-vector map the kernel programs at
/// registration time.
///
/// # Examples
///
/// ```
/// use xui_core::forwarding::{ApicForwarding, ForwardDecision};
/// use xui_core::vectors::{UserVector, Vector};
///
/// let mut fwd = ApicForwarding::new();
/// fwd.map(Vector::new(8), UserVector::new(2)?)?;
/// fwd.activate(Vector::new(8));
/// assert_eq!(
///     fwd.route(Vector::new(8)),
///     ForwardDecision::FastPath(UserVector::new(2)?),
/// );
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApicForwarding {
    enabled: VectorBitmap,
    active: VectorBitmap,
    /// Kernel-programmed translation from conventional vector to the user
    /// vector assigned at registration.
    map: Vec<Option<UserVector>>,
}

impl Default for ApicForwarding {
    fn default() -> Self {
        Self::new()
    }
}

impl ApicForwarding {
    /// Creates forwarding state with no vectors forwarded.
    #[must_use]
    pub fn new() -> Self {
        Self {
            enabled: VectorBitmap::new(),
            active: VectorBitmap::new(),
            map: vec![None; 256],
        }
    }

    /// Kernel side: maps a conventional vector to a user vector and
    /// enables forwarding for it.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::VectorAlreadyForwarded`] if the conventional
    /// vector is already mapped — the per-core vector space is shared
    /// (§4.5 closing limitation).
    pub fn map(&mut self, vector: Vector, uv: UserVector) -> Result<(), XuiError> {
        if self.enabled.get(vector) {
            return Err(XuiError::VectorAlreadyForwarded {
                vector: vector.as_u8(),
            });
        }
        self.enabled.set(vector);
        self.map[vector.index()] = Some(uv);
        Ok(())
    }

    /// Kernel side: removes a mapping (device unregistered).
    pub fn unmap(&mut self, vector: Vector) {
        self.enabled.clear(vector);
        self.active.clear(vector);
        self.map[vector.index()] = None;
    }

    /// Marks the vector's registered thread as currently running on this
    /// core (sets `forwarded_active[v]`). Done by the kernel when the
    /// thread resumes.
    pub fn activate(&mut self, vector: Vector) {
        self.active.set(vector);
    }

    /// Clears `forwarded_active[v]` when the registered thread is switched
    /// out.
    pub fn deactivate(&mut self, vector: Vector) {
        self.active.clear(vector);
    }

    /// Bulk-loads the active set from a thread's saved 256-bit vector on
    /// context switch in (§4.5: "This vector is written to
    /// forwarded_active when a thread resumes execution").
    pub fn load_active(&mut self, active: VectorBitmap) {
        self.active = active;
    }

    /// Saves the active set for a context switch out.
    #[must_use]
    pub fn save_active(&self) -> VectorBitmap {
        self.active
    }

    /// The `forwarding_enabled` register.
    #[must_use]
    pub fn enabled(&self) -> &VectorBitmap {
        &self.enabled
    }

    /// The `forwarded_active` register.
    #[must_use]
    pub fn active(&self) -> &VectorBitmap {
        &self.active
    }

    /// Routes an arriving device interrupt (§4.5 worked example with
    /// vector 8).
    #[must_use]
    pub fn route(&self, vector: Vector) -> ForwardDecision {
        if !self.enabled.get(vector) {
            return ForwardDecision::Legacy;
        }
        let uv = self.map[vector.index()]
            .expect("enabled bit implies a kernel-programmed mapping");
        if self.active.get(vector) {
            ForwardDecision::FastPath(uv)
        } else {
            ForwardDecision::SlowPath(uv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    #[test]
    fn bitmap_boundaries() {
        let mut bm = VectorBitmap::new();
        for raw in [0u8, 63, 64, 127, 128, 191, 192, 255] {
            bm.set(Vector::new(raw));
            assert!(bm.get(Vector::new(raw)), "bit {raw}");
        }
        assert_eq!(bm.count(), 8);
        let listed: Vec<u8> = bm.iter().map(Vector::as_u8).collect();
        assert_eq!(listed, vec![0, 63, 64, 127, 128, 191, 192, 255]);
    }

    #[test]
    fn bitmap_word_round_trip() {
        let mut bm = VectorBitmap::new();
        bm.set(Vector::new(200));
        assert_eq!(VectorBitmap::from_words(bm.words()), bm);
    }

    #[test]
    fn unmapped_vector_is_legacy() {
        let fwd = ApicForwarding::new();
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::Legacy);
    }

    #[test]
    fn fast_path_when_active() {
        let mut fwd = ApicForwarding::new();
        fwd.map(Vector::new(8), uv(2)).unwrap();
        fwd.activate(Vector::new(8));
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::FastPath(uv(2)));
    }

    #[test]
    fn slow_path_when_thread_not_running() {
        let mut fwd = ApicForwarding::new();
        fwd.map(Vector::new(8), uv(2)).unwrap();
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::SlowPath(uv(2)));
        fwd.activate(Vector::new(8));
        fwd.deactivate(Vector::new(8));
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::SlowPath(uv(2)));
    }

    #[test]
    fn double_map_rejected() {
        let mut fwd = ApicForwarding::new();
        fwd.map(Vector::new(8), uv(2)).unwrap();
        assert_eq!(
            fwd.map(Vector::new(8), uv(3)),
            Err(XuiError::VectorAlreadyForwarded { vector: 8 })
        );
    }

    #[test]
    fn unmap_returns_vector_to_legacy() {
        let mut fwd = ApicForwarding::new();
        fwd.map(Vector::new(8), uv(2)).unwrap();
        fwd.unmap(Vector::new(8));
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::Legacy);
        // And the vector can be re-mapped.
        fwd.map(Vector::new(8), uv(5)).unwrap();
    }

    #[test]
    fn context_switch_save_load_active() {
        let mut fwd = ApicForwarding::new();
        fwd.map(Vector::new(8), uv(2)).unwrap();
        fwd.map(Vector::new(9), uv(3)).unwrap();
        fwd.activate(Vector::new(8));
        let saved = fwd.save_active();
        fwd.load_active(VectorBitmap::new()); // other thread: nothing active
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::SlowPath(uv(2)));
        fwd.load_active(saved);
        assert_eq!(fwd.route(Vector::new(8)), ForwardDecision::FastPath(uv(2)));
        assert_eq!(fwd.route(Vector::new(9)), ForwardDecision::SlowPath(uv(3)));
    }

    #[test]
    fn dupid_post_and_take() {
        let mut dupid = Dupid::new();
        assert!(!dupid.has_posted());
        dupid.post(uv(1));
        dupid.post(uv(5));
        assert!(dupid.has_posted());
        assert_eq!(dupid.take(), (1 << 1) | (1 << 5));
        assert!(!dupid.has_posted());
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Set/clear on arbitrary vectors leaves exactly the expected set.
        #[test]
        fn bitmap_matches_reference_set(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..200)) {
            let mut bm = VectorBitmap::new();
            let mut reference = std::collections::BTreeSet::new();
            for (raw, set) in ops {
                let v = Vector::new(raw);
                if set {
                    bm.set(v);
                    reference.insert(raw);
                } else {
                    bm.clear(v);
                    reference.remove(&raw);
                }
            }
            prop_assert_eq!(bm.count() as usize, reference.len());
            let listed: Vec<u8> = bm.iter().map(Vector::as_u8).collect();
            let expected: Vec<u8> = reference.into_iter().collect();
            prop_assert_eq!(listed, expected);
        }
    }
}
