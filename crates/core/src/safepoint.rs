//! Hardware safepoints (§4.4).
//!
//! When *safepoint mode* is enabled, the processor delivers user interrupts
//! only at instructions carrying the safepoint marker (on x86, an
//! instruction prefix). This lets precisely-garbage-collected runtimes take
//! preemption only where stack maps are valid, at near-zero cost: a
//! safepoint-marked instruction with no pending interrupt behaves exactly
//! like the unmarked instruction.
//!
//! This module holds the architectural flag and the boundary-check
//! predicate; the pipeline-level behaviour (misspeculated safepoints,
//! µop-cache interaction) lives in `xui-sim`.

use serde::{Deserialize, Serialize};

/// The one-bit safepoint-mode flag (an MSR, toggled via a system call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SafepointMode {
    enabled: bool,
}

impl SafepointMode {
    /// Creates the flag in the disabled state (ordinary delivery at any
    /// instruction boundary).
    #[must_use]
    pub const fn new() -> Self {
        Self { enabled: false }
    }

    /// Enables safepoint-only delivery.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables safepoint-only delivery.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True if interrupts may only be taken at safepoint instructions.
    #[must_use]
    pub const fn is_enabled(self) -> bool {
        self.enabled
    }

    /// The extended instruction-boundary check (§4.4 "Microarchitecture
    /// design"): may an interrupt be delivered at an instruction boundary
    /// where the *next* instruction has the given safepoint marking?
    ///
    /// With safepoint mode off, every boundary qualifies; with it on, only
    /// boundaries at safepoint-marked instructions do.
    #[must_use]
    pub const fn delivery_allowed(self, at_safepoint_instruction: bool) -> bool {
        !self.enabled || at_safepoint_instruction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_allows_everywhere() {
        let mode = SafepointMode::new();
        assert!(!mode.is_enabled());
        assert!(mode.delivery_allowed(false));
        assert!(mode.delivery_allowed(true));
    }

    #[test]
    fn enabled_mode_gates_on_safepoints() {
        let mut mode = SafepointMode::new();
        mode.enable();
        assert!(mode.is_enabled());
        assert!(!mode.delivery_allowed(false));
        assert!(mode.delivery_allowed(true));
    }

    #[test]
    fn toggle_round_trip() {
        let mut mode = SafepointMode::new();
        mode.enable();
        mode.disable();
        assert!(!mode.is_enabled());
        assert!(mode.delivery_allowed(false));
    }
}
