//! The Kernel-Bypass timer (KB_Timer, §4.3).
//!
//! One KB_Timer exists per physical core and is multiplexed among threads
//! by the OS. User code programs it with two new instructions —
//! `set_timer(cycles, mode)` and `clear_timer()` — without any system
//! call. Expiry is delivered as a user interrupt through the
//! interrupt-delivery microcode *directly* (no UPID access), which is why a
//! KB_Timer interrupt costs only ~105 cycles (§4.2, Figure 4).

use serde::{Deserialize, Serialize};

use crate::error::XuiError;
use crate::vectors::UserVector;

/// Timer operating mode, the one-bit flag of `set_timer` (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerMode {
    /// `cycles` is an absolute deadline; the timer fires once and disarms.
    /// Matches the APIC tradition of specifying the *next* deadline when
    /// software multiplexes many timers.
    OneShot,
    /// `cycles` is a period; the timer fires every `period` cycles.
    Periodic,
}

/// Saved timer state, what the kernel reads from `kb_timer_state_MSR` on a
/// context switch and restores on resume (§4.3 "Multiplexing the
/// KB_Timer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KbTimerState {
    /// Absolute deadline of the next firing, in cycles.
    pub deadline: u64,
    /// Period for periodic mode (meaningless for one-shot).
    pub period: u64,
    /// Operating mode.
    pub mode: TimerMode,
    /// The user vector the kernel assigned to timer interrupts.
    pub vector: UserVector,
}

/// The per-core kernel-bypass timer.
///
/// The kernel enables the timer and assigns its vector through
/// `kb_config_MSR`; user code then arms and disarms it directly.
///
/// # Examples
///
/// ```
/// use xui_core::kb_timer::{KbTimer, TimerMode};
/// use xui_core::vectors::UserVector;
///
/// let mut timer = KbTimer::new();
/// timer.enable(UserVector::new(1)?);
/// // Arm a periodic 10-kcycle timer at time 0.
/// timer.set_timer(10_000, TimerMode::Periodic, 0)?;
/// assert_eq!(timer.poll(9_999), None);
/// assert_eq!(timer.poll(10_000), Some(UserVector::new(1)?));
/// assert_eq!(timer.poll(20_000), Some(UserVector::new(1)?));
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KbTimer {
    /// Kernel enable bit + vector (the `kb_config_MSR`).
    config: Option<UserVector>,
    armed: Option<KbTimerState>,
}

impl KbTimer {
    /// Creates a disabled timer (kernel has not written `kb_config_MSR`).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            config: None,
            armed: None,
        }
    }

    /// Kernel side: enables the timer and assigns the user vector expiry
    /// is delivered on.
    pub fn enable(&mut self, vector: UserVector) {
        self.config = Some(vector);
    }

    /// Kernel side: disables the timer, disarming it.
    pub fn disable(&mut self) {
        self.config = None;
        self.armed = None;
    }

    /// True if the kernel has enabled the timer for the current thread.
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    /// True if the timer is armed.
    #[must_use]
    pub const fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// The `set_timer(cycles, mode)` instruction (§4.3): for
    /// [`TimerMode::Periodic`], `cycles` is a period measured from `now`;
    /// for [`TimerMode::OneShot`], `cycles` is an absolute deadline.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::KbTimerDisabled`] if the kernel has not enabled
    /// the timer (the instruction faults).
    pub fn set_timer(&mut self, cycles: u64, mode: TimerMode, now: u64) -> Result<(), XuiError> {
        let vector = self.config.ok_or(XuiError::KbTimerDisabled)?;
        let state = match mode {
            TimerMode::Periodic => KbTimerState {
                deadline: now.saturating_add(cycles),
                period: cycles.max(1),
                mode,
                vector,
            },
            TimerMode::OneShot => KbTimerState {
                deadline: cycles,
                period: 0,
                mode,
                vector,
            },
        };
        self.armed = Some(state);
        Ok(())
    }

    /// The `clear_timer()` instruction: disarms without firing.
    pub fn clear_timer(&mut self) {
        self.armed = None;
    }

    /// Advances the timer to `now`. If the deadline has been reached,
    /// returns the vector to deliver; a periodic timer re-arms for the
    /// next period, a one-shot timer disarms.
    ///
    /// At most one firing is reported per call even if several periods
    /// elapsed — matching APIC-timer behaviour where missed periods
    /// coalesce into the single pending interrupt line.
    pub fn poll(&mut self, now: u64) -> Option<UserVector> {
        let state = self.armed?;
        if now < state.deadline {
            return None;
        }
        match state.mode {
            TimerMode::OneShot => {
                self.armed = None;
            }
            TimerMode::Periodic => {
                // Re-arm relative to the *scheduled* deadline so periodic
                // firing does not drift, skipping periods that already
                // elapsed (they coalesce).
                let elapsed = now - state.deadline;
                let skip = elapsed / state.period + 1;
                self.armed = Some(KbTimerState {
                    deadline: state.deadline + skip * state.period,
                    ..state
                });
            }
        }
        Some(state.vector)
    }

    /// The next deadline, if armed — what the DES uses to schedule the
    /// firing event instead of polling every cycle.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        self.armed.map(|s| s.deadline)
    }

    /// Kernel side: reads `kb_timer_state_MSR` for a context switch.
    /// Returns `None` if the timer is not armed.
    #[must_use]
    pub fn save_state(&self) -> Option<KbTimerState> {
        self.armed
    }

    /// Kernel side: restores a previously saved state when the owning
    /// thread resumes.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::KbTimerDisabled`] if the timer is not enabled.
    pub fn restore_state(&mut self, state: KbTimerState) -> Result<(), XuiError> {
        if self.config.is_none() {
            return Err(XuiError::KbTimerDisabled);
        }
        self.armed = Some(state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    fn enabled() -> KbTimer {
        let mut t = KbTimer::new();
        t.enable(uv(7));
        t
    }

    #[test]
    fn disabled_timer_faults_on_set() {
        let mut t = KbTimer::new();
        assert_eq!(
            t.set_timer(100, TimerMode::OneShot, 0),
            Err(XuiError::KbTimerDisabled)
        );
    }

    #[test]
    fn one_shot_fires_once_at_deadline() {
        let mut t = enabled();
        t.set_timer(500, TimerMode::OneShot, 0).unwrap();
        assert!(t.is_armed());
        assert_eq!(t.poll(499), None);
        assert_eq!(t.poll(500), Some(uv(7)));
        assert!(!t.is_armed());
        assert_eq!(t.poll(10_000), None, "one-shot does not refire");
    }

    #[test]
    fn one_shot_cycles_is_absolute_deadline() {
        let mut t = enabled();
        // Armed at now=1000 with deadline 500: already past, fires at once.
        t.set_timer(500, TimerMode::OneShot, 1000).unwrap();
        assert_eq!(t.poll(1000), Some(uv(7)));
    }

    #[test]
    fn periodic_fires_every_period_without_drift() {
        let mut t = enabled();
        t.set_timer(1000, TimerMode::Periodic, 250).unwrap();
        assert_eq!(t.next_deadline(), Some(1250));
        assert_eq!(t.poll(1250), Some(uv(7)));
        assert_eq!(t.next_deadline(), Some(2250));
        // Poll late: fires once, deadline stays on the 250+1000k grid.
        assert_eq!(t.poll(2900), Some(uv(7)));
        assert_eq!(t.next_deadline(), Some(3250));
    }

    #[test]
    fn periodic_coalesces_missed_periods() {
        let mut t = enabled();
        t.set_timer(100, TimerMode::Periodic, 0).unwrap();
        // 10 periods elapse; one firing reported, deadline jumps past now.
        assert_eq!(t.poll(1000), Some(uv(7)));
        assert!(t.next_deadline().unwrap() > 1000);
    }

    #[test]
    fn clear_timer_disarms() {
        let mut t = enabled();
        t.set_timer(100, TimerMode::OneShot, 0).unwrap();
        t.clear_timer();
        assert_eq!(t.poll(100), None);
        assert!(t.is_enabled(), "clear_timer does not disable the feature");
    }

    #[test]
    fn disable_clears_everything() {
        let mut t = enabled();
        t.set_timer(100, TimerMode::OneShot, 0).unwrap();
        t.disable();
        assert!(!t.is_enabled());
        assert!(!t.is_armed());
    }

    #[test]
    fn save_restore_round_trips_across_context_switch() {
        let mut t = enabled();
        t.set_timer(1000, TimerMode::Periodic, 0).unwrap();
        let saved = t.save_state().unwrap();
        t.clear_timer(); // another thread runs; its timer state differs
        assert_eq!(t.poll(5000), None);
        t.restore_state(saved).unwrap();
        assert_eq!(t.poll(5000), Some(uv(7)), "restored deadline was 1000");
    }

    #[test]
    fn restore_requires_enable() {
        let mut t = enabled();
        t.set_timer(10, TimerMode::OneShot, 0).unwrap();
        let saved = t.save_state().unwrap();
        t.disable();
        assert_eq!(t.restore_state(saved), Err(XuiError::KbTimerDisabled));
    }

    #[test]
    fn zero_period_is_clamped() {
        let mut t = enabled();
        t.set_timer(0, TimerMode::Periodic, 10).unwrap();
        // Fires, and must not loop forever or divide by zero.
        assert!(t.poll(10).is_some());
        assert!(t.next_deadline().unwrap() > 10);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// A periodic timer polled at arbitrary times always keeps its
        /// deadline strictly ahead of the poll time after firing, and all
        /// deadlines stay on the arming grid.
        #[test]
        fn periodic_deadline_invariants(
            period in 1u64..10_000,
            start in 0u64..1_000_000,
            polls in proptest::collection::vec(1u64..50_000, 1..50),
        ) {
            let mut t = KbTimer::new();
            t.enable(UserVector::new(0).unwrap());
            t.set_timer(period, TimerMode::Periodic, start).unwrap();
            let mut now = start;
            for step in polls {
                now += step;
                let fired = t.poll(now);
                let deadline = t.next_deadline().unwrap();
                prop_assert!(deadline > now);
                prop_assert_eq!((deadline - start) % period, 0, "deadline stays on grid");
                if fired.is_none() {
                    prop_assert!(deadline - now <= period);
                }
            }
        }
    }
}
