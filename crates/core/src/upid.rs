//! The User Posted Interrupt Descriptor (UPID), bit-exact per Table 1 of
//! the paper.
//!
//! A UPID is a per-thread descriptor shared in memory among all cores.
//! Senders post interrupts into its `PIR` field with an atomic RMW; the
//! receiving core's notification-processing microcode drains `PIR` into
//! its `UIRR` register. The kernel uses `SN` to suppress notifications while
//! the thread is context-switched out, and rewrites `NDST` when the thread
//! migrates between cores.
//!
//! | Field | Description | Bits |
//! |-------|-------------|------|
//! | ON    | outstanding notification | 0 |
//! | SN    | suppressed notification  | 1 |
//! | NV    | notification vector      | 23:16 |
//! | NDST  | notification destination (APIC ID) | 63:32 |
//! | PIR   | posted interrupt requests (one bit per user vector) | 127:64 |
//!
//! Since the `uipi_abi` refactor this type is a *view* over the packed
//! [`xui_uipi_abi::Upid`] cache-line descriptor: the bit layout lives in
//! one place, shared with the kernel model, the cycle simulator's memory
//! bridge, and the reference oracle. The 128-bit `bits()` form exposed
//! here is exactly the first two little-endian quadwords of the packed
//! 64-byte image; reserved bits are masked deterministically by every
//! constructor, so two descriptors that agree on the defined fields are
//! byte-identical.

use core::fmt;

use serde::{DeError, Deserialize, Serialize, Value};
use xui_uipi_abi as abi;

use crate::vectors::{ApicId, UserVector, Vector};

const PIR_SHIFT: u32 = 64;

/// A User Posted Interrupt Descriptor (Table 1), backed by the packed
/// [`abi::Upid`] cache-line form.
///
/// The descriptor behaves as a single 128-bit value with the exact field
/// placement of the hardware structure, so models that move UPIDs through
/// simulated memory can treat them as two adjacent 64-bit words.
///
/// # Examples
///
/// ```
/// use xui_core::upid::Upid;
/// use xui_core::vectors::{ApicId, UserVector, Vector};
///
/// let mut upid = Upid::new();
/// upid.set_nv(Vector::new(0xec));
/// upid.set_ndst(ApicId::new(2));
/// upid.post(UserVector::new(5)?);
/// assert!(upid.pir() & (1 << 5) != 0);
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Upid {
    packed: abi::Upid,
}

impl Upid {
    /// Creates an all-zero UPID (no notification outstanding, nothing
    /// posted, destination APIC 0).
    #[must_use]
    pub const fn new() -> Self {
        Self { packed: abi::Upid::new() }
    }

    /// Reconstructs a UPID from its raw 128-bit representation, masking
    /// reserved bits deterministically.
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        Self::from_words(bits as u64, (bits >> PIR_SHIFT) as u64)
    }

    /// Returns the raw 128-bit representation.
    #[must_use]
    pub fn bits(self) -> u128 {
        (self.low_word() as u128) | ((self.high_word() as u128) << PIR_SHIFT)
    }

    /// The packed cache-line descriptor this view reads and writes.
    #[must_use]
    pub const fn packed(&self) -> &abi::Upid {
        &self.packed
    }

    /// Wraps a packed descriptor (reserved bits are assumed masked, as
    /// every `xui_uipi_abi` constructor guarantees).
    #[must_use]
    pub const fn from_packed(packed: abi::Upid) -> Self {
        Self { packed }
    }

    /// Serializes the descriptor's 64-byte cache-line image.
    #[must_use]
    pub fn pack(&self) -> [u8; abi::upid::UPID_BYTES] {
        self.packed.pack()
    }

    /// Returns the low 64-bit word (ON, SN, NV, NDST) as laid out in
    /// memory.
    #[must_use]
    pub fn low_word(self) -> u64 {
        self.packed.low_word()
    }

    /// Returns the high 64-bit word (PIR) as laid out in memory.
    #[must_use]
    pub const fn high_word(self) -> u64 {
        self.packed.high_word()
    }

    /// Reconstructs a UPID from its two 64-bit memory words.
    #[must_use]
    pub fn from_words(low: u64, high: u64) -> Self {
        Self { packed: abi::Upid::from_words(low, high) }
    }

    /// Outstanding-notification bit: set by the sender when it issues a
    /// notification IPI, cleared by the receiver's notification-processing
    /// microcode.
    #[must_use]
    pub const fn on(self) -> bool {
        self.packed.nc.on()
    }

    /// Sets or clears the ON bit.
    pub fn set_on(&mut self, value: bool) {
        self.packed.nc.set_on(value);
    }

    /// Suppressed-notification bit: set by the kernel when the thread is
    /// context-switched out so senders stop issuing IPIs (§3.2).
    #[must_use]
    pub const fn sn(self) -> bool {
        self.packed.nc.sn()
    }

    /// Sets or clears the SN bit.
    pub fn set_sn(&mut self, value: bool) {
        self.packed.nc.set_sn(value);
    }

    /// Notification vector: the conventional 8-bit vector the sender's IPI
    /// carries so the receiver can recognise it as a user-interrupt
    /// notification (compared against `UINV`).
    #[must_use]
    pub const fn nv(self) -> Vector {
        Vector::new(self.packed.nc.nv)
    }

    /// Sets the notification vector.
    pub fn set_nv(&mut self, nv: Vector) {
        self.packed.nc.nv = nv.as_u8();
    }

    /// Notification destination: APIC ID of the core the thread is
    /// currently running on. The OS rewrites this on migration (§3.2).
    #[must_use]
    pub const fn ndst(self) -> ApicId {
        ApicId::new(self.packed.nc.ndst)
    }

    /// Sets the notification destination.
    pub fn set_ndst(&mut self, ndst: ApicId) {
        self.packed.nc.ndst = ndst.as_u32();
    }

    /// Posted interrupt requests: one bit per user vector.
    #[must_use]
    pub const fn pir(self) -> u64 {
        self.packed.puir
    }

    /// Overwrites the whole PIR field.
    pub fn set_pir(&mut self, pir: u64) {
        self.packed.puir = pir;
    }

    /// Posts a user vector into PIR (the sender-side step (1) of §3.3).
    /// Returns `true` if the bit was newly set.
    pub fn post(&mut self, uv: UserVector) -> bool {
        self.packed.post(uv.as_u8())
    }

    /// Atomically drains PIR, returning the previously posted set and
    /// leaving PIR empty — the receiver-side notification-processing step
    /// that moves posted vectors into `UIRR` (§3.3 step (4)).
    pub fn take_pir(&mut self) -> u64 {
        self.packed.take_puir()
    }

    /// True if any user vector is posted.
    #[must_use]
    pub const fn has_posted(self) -> bool {
        self.pir() != 0
    }
}

// Serde keeps the pre-refactor wire form: `{"bits": <u128>}`, exactly
// what the derived impls on the old `bits: u128` struct produced.
impl Serialize for Upid {
    fn to_value(&self) -> Value {
        Value::Object(vec![("bits".to_string(), Value::UInt(self.bits()))])
    }
}

impl Deserialize for Upid {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self::from_bits(serde::field(v, "Upid", "bits")?))
    }
}

impl fmt::Debug for Upid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Upid")
            .field("on", &self.on())
            .field("sn", &self.sn())
            .field("nv", &self.nv())
            .field("ndst", &self.ndst())
            .field("pir", &format_args!("{:#018x}", self.pir()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_upid_is_zero() {
        let upid = Upid::new();
        assert_eq!(upid.bits(), 0);
        assert!(!upid.on());
        assert!(!upid.sn());
        assert_eq!(upid.nv(), Vector::new(0));
        assert_eq!(upid.ndst(), ApicId::new(0));
        assert_eq!(upid.pir(), 0);
        assert!(!upid.has_posted());
    }

    #[test]
    fn table1_bit_positions_are_exact() {
        let mut upid = Upid::new();
        upid.set_on(true);
        assert_eq!(upid.bits(), 1 << 0);
        upid.set_on(false);

        upid.set_sn(true);
        assert_eq!(upid.bits(), 1 << 1);
        upid.set_sn(false);

        upid.set_nv(Vector::new(0xff));
        assert_eq!(upid.bits(), 0xff << 16);
        upid.set_nv(Vector::new(0));

        upid.set_ndst(ApicId::new(u32::MAX));
        assert_eq!(upid.bits(), 0xffff_ffffu128 << 32);
        upid.set_ndst(ApicId::new(0));

        upid.set_pir(u64::MAX);
        assert_eq!(upid.bits(), (u64::MAX as u128) << 64);
    }

    #[test]
    fn view_and_packed_image_agree() {
        let mut upid = Upid::new();
        upid.set_on(true);
        upid.set_nv(Vector::new(0xec));
        upid.set_ndst(ApicId::new(7));
        upid.post(UserVector::new(33).unwrap());
        let bytes = upid.pack();
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), upid.low_word());
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), upid.pir());
        assert!(bytes[16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn post_sets_single_bit_and_reports_novelty() {
        let mut upid = Upid::new();
        let uv = UserVector::new(9).unwrap();
        assert!(upid.post(uv));
        assert_eq!(upid.pir(), 1 << 9);
        assert!(!upid.post(uv), "re-posting the same vector is not new");
        assert_eq!(upid.pir(), 1 << 9);
    }

    #[test]
    fn take_pir_drains() {
        let mut upid = Upid::new();
        upid.post(UserVector::new(0).unwrap());
        upid.post(UserVector::new(63).unwrap());
        let drained = upid.take_pir();
        assert_eq!(drained, (1 << 0) | (1 << 63));
        assert_eq!(upid.pir(), 0);
        assert_eq!(upid.take_pir(), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut upid = Upid::new();
        upid.set_on(true);
        upid.set_nv(Vector::new(0xec));
        upid.set_ndst(ApicId::new(7));
        upid.post(UserVector::new(33).unwrap());
        let rebuilt = Upid::from_words(upid.low_word(), upid.high_word());
        assert_eq!(rebuilt, upid);
    }

    #[test]
    fn serde_keeps_the_bits_wire_form() {
        let mut upid = Upid::new();
        upid.set_on(true);
        upid.set_nv(Vector::new(0xec));
        upid.set_pir(0b1010);
        let v = upid.to_value();
        assert_eq!(
            v,
            Value::Object(vec![("bits".to_string(), Value::UInt(upid.bits()))])
        );
        assert_eq!(Upid::from_value(&v).unwrap(), upid);
    }

    #[test]
    fn debug_mentions_fields() {
        let upid = Upid::new();
        let text = format!("{upid:?}");
        for field in ["on", "sn", "nv", "ndst", "pir"] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Setting any one field never disturbs the others (field isolation
        /// in the Table 1 layout).
        #[test]
        fn field_isolation(bits in any::<u128>(), nv in any::<u8>(), ndst in any::<u32>(),
                           pir in any::<u64>(), on in any::<bool>(), sn in any::<bool>()) {
            let base = Upid::from_bits(bits);

            let mut u = base;
            u.set_nv(Vector::new(nv));
            prop_assert_eq!(u.on(), base.on());
            prop_assert_eq!(u.sn(), base.sn());
            prop_assert_eq!(u.ndst(), base.ndst());
            prop_assert_eq!(u.pir(), base.pir());
            prop_assert_eq!(u.nv(), Vector::new(nv));

            let mut u = base;
            u.set_ndst(ApicId::new(ndst));
            prop_assert_eq!(u.nv(), base.nv());
            prop_assert_eq!(u.pir(), base.pir());
            prop_assert_eq!(u.ndst(), ApicId::new(ndst));

            let mut u = base;
            u.set_pir(pir);
            prop_assert_eq!(u.nv(), base.nv());
            prop_assert_eq!(u.ndst(), base.ndst());
            prop_assert_eq!(u.on(), base.on());
            prop_assert_eq!(u.pir(), pir);

            let mut u = base;
            u.set_on(on);
            u.set_sn(sn);
            prop_assert_eq!(u.nv(), base.nv());
            prop_assert_eq!(u.ndst(), base.ndst());
            prop_assert_eq!(u.pir(), base.pir());
            prop_assert_eq!(u.on(), on);
            prop_assert_eq!(u.sn(), sn);
        }

        /// Posting vectors accumulates exactly the posted set, and draining
        /// returns it (no interrupt lost or invented at the descriptor
        /// level).
        #[test]
        fn post_then_drain_is_lossless(raw_vectors in proptest::collection::vec(0u8..64, 0..32)) {
            let mut upid = Upid::new();
            let mut expected = 0u64;
            for raw in &raw_vectors {
                let uv = UserVector::new(*raw).unwrap();
                upid.post(uv);
                expected |= uv.bit();
            }
            prop_assert_eq!(upid.pir(), expected);
            prop_assert_eq!(upid.take_pir(), expected);
            prop_assert_eq!(upid.pir(), 0);
        }

        /// Word round-trip is the identity for arbitrary descriptors, and
        /// the 128-bit form equals the first 16 bytes of the packed
        /// cache-line image.
        #[test]
        fn words_round_trip(bits in any::<u128>()) {
            let upid = Upid::from_bits(bits);
            prop_assert_eq!(Upid::from_words(upid.low_word(), upid.high_word()), upid);
            let bytes = upid.pack();
            let mut head = [0u8; 16];
            head.copy_from_slice(&bytes[0..16]);
            prop_assert_eq!(u128::from_le_bytes(head), upid.bits());
        }

        /// Reserved bits are masked once and deterministically: the defined
        /// fields of any raw 128-bit pattern survive, and re-wrapping the
        /// masked value is the identity.
        #[test]
        fn from_bits_masks_reserved_deterministically(bits in any::<u128>()) {
            let upid = Upid::from_bits(bits);
            let raw = Upid { packed: xui_uipi_abi::Upid::from_words(bits as u64, (bits >> 64) as u64) };
            prop_assert_eq!(upid, raw);
            prop_assert_eq!(Upid::from_bits(upid.bits()), upid);
        }

        /// Arbitrary interleavings of sender posts, kernel suspends
        /// (SN set on context-switch-out) and resumes (SN cleared, then
        /// notification processing drains PIR) never lose a pending
        /// vector: at every step PIR equals exactly the model's
        /// posted-but-undrained set, and each drain hands the receiver
        /// that whole set.
        #[test]
        fn post_suspend_resume_interleavings_never_lose_a_vector(
            ops in proptest::collection::vec((0u8..4, 0u8..64), 1..48),
        ) {
            let mut upid = Upid::new();
            let mut pending = 0u64; // model: posted, not yet drained
            let mut delivered = 0u64;
            let mut posted = 0u64;
            for (op, raw) in ops {
                match op {
                    // Sender posts — legal whether or not SN is set (the
                    // PIR RMW happens regardless; SN only suppresses the
                    // notification IPI).
                    0 | 1 => {
                        let uv = UserVector::new(raw).unwrap();
                        let novel = upid.post(uv);
                        prop_assert_eq!(novel, pending & uv.bit() == 0,
                            "novelty must reflect the pending set");
                        pending |= uv.bit();
                        posted |= uv.bit();
                    }
                    // Kernel suspends: the SN race window. Flipping SN
                    // must not clobber concurrent posts.
                    2 => {
                        upid.set_sn(true);
                    }
                    // Resume: clear SN, notification processing drains.
                    _ => {
                        upid.set_sn(false);
                        let drained = upid.take_pir();
                        prop_assert_eq!(drained, pending,
                            "drain returns exactly the pending set");
                        delivered |= drained;
                        pending = 0;
                    }
                }
                prop_assert_eq!(upid.pir(), pending, "PIR tracks the model set");
            }
            let final_drain = upid.take_pir();
            prop_assert_eq!(final_drain, pending);
            prop_assert_eq!(delivered | final_drain, posted,
                "every posted vector is delivered by some drain — none lost");
        }

        /// The `set_sn` race window touches only bit 1: any flip
        /// sequence leaves ON, NV, NDST and the whole PIR word
        /// bit-exact, so a suspend racing a post can suppress the IPI
        /// but can never eat the posted vector.
        #[test]
        fn set_sn_race_window_only_touches_bit1(
            bits in any::<u128>(),
            flips in proptest::collection::vec(any::<bool>(), 1..16),
        ) {
            let base = Upid::from_bits(bits);
            let mut upid = base;
            for f in flips {
                upid.set_sn(f);
                prop_assert_eq!(upid.sn(), f);
                prop_assert_eq!(upid.bits() & !0b10, base.bits() & !0b10,
                    "everything except SN is untouched");
                prop_assert_eq!(upid.pir(), base.pir());
                prop_assert_eq!(upid.on(), base.on());
            }
        }
    }
}
