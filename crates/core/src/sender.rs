//! Sender-side `senduipi` semantics (§3.2–3.3 steps (1)–(2)).
//!
//! `senduipi(index)` looks up the destination's UPID in the UITT, posts the
//! user vector into `PIR` with an atomic RMW, and — unless notifications
//! are suppressed (`SN`) or one is already outstanding (`ON`) — sets `ON`
//! and sends a conventional IPI to the core named by `NDST` with vector
//! `NV`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::XuiError;
use crate::msr::UintrMsrs;
use crate::uitt::{Uitt, UittIndex, UpidAddr};
use crate::upid::Upid;
use crate::vectors::{ApicId, Vector};

/// A conventional inter-processor interrupt message travelling the system
/// bus from the sender's APIC to the receiver's APIC (§3.3 step (3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpiMessage {
    /// Destination core.
    pub dest: ApicId,
    /// The notification vector (`NV` from the UPID); the receiver compares
    /// it against its `UINV` MSR to recognise a user-interrupt
    /// notification.
    pub vector: Vector,
}

/// What a successful `senduipi` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SendOutcome {
    /// Whether the posted vector was newly set in `PIR` (false if the same
    /// vector was already pending and coalesced).
    pub newly_posted: bool,
    /// The IPI to put on the bus, if any. `None` when `SN` suppressed the
    /// notification or `ON` indicated one is already outstanding.
    pub ipi: Option<IpiMessage>,
    /// True if `SN` was set (receiver context-switched out): the vector is
    /// posted for the kernel to deliver later, but no IPI is sent.
    pub suppressed: bool,
}

/// Abstract shared memory holding UPIDs.
///
/// The architectural model performs real loads and RMWs on descriptors
/// through this trait so that callers can attach coherence/timing semantics
/// (the cycle-level simulator) or use a plain map (protocol-level tests).
/// A `&mut M` can be passed wherever `M: UpidMemory` is required.
pub trait UpidMemory {
    /// Loads the descriptor at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownUpid`] if no descriptor lives at `addr`.
    fn load_upid(&self, addr: UpidAddr) -> Result<Upid, XuiError>;

    /// Stores the descriptor at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownUpid`] if no descriptor lives at `addr`.
    fn store_upid(&mut self, addr: UpidAddr, upid: Upid) -> Result<(), XuiError>;

    /// Atomically read-modify-writes the descriptor at `addr`, returning
    /// the *pre-modification* value (like a fetch-and-op).
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::UnknownUpid`] if no descriptor lives at `addr`.
    fn rmw_upid(
        &mut self,
        addr: UpidAddr,
        f: &mut dyn FnMut(&mut Upid),
    ) -> Result<Upid, XuiError> {
        let before = self.load_upid(addr)?;
        let mut after = before;
        f(&mut after);
        self.store_upid(addr, after)?;
        Ok(before)
    }
}

impl<M: UpidMemory + ?Sized> UpidMemory for &mut M {
    fn load_upid(&self, addr: UpidAddr) -> Result<Upid, XuiError> {
        (**self).load_upid(addr)
    }

    fn store_upid(&mut self, addr: UpidAddr, upid: Upid) -> Result<(), XuiError> {
        (**self).store_upid(addr, upid)
    }
}

/// A plain map-backed [`UpidMemory`] for protocol-level modelling and
/// tests.
///
/// # Examples
///
/// ```
/// use xui_core::sender::{MapUpidMemory, UpidMemory};
/// use xui_core::uitt::UpidAddr;
/// use xui_core::upid::Upid;
///
/// let mut mem = MapUpidMemory::new();
/// mem.insert(UpidAddr(0x40), Upid::new());
/// assert!(mem.load_upid(UpidAddr(0x40)).is_ok());
/// assert!(mem.load_upid(UpidAddr(0x80)).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapUpidMemory {
    map: HashMap<u64, Upid>,
}

impl MapUpidMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a descriptor at `addr` (what the kernel's `register_handler`
    /// allocation does).
    pub fn insert(&mut self, addr: UpidAddr, upid: Upid) {
        self.map.insert(addr.as_u64(), upid);
    }

    /// Removes the descriptor at `addr`, returning it if present.
    pub fn remove(&mut self, addr: UpidAddr) -> Option<Upid> {
        self.map.remove(&addr.as_u64())
    }

    /// Number of mapped descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no descriptor is mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl UpidMemory for MapUpidMemory {
    fn load_upid(&self, addr: UpidAddr) -> Result<Upid, XuiError> {
        self.map
            .get(&addr.as_u64())
            .copied()
            .ok_or(XuiError::UnknownUpid { addr: addr.as_u64() })
    }

    fn store_upid(&mut self, addr: UpidAddr, upid: Upid) -> Result<(), XuiError> {
        match self.map.get_mut(&addr.as_u64()) {
            Some(slot) => {
                *slot = upid;
                Ok(())
            }
            None => Err(XuiError::UnknownUpid { addr: addr.as_u64() }),
        }
    }
}

/// Executes the architectural effects of `senduipi uitt[index]`.
///
/// Performs the UITT lookup, the posting RMW on the UPID, and decides
/// whether an IPI goes on the bus, per §3.2:
///
/// 1. set the `PIR` bit for the entry's user vector;
/// 2. if `SN` is set, stop — the kernel will deliver on resume;
/// 3. if `ON` is clear, set `ON` and emit an IPI to (`NDST`, `NV`);
///    if `ON` is already set an earlier notification still covers the
///    newly posted vector, so no duplicate IPI is needed.
///
/// # Errors
///
/// Returns [`XuiError::InvalidUittIndex`] for a bad index (hardware `#GP`)
/// or [`XuiError::UnknownUpid`] if the entry points at unmapped memory.
///
/// # Examples
///
/// ```
/// use xui_core::sender::{senduipi, MapUpidMemory};
/// use xui_core::uitt::{Uitt, UpidAddr};
/// use xui_core::upid::Upid;
/// use xui_core::vectors::{ApicId, UserVector, Vector};
///
/// let mut mem = MapUpidMemory::new();
/// let mut upid = Upid::new();
/// upid.set_nv(Vector::new(0xec));
/// upid.set_ndst(ApicId::new(1));
/// mem.insert(UpidAddr(0x40), upid);
///
/// let mut uitt = Uitt::new();
/// let idx = uitt.register(UpidAddr(0x40), UserVector::new(7)?);
///
/// let outcome = senduipi(&uitt, &mut mem, idx)?;
/// let ipi = outcome.ipi.expect("first send raises an IPI");
/// assert_eq!(ipi.dest, ApicId::new(1));
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
pub fn senduipi<M: UpidMemory>(
    uitt: &Uitt,
    mem: &mut M,
    index: UittIndex,
) -> Result<SendOutcome, XuiError> {
    let entry = uitt.lookup(index)?;
    let mut newly_posted = false;
    let mut raise_ipi = false;
    let before = mem.rmw_upid(entry.upid, &mut |upid| {
        newly_posted = upid.post(entry.vector);
        if !upid.sn() && !upid.on() {
            upid.set_on(true);
            raise_ipi = true;
        }
    })?;
    let suppressed = before.sn();
    let ipi = raise_ipi.then(|| IpiMessage {
        dest: before.ndst(),
        vector: before.nv(),
    });
    Ok(SendOutcome {
        newly_posted,
        ipi,
        suppressed,
    })
}

/// Like [`senduipi`], but first performs the architectural permission
/// checks against the thread's MSR file: the `IA32_UINTR_TT` enable bit
/// must be set and the index must not exceed `UITTSZ`.
///
/// # Errors
///
/// Returns [`XuiError::SenduipiDisabled`] if the feature is off,
/// [`XuiError::InvalidUittIndex`] if the index exceeds `UITTSZ` or the
/// entry is invalid, and propagates descriptor errors.
pub fn senduipi_checked<M: UpidMemory>(
    msrs: &UintrMsrs,
    uitt: &Uitt,
    mem: &mut M,
    index: UittIndex,
) -> Result<SendOutcome, XuiError> {
    if !msrs.senduipi_enabled() {
        return Err(XuiError::SenduipiDisabled);
    }
    if index.0 > msrs.uittsz() as usize {
        return Err(XuiError::InvalidUittIndex { index: index.0 });
    }
    senduipi(uitt, mem, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::UserVector;

    fn setup(sn: bool, on: bool) -> (Uitt, MapUpidMemory, UittIndex, UpidAddr) {
        let addr = UpidAddr(0x40);
        let mut upid = Upid::new();
        upid.set_nv(Vector::new(0xec));
        upid.set_ndst(ApicId::new(3));
        upid.set_sn(sn);
        upid.set_on(on);
        let mut mem = MapUpidMemory::new();
        mem.insert(addr, upid);
        let mut uitt = Uitt::new();
        let idx = uitt.register(addr, UserVector::new(9).unwrap());
        (uitt, mem, idx, addr)
    }

    #[test]
    fn first_send_posts_and_raises_ipi() {
        let (uitt, mut mem, idx, addr) = setup(false, false);
        let outcome = senduipi(&uitt, &mut mem, idx).unwrap();
        assert!(outcome.newly_posted);
        assert!(!outcome.suppressed);
        assert_eq!(
            outcome.ipi,
            Some(IpiMessage {
                dest: ApicId::new(3),
                vector: Vector::new(0xec)
            })
        );
        let upid = mem.load_upid(addr).unwrap();
        assert!(upid.on());
        assert_eq!(upid.pir(), 1 << 9);
    }

    #[test]
    fn outstanding_notification_coalesces_ipis() {
        let (uitt, mut mem, idx, addr) = setup(false, true);
        let outcome = senduipi(&uitt, &mut mem, idx).unwrap();
        assert!(outcome.newly_posted);
        assert_eq!(outcome.ipi, None, "ON already set: no duplicate IPI");
        assert!(mem.load_upid(addr).unwrap().on());
    }

    #[test]
    fn suppressed_notification_posts_without_ipi() {
        let (uitt, mut mem, idx, addr) = setup(true, false);
        let outcome = senduipi(&uitt, &mut mem, idx).unwrap();
        assert!(outcome.suppressed);
        assert_eq!(outcome.ipi, None);
        let upid = mem.load_upid(addr).unwrap();
        assert_eq!(upid.pir(), 1 << 9, "vector still posted for the slow path");
        assert!(!upid.on(), "ON untouched while suppressed");
    }

    #[test]
    fn invalid_index_faults() {
        let (_, mut mem, _, _) = setup(false, false);
        let uitt = Uitt::new();
        assert_eq!(
            senduipi(&uitt, &mut mem, UittIndex(0)),
            Err(XuiError::InvalidUittIndex { index: 0 })
        );
    }

    #[test]
    fn dangling_upid_pointer_errors() {
        let mut uitt = Uitt::new();
        let idx = uitt.register(UpidAddr(0xdead), UserVector::new(1).unwrap());
        let mut mem = MapUpidMemory::new();
        assert_eq!(
            senduipi(&uitt, &mut mem, idx),
            Err(XuiError::UnknownUpid { addr: 0xdead })
        );
    }

    #[test]
    fn checked_send_enforces_msrs() {
        use crate::msr::UintrMsrs;
        let (uitt, mut mem, idx, _) = setup(false, false);
        let mut msrs = UintrMsrs::new();
        // Disabled: #UD.
        assert_eq!(
            senduipi_checked(&msrs, &uitt, &mut mem, idx),
            Err(XuiError::SenduipiDisabled)
        );
        // Enabled but UITTSZ too small for index 1.
        msrs.set_uitt(0x3000_0000, true);
        msrs.set_uittsz(0);
        assert!(senduipi_checked(&msrs, &uitt, &mut mem, idx).is_ok());
        assert_eq!(
            senduipi_checked(&msrs, &uitt, &mut mem, UittIndex(1)),
            Err(XuiError::InvalidUittIndex { index: 1 })
        );
        // Properly sized: succeeds.
        msrs.set_uittsz(8);
        assert!(senduipi_checked(&msrs, &uitt, &mut mem, idx).is_ok());
    }

    #[test]
    fn two_sends_same_vector_one_ipi() {
        let (uitt, mut mem, idx, _) = setup(false, false);
        let first = senduipi(&uitt, &mut mem, idx).unwrap();
        let second = senduipi(&uitt, &mut mem, idx).unwrap();
        assert!(first.ipi.is_some());
        assert!(second.ipi.is_none());
        assert!(!second.newly_posted);
    }
}
