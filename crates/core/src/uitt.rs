//! The User Interrupt Target Table (UITT).
//!
//! A UITT is a per-process, kernel-managed table granting the process
//! permission to send user interrupts. Each valid entry is a tuple
//! ⟨UPID address, user vector⟩ (§3.1). `senduipi` takes an index into this
//! table; an invalid index faults.
//!
//! Since the `uipi_abi` refactor each entry is a view over the packed
//! 16-byte [`abi::UittEntry`] memory form ([`UittEntry::packed`]), and
//! the whole table serializes to its byte image ([`Uitt::pack`]) so the
//! differential fuzzer can compare tables across models byte for byte.

use serde::{Deserialize, Serialize};
use xui_uipi_abi as abi;

use crate::error::XuiError;
use crate::vectors::UserVector;

/// Address of a UPID in (simulated) shared memory.
///
/// UITT entries reference UPIDs by address because the descriptor is a
/// memory-resident structure that sender microcode reads and RMWs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UpidAddr(pub u64);

impl UpidAddr {
    /// Returns the raw address.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Index of an entry in a [`Uitt`], the operand of `senduipi`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UittIndex(pub usize);

/// One UITT entry: where to post (`upid`) and what to post (`vector`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UittEntry {
    /// Address of the destination thread's UPID.
    pub upid: UpidAddr,
    /// The user vector delivered to the destination's handler.
    pub vector: UserVector,
    /// Whether the entry is valid; `senduipi` on an invalid entry faults.
    pub valid: bool,
}

impl UittEntry {
    /// The entry in its packed 16-byte memory form.
    #[must_use]
    pub fn packed(&self) -> abi::UittEntry {
        let mut e = abi::UittEntry::valid_entry(self.vector.as_u8(), self.upid.as_u64());
        e.set_valid(self.valid);
        e
    }

    /// Rebuilds the view from the packed memory form (the user vector is
    /// truncated into the 6-bit UV space, as hardware would).
    #[must_use]
    pub fn from_packed(packed: &abi::UittEntry) -> Self {
        Self {
            upid: UpidAddr(packed.target_upid_addr),
            vector: UserVector::from_truncated(packed.user_vec),
            valid: packed.is_valid(),
        }
    }
}

/// A per-process User Interrupt Target Table.
///
/// The kernel appends entries via `register_sender(...)`; the process sends
/// with `senduipi(index)`.
///
/// # Examples
///
/// ```
/// use xui_core::uitt::{Uitt, UpidAddr};
/// use xui_core::vectors::UserVector;
///
/// let mut uitt = Uitt::new();
/// let idx = uitt.register(UpidAddr(0x1000), UserVector::new(3)?);
/// let entry = uitt.lookup(idx)?;
/// assert_eq!(entry.upid, UpidAddr(0x1000));
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uitt {
    entries: Vec<UittEntry>,
}

impl Uitt {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a valid entry, returning the index `senduipi` should use.
    pub fn register(&mut self, upid: UpidAddr, vector: UserVector) -> UittIndex {
        self.entries.push(UittEntry {
            upid,
            vector,
            valid: true,
        });
        UittIndex(self.entries.len() - 1)
    }

    /// Writes a valid entry into a specific slot (the allocator-driven
    /// kernel path: a bitmap allocator picks the slot, so freed entries
    /// are reused instead of the table growing forever). The table is
    /// extended with invalid entries as needed.
    pub fn register_at(&mut self, index: UittIndex, upid: UpidAddr, vector: UserVector) {
        if index.0 >= self.entries.len() {
            self.entries.resize(
                index.0 + 1,
                UittEntry { upid: UpidAddr(0), vector: UserVector::from_truncated(0), valid: false },
            );
        }
        self.entries[index.0] = UittEntry { upid, vector, valid: true };
    }

    /// Looks up an entry for `senduipi`.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::InvalidUittIndex`] if the index is out of range
    /// or the entry has been invalidated — the conditions under which
    /// hardware raises `#GP`.
    pub fn lookup(&self, index: UittIndex) -> Result<UittEntry, XuiError> {
        match self.entries.get(index.0) {
            Some(entry) if entry.valid => Ok(*entry),
            _ => Err(XuiError::InvalidUittIndex { index: index.0 }),
        }
    }

    /// Invalidates an entry (e.g. the destination unregistered its
    /// handler). Subsequent `senduipi` through this index faults.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::InvalidUittIndex`] if the index is out of range.
    pub fn invalidate(&mut self, index: UittIndex) -> Result<(), XuiError> {
        match self.entries.get_mut(index.0) {
            Some(entry) => {
                entry.valid = false;
                Ok(())
            }
            None => Err(XuiError::InvalidUittIndex { index: index.0 }),
        }
    }

    /// Number of slots in the table (valid or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the table's slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = &UittEntry> {
        self.entries.iter()
    }

    /// Serializes the table as its packed memory image: each slot's
    /// 16-byte [`abi::UittEntry`] form, concatenated in index order.
    #[must_use]
    pub fn pack(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.entries.len() * abi::uitt::UITT_ENTRY_BYTES);
        for entry in &self.entries {
            bytes.extend_from_slice(&entry.packed().pack());
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    #[test]
    fn register_then_lookup() {
        let mut uitt = Uitt::new();
        let a = uitt.register(UpidAddr(0x100), uv(1));
        let b = uitt.register(UpidAddr(0x200), uv(2));
        assert_eq!(a, UittIndex(0));
        assert_eq!(b, UittIndex(1));
        assert_eq!(uitt.lookup(a).unwrap().upid, UpidAddr(0x100));
        assert_eq!(uitt.lookup(b).unwrap().vector, uv(2));
        assert_eq!(uitt.len(), 2);
        assert!(!uitt.is_empty());
    }

    #[test]
    fn lookup_out_of_range_faults() {
        let uitt = Uitt::new();
        assert_eq!(
            uitt.lookup(UittIndex(0)),
            Err(XuiError::InvalidUittIndex { index: 0 })
        );
    }

    #[test]
    fn invalidated_entry_faults_but_keeps_indices_stable() {
        let mut uitt = Uitt::new();
        let a = uitt.register(UpidAddr(0x100), uv(1));
        let b = uitt.register(UpidAddr(0x200), uv(2));
        uitt.invalidate(a).unwrap();
        assert_eq!(
            uitt.lookup(a),
            Err(XuiError::InvalidUittIndex { index: 0 })
        );
        assert_eq!(uitt.lookup(b).unwrap().upid, UpidAddr(0x200));
    }

    #[test]
    fn invalidate_out_of_range_faults() {
        let mut uitt = Uitt::new();
        assert!(uitt.invalidate(UittIndex(3)).is_err());
    }

    #[test]
    fn packed_entry_round_trips_and_table_image_is_16_bytes_per_slot() {
        let mut uitt = Uitt::new();
        let a = uitt.register(UpidAddr(0x1000), uv(5));
        uitt.register(UpidAddr(0x2000), uv(9));
        uitt.invalidate(a).unwrap();
        for entry in uitt.iter() {
            assert_eq!(&UittEntry::from_packed(&entry.packed()), entry);
        }
        let image = uitt.pack();
        assert_eq!(image.len(), 32);
        assert_eq!(image[0], 0, "invalidated entry has the valid bit clear");
        assert_eq!(image[16], 1);
        assert_eq!(image[17], 9);
        assert_eq!(u64::from_le_bytes(image[24..32].try_into().unwrap()), 0x2000);
    }

    #[test]
    fn register_at_fills_a_specific_slot_and_pads_with_invalid() {
        let mut uitt = Uitt::new();
        uitt.register_at(UittIndex(2), UpidAddr(0x3000), uv(7));
        assert_eq!(uitt.len(), 3);
        assert!(uitt.lookup(UittIndex(0)).is_err());
        assert!(uitt.lookup(UittIndex(1)).is_err());
        let e = uitt.lookup(UittIndex(2)).unwrap();
        assert_eq!((e.upid, e.vector), (UpidAddr(0x3000), uv(7)));
        // Reuse of a freed slot overwrites in place.
        uitt.invalidate(UittIndex(2)).unwrap();
        uitt.register_at(UittIndex(2), UpidAddr(0x4000), uv(1));
        assert_eq!(uitt.lookup(UittIndex(2)).unwrap().upid, UpidAddr(0x4000));
        assert_eq!(uitt.len(), 3, "no growth on reuse");
    }

    #[test]
    fn iter_walks_in_index_order() {
        let mut uitt = Uitt::new();
        uitt.register(UpidAddr(0x1), uv(0));
        uitt.register(UpidAddr(0x2), uv(1));
        let addrs: Vec<_> = uitt.iter().map(|e| e.upid.as_u64()).collect();
        assert_eq!(addrs, vec![0x1, 0x2]);
    }
}
