//! The User Interrupt Target Table (UITT).
//!
//! A UITT is a per-process, kernel-managed table granting the process
//! permission to send user interrupts. Each valid entry is a tuple
//! ⟨UPID address, user vector⟩ (§3.1). `senduipi` takes an index into this
//! table; an invalid index faults.

use serde::{Deserialize, Serialize};

use crate::error::XuiError;
use crate::vectors::UserVector;

/// Address of a UPID in (simulated) shared memory.
///
/// UITT entries reference UPIDs by address because the descriptor is a
/// memory-resident structure that sender microcode reads and RMWs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UpidAddr(pub u64);

impl UpidAddr {
    /// Returns the raw address.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Index of an entry in a [`Uitt`], the operand of `senduipi`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UittIndex(pub usize);

/// One UITT entry: where to post (`upid`) and what to post (`vector`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UittEntry {
    /// Address of the destination thread's UPID.
    pub upid: UpidAddr,
    /// The user vector delivered to the destination's handler.
    pub vector: UserVector,
    /// Whether the entry is valid; `senduipi` on an invalid entry faults.
    pub valid: bool,
}

/// A per-process User Interrupt Target Table.
///
/// The kernel appends entries via `register_sender(...)`; the process sends
/// with `senduipi(index)`.
///
/// # Examples
///
/// ```
/// use xui_core::uitt::{Uitt, UpidAddr};
/// use xui_core::vectors::UserVector;
///
/// let mut uitt = Uitt::new();
/// let idx = uitt.register(UpidAddr(0x1000), UserVector::new(3)?);
/// let entry = uitt.lookup(idx)?;
/// assert_eq!(entry.upid, UpidAddr(0x1000));
/// # Ok::<(), xui_core::error::XuiError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uitt {
    entries: Vec<UittEntry>,
}

impl Uitt {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a valid entry, returning the index `senduipi` should use.
    pub fn register(&mut self, upid: UpidAddr, vector: UserVector) -> UittIndex {
        self.entries.push(UittEntry {
            upid,
            vector,
            valid: true,
        });
        UittIndex(self.entries.len() - 1)
    }

    /// Looks up an entry for `senduipi`.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::InvalidUittIndex`] if the index is out of range
    /// or the entry has been invalidated — the conditions under which
    /// hardware raises `#GP`.
    pub fn lookup(&self, index: UittIndex) -> Result<UittEntry, XuiError> {
        match self.entries.get(index.0) {
            Some(entry) if entry.valid => Ok(*entry),
            _ => Err(XuiError::InvalidUittIndex { index: index.0 }),
        }
    }

    /// Invalidates an entry (e.g. the destination unregistered its
    /// handler). Subsequent `senduipi` through this index faults.
    ///
    /// # Errors
    ///
    /// Returns [`XuiError::InvalidUittIndex`] if the index is out of range.
    pub fn invalidate(&mut self, index: UittIndex) -> Result<(), XuiError> {
        match self.entries.get_mut(index.0) {
            Some(entry) => {
                entry.valid = false;
                Ok(())
            }
            None => Err(XuiError::InvalidUittIndex { index: index.0 }),
        }
    }

    /// Number of slots in the table (valid or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the table's slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = &UittEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uv(raw: u8) -> UserVector {
        UserVector::new(raw).unwrap()
    }

    #[test]
    fn register_then_lookup() {
        let mut uitt = Uitt::new();
        let a = uitt.register(UpidAddr(0x100), uv(1));
        let b = uitt.register(UpidAddr(0x200), uv(2));
        assert_eq!(a, UittIndex(0));
        assert_eq!(b, UittIndex(1));
        assert_eq!(uitt.lookup(a).unwrap().upid, UpidAddr(0x100));
        assert_eq!(uitt.lookup(b).unwrap().vector, uv(2));
        assert_eq!(uitt.len(), 2);
        assert!(!uitt.is_empty());
    }

    #[test]
    fn lookup_out_of_range_faults() {
        let uitt = Uitt::new();
        assert_eq!(
            uitt.lookup(UittIndex(0)),
            Err(XuiError::InvalidUittIndex { index: 0 })
        );
    }

    #[test]
    fn invalidated_entry_faults_but_keeps_indices_stable() {
        let mut uitt = Uitt::new();
        let a = uitt.register(UpidAddr(0x100), uv(1));
        let b = uitt.register(UpidAddr(0x200), uv(2));
        uitt.invalidate(a).unwrap();
        assert_eq!(
            uitt.lookup(a),
            Err(XuiError::InvalidUittIndex { index: 0 })
        );
        assert_eq!(uitt.lookup(b).unwrap().upid, UpidAddr(0x200));
    }

    #[test]
    fn invalidate_out_of_range_faults() {
        let mut uitt = Uitt::new();
        assert!(uitt.invalidate(UittIndex(3)).is_err());
    }

    #[test]
    fn iter_walks_in_index_order() {
        let mut uitt = Uitt::new();
        uitt.register(UpidAddr(0x1), uv(0));
        uitt.register(UpidAddr(0x2), uv(1));
        let addrs: Vec<_> = uitt.iter().map(|e| e.upid.as_u64()).collect();
        assert_eq!(addrs, vec![0x1, 0x2]);
    }
}
