//! Error type shared across the xUI model crates.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by the UIPI/xUI architectural model.
///
/// Each variant corresponds to a condition that on real hardware would be a
/// fault (`#GP`), a rejected system call, or a programming error caught by
/// the kernel interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum XuiError {
    /// A user vector did not fit in the 6-bit UV space.
    UserVectorOutOfRange {
        /// The offending raw value.
        raw: u8,
    },
    /// `senduipi` was executed with an index past the end of the UITT, or
    /// pointing at an invalid entry (hardware raises `#GP`).
    InvalidUittIndex {
        /// The offending index.
        index: usize,
    },
    /// An operation referenced a UPID address that is not mapped.
    UnknownUpid {
        /// The offending address.
        addr: u64,
    },
    /// An operation referenced a thread that does not exist.
    UnknownThread {
        /// The offending thread id.
        thread: usize,
    },
    /// An operation referenced a core that does not exist.
    UnknownCore {
        /// The offending core index.
        core: usize,
    },
    /// A thread tried to use a user-interrupt feature without first
    /// registering a handler (`register_handler` in §3.2).
    HandlerNotRegistered {
        /// The offending thread id.
        thread: usize,
    },
    /// The KB_Timer was programmed while disabled by the kernel
    /// (`kb_config_MSR`, §4.3).
    KbTimerDisabled,
    /// A forwarding registration asked for a conventional vector that is
    /// already forwarded to another thread on the same core (§4.5: the
    /// per-core vector space "must be shared by threads on the host").
    VectorAlreadyForwarded {
        /// The contested conventional vector.
        vector: u8,
    },
    /// A thread attempted to run on a core while another thread occupied it.
    CoreBusy {
        /// The contested core index.
        core: usize,
    },
    /// The thread is not currently running on any core, but the operation
    /// requires it to be in context.
    ThreadNotRunning {
        /// The offending thread id.
        thread: usize,
    },
    /// `senduipi` executed while `IA32_UINTR_TT` has the enable bit clear
    /// (hardware raises `#UD`/`#GP`).
    SenduipiDisabled,
}

impl fmt::Display for XuiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::UserVectorOutOfRange { raw } => {
                write!(f, "user vector {raw} does not fit in the 6-bit UV space")
            }
            Self::InvalidUittIndex { index } => {
                write!(f, "senduipi index {index} names no valid UITT entry")
            }
            Self::UnknownUpid { addr } => write!(f, "no UPID mapped at {addr:#x}"),
            Self::UnknownThread { thread } => write!(f, "unknown thread {thread}"),
            Self::UnknownCore { core } => write!(f, "unknown core {core}"),
            Self::HandlerNotRegistered { thread } => {
                write!(f, "thread {thread} has not registered a user interrupt handler")
            }
            Self::KbTimerDisabled => {
                write!(f, "the KB_Timer is disabled by the kernel for this thread")
            }
            Self::VectorAlreadyForwarded { vector } => {
                write!(f, "vector {vector} is already forwarded on this core")
            }
            Self::CoreBusy { core } => write!(f, "core {core} is already running a thread"),
            Self::ThreadNotRunning { thread } => {
                write!(f, "thread {thread} is not running on any core")
            }
            Self::SenduipiDisabled => {
                write!(f, "senduipi is not enabled for this thread (IA32_UINTR_TT bit 0 clear)")
            }
        }
    }
}

impl std::error::Error for XuiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            XuiError::UserVectorOutOfRange { raw: 99 },
            XuiError::InvalidUittIndex { index: 7 },
            XuiError::UnknownUpid { addr: 0x1000 },
            XuiError::UnknownThread { thread: 1 },
            XuiError::UnknownCore { core: 2 },
            XuiError::HandlerNotRegistered { thread: 3 },
            XuiError::KbTimerDisabled,
            XuiError::VectorAlreadyForwarded { vector: 8 },
            XuiError::CoreBusy { core: 0 },
            XuiError::ThreadNotRunning { thread: 5 },
            XuiError::SenduipiDisabled,
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XuiError>();
    }
}
