//! The 64-byte User Posted Interrupt Descriptor.

use core::mem::{align_of, offset_of, size_of};

use crate::nc::UintrNc;

/// The UPID's size in memory: one cache line.
pub const UPID_BYTES: usize = 64;

/// A User Posted Interrupt Descriptor, 64-byte aligned exactly as the
/// hardware requires (`IA32_UINTR_PD` ignores the low 6 address bits).
///
/// Only the first 16 bytes are architecturally defined — the
/// notification-control word and the 64-bit PUIR posted-interrupt
/// bitmap; the remaining 48 bytes of the cache line are reserved and
/// always zero in packed images.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Upid {
    /// Notification control: ON/SN/NV/NDST.
    pub nc: UintrNc,
    /// Posted user interrupt requests, one bit per user vector.
    pub puir: u64,
}

// Compile-time layout contract: one cache line, PUIR in the second
// quadword.
const _: () = assert!(size_of::<Upid>() == UPID_BYTES);
const _: () = assert!(align_of::<Upid>() == 64);
const _: () = assert!(offset_of!(Upid, nc) == 0);
const _: () = assert!(offset_of!(Upid, puir) == 8);

impl Upid {
    /// An all-zero descriptor.
    #[must_use]
    pub const fn new() -> Self {
        Self { nc: UintrNc::new(), puir: 0 }
    }

    /// Builds a descriptor from its two 64-bit memory words (low word =
    /// control, high word = PUIR), masking reserved bits.
    #[must_use]
    pub fn from_words(low: u64, high: u64) -> Self {
        Self { nc: UintrNc::from_u64(low), puir: high }
    }

    /// The control word as a 64-bit little-endian load.
    #[must_use]
    pub fn low_word(&self) -> u64 {
        self.nc.to_u64()
    }

    /// The PUIR word.
    #[must_use]
    pub const fn high_word(&self) -> u64 {
        self.puir
    }

    /// Posts user vector `uv` (0..64) into PUIR; returns `true` when the
    /// bit was newly set.
    pub fn post(&mut self, uv: u8) -> bool {
        let bit = 1u64 << (uv & 0x3f);
        let was = self.puir & bit != 0;
        self.puir |= bit;
        !was
    }

    /// Atomically drains PUIR, returning the posted set.
    pub fn take_puir(&mut self) -> u64 {
        core::mem::take(&mut self.puir)
    }

    /// Serializes into the 64-byte cache-line image. Reserved bytes
    /// 16..64 are zero.
    #[must_use]
    pub fn pack(&self) -> [u8; UPID_BYTES] {
        let mut bytes = [0u8; UPID_BYTES];
        bytes[0..8].copy_from_slice(&self.nc.pack());
        bytes[8..16].copy_from_slice(&self.puir.to_le_bytes());
        bytes
    }

    /// Deserializes from a 64-byte cache-line image, masking reserved
    /// bits deterministically (status bits 7:2, reserved bytes, and the
    /// reserved tail of the line).
    #[must_use]
    pub fn unpack(bytes: &[u8; UPID_BYTES]) -> Self {
        let mut head = [0u8; 8];
        head.copy_from_slice(&bytes[0..8]);
        let mut puir = [0u8; 8];
        puir.copy_from_slice(&bytes[8..16]);
        Self { nc: UintrNc::unpack(&head), puir: u64::from_le_bytes(puir) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_image_places_fields_per_sdm() {
        let mut upid = Upid::new();
        upid.nc.set_on(true);
        upid.nc.nv = 0xec;
        upid.nc.ndst = 7;
        assert!(upid.post(33));
        let bytes = upid.pack();
        assert_eq!(bytes[0], 1, "ON lives in bit 0 of byte 0");
        assert_eq!(bytes[2], 0xec, "NV lives in byte 2");
        assert_eq!(bytes[4], 7, "NDST starts at byte 4");
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 1 << 33);
        assert!(bytes[16..].iter().all(|&b| b == 0), "tail is reserved-zero");
    }

    #[test]
    fn word_round_trip_matches_pack() {
        let mut upid = Upid::new();
        upid.nc.set_sn(true);
        upid.nc.ndst = 0x1234_5678;
        upid.puir = 0xdead_beef_f00d_cafe;
        let rebuilt = Upid::from_words(upid.low_word(), upid.high_word());
        assert_eq!(rebuilt, upid);
        assert_eq!(rebuilt.pack(), upid.pack());
    }

    #[test]
    fn take_puir_drains() {
        let mut upid = Upid::new();
        upid.post(0);
        upid.post(63);
        assert_eq!(upid.take_puir(), (1 << 0) | (1 << 63));
        assert_eq!(upid.puir, 0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::nc::STATUS_MASK;

    proptest! {
        /// Any 64-byte pattern survives unpack→pack for the defined
        /// fields; reserved bits and the reserved tail are masked to
        /// zero, and a second round trip is the identity.
        #[test]
        fn cache_line_round_trip(bytes in any::<[u8; 64]>()) {
            let upid = Upid::unpack(&bytes);
            let repacked = upid.pack();
            prop_assert_eq!(repacked[0], bytes[0] & STATUS_MASK);
            prop_assert_eq!(repacked[2], bytes[2]);
            prop_assert_eq!(&repacked[4..16], &bytes[4..16]);
            prop_assert_eq!(repacked[1], 0);
            prop_assert_eq!(repacked[3], 0);
            prop_assert!(repacked[16..].iter().all(|&b| b == 0));
            prop_assert_eq!(Upid::unpack(&repacked), upid);
        }

        /// The two-word view and the byte view agree for any state.
        #[test]
        fn words_and_bytes_agree(low in any::<u64>(), high in any::<u64>()) {
            let upid = Upid::from_words(low, high);
            let bytes = upid.pack();
            prop_assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), upid.low_word());
            prop_assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), high);
        }
    }
}
