//! Deterministic bitmap index allocators for kernel table slots.
//!
//! The kernel hands out UPID-pool slots (receiver registration) and
//! UITT entries (sender registration) through these. Allocation is
//! lowest-free-index-first, so replays are deterministic, and release
//! reports double-frees instead of silently corrupting the bitmap.

/// A fixed-capacity bitmap allocator over indices `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexAllocator {
    bits: Vec<u64>,
    capacity: usize,
    allocated: usize,
}

impl IndexAllocator {
    /// An empty allocator over `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { bits: vec![0; capacity.div_ceil(64)], capacity, allocated: 0 }
    }

    /// The number of indices this allocator manages.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many indices are currently allocated.
    #[must_use]
    pub const fn allocated(&self) -> usize {
        self.allocated
    }

    /// True when no free index remains (the table-full `ENOSPC` case).
    #[must_use]
    pub const fn is_full(&self) -> bool {
        self.allocated == self.capacity
    }

    /// Whether `index` is currently allocated.
    #[must_use]
    pub fn is_allocated(&self, index: usize) -> bool {
        index < self.capacity && self.bits[index / 64] & (1 << (index % 64)) != 0
    }

    /// Claims and returns the lowest free index, or `None` when the
    /// table is full.
    pub fn allocate(&mut self) -> Option<usize> {
        for (word_idx, word) in self.bits.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as usize;
                let index = word_idx * 64 + bit;
                if index >= self.capacity {
                    return None;
                }
                *word |= 1 << bit;
                self.allocated += 1;
                return Some(index);
            }
        }
        None
    }

    /// Releases `index` back to the pool. Returns `true` when the index
    /// was allocated (so a double free or an out-of-range index is
    /// observable rather than silent).
    pub fn release(&mut self, index: usize) -> bool {
        if !self.is_allocated(index) {
            return false;
        }
        self.bits[index / 64] &= !(1 << (index % 64));
        self.allocated -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_free_index_first() {
        let mut a = IndexAllocator::new(4);
        assert_eq!(a.allocate(), Some(0));
        assert_eq!(a.allocate(), Some(1));
        assert!(a.release(0));
        assert_eq!(a.allocate(), Some(0), "freed slot is reused first");
        assert_eq!(a.allocate(), Some(2));
        assert_eq!(a.allocate(), Some(3));
        assert!(a.is_full());
        assert_eq!(a.allocate(), None, "table full");
    }

    #[test]
    fn release_reports_double_free_and_out_of_range() {
        let mut a = IndexAllocator::new(2);
        assert!(!a.release(0), "never allocated");
        assert_eq!(a.allocate(), Some(0));
        assert!(a.release(0));
        assert!(!a.release(0), "double free");
        assert!(!a.release(7), "out of range");
    }

    #[test]
    fn capacity_not_a_multiple_of_64_is_bounded() {
        let mut a = IndexAllocator::new(65);
        for i in 0..65 {
            assert_eq!(a.allocate(), Some(i));
        }
        assert_eq!(a.allocate(), None);
        assert!(a.release(64));
        assert_eq!(a.allocate(), Some(64));
    }

    #[test]
    fn zero_capacity_is_always_full() {
        let mut a = IndexAllocator::new(0);
        assert!(a.is_full());
        assert_eq!(a.allocate(), None);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Against a model set: allocate returns the lowest free index,
        /// release frees exactly that index, and the allocator never
        /// leaks (every freed index is allocatable again).
        #[test]
        fn matches_a_model_set(ops in proptest::collection::vec((any::<bool>(), 0usize..96), 1..200)) {
            let mut a = IndexAllocator::new(96);
            let mut model = std::collections::BTreeSet::new();
            for (is_alloc, idx) in ops {
                if is_alloc {
                    let expect = (0..96).find(|i| !model.contains(i));
                    let got = a.allocate();
                    prop_assert_eq!(got, expect);
                    if let Some(i) = got {
                        model.insert(i);
                    }
                } else {
                    let expect = model.remove(&idx);
                    prop_assert_eq!(a.release(idx), expect);
                }
                prop_assert_eq!(a.allocated(), model.len());
                for i in 0..96 {
                    prop_assert_eq!(a.is_allocated(i), model.contains(&i));
                }
            }
        }
    }
}
