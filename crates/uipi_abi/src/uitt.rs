//! The 16-byte User Interrupt Target Table entry.

use core::mem::{align_of, offset_of, size_of};

/// A UITT entry's size in memory.
pub const UITT_ENTRY_BYTES: usize = 16;

/// Bit 0 of the first byte: entry is valid.
pub const VALID: u8 = 1 << 0;

/// One User Interrupt Target Table entry, exactly as `senduipi`
/// dereferences it:
///
/// | Byte(s)  | Field | Meaning |
/// |----------|-------|---------|
/// | 0        | valid | bit 0 V (valid), bits 7:1 reserved |
/// | 1        | `user_vec` | user vector posted at the target |
/// | 2..=7    | reserved | must be zero |
/// | 8..=15   | `target_upid_addr` | physical address of the target UPID, little endian |
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UittEntry {
    /// Bit 0: valid. Bits 7:1 reserved (zero).
    pub valid: u8,
    /// The user vector this entry posts.
    pub user_vec: u8,
    /// Reserved bytes, always zero.
    pub reserved: [u8; 6],
    /// Address of the target UPID (64-byte aligned).
    pub target_upid_addr: u64,
}

// Compile-time layout contract: 16 bytes, address in the second
// quadword.
const _: () = assert!(size_of::<UittEntry>() == UITT_ENTRY_BYTES);
const _: () = assert!(align_of::<UittEntry>() == 16);
const _: () = assert!(offset_of!(UittEntry, valid) == 0);
const _: () = assert!(offset_of!(UittEntry, user_vec) == 1);
const _: () = assert!(offset_of!(UittEntry, reserved) == 2);
const _: () = assert!(offset_of!(UittEntry, target_upid_addr) == 8);

impl UittEntry {
    /// An all-zero (invalid) entry.
    #[must_use]
    pub const fn new() -> Self {
        Self { valid: 0, user_vec: 0, reserved: [0; 6], target_upid_addr: 0 }
    }

    /// A valid entry posting `user_vec` at the UPID at `target_upid_addr`.
    #[must_use]
    pub const fn valid_entry(user_vec: u8, target_upid_addr: u64) -> Self {
        Self { valid: VALID, user_vec, reserved: [0; 6], target_upid_addr }
    }

    /// Whether the valid bit is set.
    #[must_use]
    pub const fn is_valid(&self) -> bool {
        self.valid & VALID != 0
    }

    /// Sets or clears the valid bit.
    pub fn set_valid(&mut self, value: bool) {
        if value {
            self.valid |= VALID;
        } else {
            self.valid &= !VALID;
        }
    }

    /// Serializes into the 16-byte memory image.
    #[must_use]
    pub fn pack(&self) -> [u8; UITT_ENTRY_BYTES] {
        let mut bytes = [0u8; UITT_ENTRY_BYTES];
        bytes[0] = self.valid;
        bytes[1] = self.user_vec;
        bytes[2..8].copy_from_slice(&self.reserved);
        bytes[8..16].copy_from_slice(&self.target_upid_addr.to_le_bytes());
        bytes
    }

    /// Deserializes from the 16-byte memory image, masking reserved
    /// bits deterministically (valid bits 7:1 and bytes 2..8).
    #[must_use]
    pub fn unpack(bytes: &[u8; UITT_ENTRY_BYTES]) -> Self {
        Self {
            valid: bytes[0] & VALID,
            user_vec: bytes[1],
            reserved: [0; 6],
            target_upid_addr: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_entry_packs_per_layout() {
        let e = UittEntry::valid_entry(5, 0x1000);
        let bytes = e.pack();
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[1], 5);
        assert!(bytes[2..8].iter().all(|&b| b == 0));
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 0x1000);
    }

    #[test]
    fn invalidation_clears_only_the_valid_bit() {
        let mut e = UittEntry::valid_entry(9, 0x2000);
        e.set_valid(false);
        assert!(!e.is_valid());
        assert_eq!(e.user_vec, 9);
        assert_eq!(e.target_upid_addr, 0x2000);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Any byte pattern survives unpack→pack for defined fields,
        /// reserved bits masked deterministically.
        #[test]
        fn entry_round_trip(bytes in any::<[u8; 16]>()) {
            let e = UittEntry::unpack(&bytes);
            let repacked = e.pack();
            prop_assert_eq!(repacked[0], bytes[0] & VALID);
            prop_assert_eq!(repacked[1], bytes[1]);
            prop_assert!(repacked[2..8].iter().all(|&b| b == 0));
            prop_assert_eq!(&repacked[8..16], &bytes[8..16]);
            prop_assert_eq!(UittEntry::unpack(&repacked), e);
        }
    }
}
