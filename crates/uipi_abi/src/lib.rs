//! # xui-uipi-abi
//!
//! The single bit-accurate definition of the Intel **UIPI** architectural
//! surface, shared by every model in the workspace: the protocol model
//! (`xui-core`), the kernel model (`xui-kernel`), the cycle-level
//! simulator's memory bridge (`xui-sim`), and the executable reference
//! oracle (`xui-oracle`).
//!
//! Everything here is laid out exactly as the hardware stores it, so the
//! differential fuzzer can compare *serialized ABI bytes* between models
//! instead of abstract fields:
//!
//! - [`UintrNc`] — the packed notification-control word at the head of a
//!   UPID (ON bit 0, SN bit 1, NV byte 2, NDST dword 1).
//! - [`Upid`] — the 64-byte-aligned User Posted Interrupt Descriptor
//!   (`UintrNc` + the 64-bit PUIR posted-interrupt bitmap), with a
//!   lossless round-trip to and from its `[u8; 64]` memory image.
//! - [`UittEntry`] — the 16-byte User Interrupt Target Table entry
//!   (valid bit, user vector, target UPID address).
//! - [`MsrFile`] — the `IA32_UINTR_*` register file (0x985–0x98A) with
//!   typed read/write and reserved-bit masking.
//! - [`IndexAllocator`] — the deterministic bitmap allocator the kernel
//!   uses for receiver (UPID pool) and sender (UITT) table slots.
//!
//! Reserved bits are masked *deterministically*: every constructor and
//! every `unpack` clears them, so two models that agree on the defined
//! fields produce byte-identical images.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod msr;
pub mod nc;
pub mod uitt;
pub mod upid;

pub use alloc::IndexAllocator;
pub use msr::{MsrFile, UintrMsr};
pub use nc::UintrNc;
pub use uitt::UittEntry;
pub use upid::Upid;
