//! The packed UPID notification-control word.
//!
//! This is the first 8 bytes of the 64-byte UPID, exactly as the SDM
//! lays it out (Vol. 3, "User Posted-Interrupt Descriptor"):
//!
//! | Byte(s) | Field | Meaning |
//! |---------|-------|---------|
//! | 0       | status | bit 0 `ON` (outstanding notification), bit 1 `SN` (suppress notification), bits 7:2 reserved |
//! | 1       | reserved | must be zero |
//! | 2       | `NV` | notification vector the IPI carries |
//! | 3       | reserved | must be zero |
//! | 4..=7   | `NDST` | notification destination (APIC ID), little endian |

use core::mem::{align_of, offset_of, size_of};

/// Bit 0 of the status byte: outstanding notification.
pub const ON: u8 = 1 << 0;
/// Bit 1 of the status byte: suppress notification.
pub const SN: u8 = 1 << 1;
/// The defined bits of the status byte (everything else is reserved).
pub const STATUS_MASK: u8 = ON | SN;

/// The packed notification-control word (`UINTR_NC` in the nimbos/linux
/// uintr ports): byte-for-byte the head of a UPID.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UintrNc {
    /// Status byte: bit 0 `ON`, bit 1 `SN`, bits 7:2 reserved (zero).
    pub status: u8,
    /// Reserved byte, always zero.
    pub reserved1: u8,
    /// Notification vector.
    pub nv: u8,
    /// Reserved byte, always zero.
    pub reserved2: u8,
    /// Notification destination (APIC ID).
    pub ndst: u32,
}

// Compile-time layout contract: the word is 8 bytes with every field at
// its architectural offset.
const _: () = assert!(size_of::<UintrNc>() == 8);
const _: () = assert!(align_of::<UintrNc>() == 4);
const _: () = assert!(offset_of!(UintrNc, status) == 0);
const _: () = assert!(offset_of!(UintrNc, reserved1) == 1);
const _: () = assert!(offset_of!(UintrNc, nv) == 2);
const _: () = assert!(offset_of!(UintrNc, reserved2) == 3);
const _: () = assert!(offset_of!(UintrNc, ndst) == 4);

impl UintrNc {
    /// An all-zero control word.
    #[must_use]
    pub const fn new() -> Self {
        Self { status: 0, reserved1: 0, nv: 0, reserved2: 0, ndst: 0 }
    }

    /// The outstanding-notification bit.
    #[must_use]
    pub const fn on(&self) -> bool {
        self.status & ON != 0
    }

    /// The suppress-notification bit.
    #[must_use]
    pub const fn sn(&self) -> bool {
        self.status & SN != 0
    }

    /// Sets or clears `ON`.
    pub fn set_on(&mut self, value: bool) {
        if value {
            self.status |= ON;
        } else {
            self.status &= !ON;
        }
    }

    /// Sets or clears `SN`. Touches only bit 1 — the kernel's
    /// suspend-path RMW must never disturb a racing post.
    pub fn set_sn(&mut self, value: bool) {
        if value {
            self.status |= SN;
        } else {
            self.status &= !SN;
        }
    }

    /// Atomic-style `lock bts`: sets `ON` and reports whether it was
    /// already set (the sender elides the IPI when it was).
    pub fn test_and_set_on(&mut self) -> bool {
        let was = self.on();
        self.status |= ON;
        was
    }

    /// Atomic-style `lock btr`: clears `ON` and reports whether it was
    /// set (notification processing runs only when it was).
    pub fn test_and_clear_on(&mut self) -> bool {
        let was = self.on();
        self.status &= !ON;
        was
    }

    /// Atomic-style `lock bts` on `SN`: sets it and reports the prior
    /// value (context-switch-out is idempotent).
    pub fn test_and_set_sn(&mut self) -> bool {
        let was = self.sn();
        self.status |= SN;
        was
    }

    /// Atomic-style `lock btr` on `SN`: clears it and reports the prior
    /// value (context-switch-in re-arms notifications).
    pub fn test_and_clear_sn(&mut self) -> bool {
        let was = self.sn();
        self.status &= !SN;
        was
    }

    /// Clears every reserved bit in place (status bits 7:2 and both
    /// reserved bytes), leaving the defined fields untouched. All
    /// constructors and unpackers in this crate apply this, so images
    /// that agree on defined fields are byte-identical.
    pub fn mask_reserved(&mut self) {
        self.status &= STATUS_MASK;
        self.reserved1 = 0;
        self.reserved2 = 0;
    }

    /// Serializes into the 8-byte memory image (little endian).
    #[must_use]
    pub fn pack(&self) -> [u8; 8] {
        let mut bytes = [0u8; 8];
        bytes[0] = self.status;
        bytes[1] = self.reserved1;
        bytes[2] = self.nv;
        bytes[3] = self.reserved2;
        bytes[4..8].copy_from_slice(&self.ndst.to_le_bytes());
        bytes
    }

    /// Deserializes from the 8-byte memory image, masking reserved bits
    /// deterministically.
    #[must_use]
    pub fn unpack(bytes: &[u8; 8]) -> Self {
        let mut nc = Self {
            status: bytes[0],
            reserved1: bytes[1],
            nv: bytes[2],
            reserved2: bytes[3],
            ndst: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        };
        nc.mask_reserved();
        nc
    }

    /// The word as the low half of a 64-bit little-endian load — the
    /// form the cycle simulator's memory model moves around.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.pack())
    }

    /// Rebuilds the word from a 64-bit little-endian load, masking
    /// reserved bits.
    #[must_use]
    pub fn from_u64(word: u64) -> Self {
        Self::unpack(&word.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_bits_are_bit0_and_bit1() {
        let mut nc = UintrNc::new();
        nc.set_on(true);
        assert_eq!(nc.to_u64(), 1);
        nc.set_on(false);
        nc.set_sn(true);
        assert_eq!(nc.to_u64(), 2);
    }

    #[test]
    fn nv_and_ndst_sit_at_their_architectural_offsets() {
        let mut nc = UintrNc::new();
        nc.nv = 0xec;
        assert_eq!(nc.to_u64(), 0xec << 16);
        nc.nv = 0;
        nc.ndst = 0xdead_beef;
        assert_eq!(nc.to_u64(), 0xdead_beef << 32);
    }

    #[test]
    fn test_and_set_clear_report_prior_value() {
        let mut nc = UintrNc::new();
        assert!(!nc.test_and_set_on());
        assert!(nc.test_and_set_on());
        assert!(nc.test_and_clear_on());
        assert!(!nc.test_and_clear_on());
        assert!(!nc.test_and_set_sn());
        assert!(nc.test_and_clear_sn());
        assert!(!nc.sn());
    }

    #[test]
    fn unpack_masks_reserved_bits() {
        let nc = UintrNc::unpack(&[0xff; 8]);
        assert_eq!(nc.status, STATUS_MASK);
        assert_eq!(nc.reserved1, 0);
        assert_eq!(nc.reserved2, 0);
        assert_eq!(nc.nv, 0xff);
        assert_eq!(nc.ndst, u32::MAX);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Any byte pattern survives unpack→pack for defined fields, and
        /// pack∘unpack is idempotent (reserved bits masked once).
        #[test]
        fn round_trip_preserves_defined_fields(bytes in any::<[u8; 8]>()) {
            let nc = UintrNc::unpack(&bytes);
            let repacked = nc.pack();
            prop_assert_eq!(repacked[0], bytes[0] & STATUS_MASK);
            prop_assert_eq!(repacked[1], 0);
            prop_assert_eq!(repacked[2], bytes[2]);
            prop_assert_eq!(repacked[3], 0);
            prop_assert_eq!(&repacked[4..8], &bytes[4..8]);
            prop_assert_eq!(UintrNc::unpack(&repacked), nc);
        }

        /// `set_sn` touches only bit 1 of the packed image.
        #[test]
        fn set_sn_touches_only_bit1(bytes in any::<[u8; 8]>(), flips in proptest::collection::vec(any::<bool>(), 1..8)) {
            let base = UintrNc::unpack(&bytes);
            let mut nc = base;
            for f in flips {
                nc.set_sn(f);
                prop_assert_eq!(nc.sn(), f);
                prop_assert_eq!(nc.to_u64() & !2, base.to_u64() & !2);
            }
        }
    }
}
