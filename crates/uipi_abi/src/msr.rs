//! The `IA32_UINTR_*` model-specific-register file (0x985–0x98A).
//!
//! | Address | MSR | Defined bits |
//! |---------|-----|--------------|
//! | `0x985` | `IA32_UINTR_RR` | 63:0 — the UIRR posted-vector bitmap |
//! | `0x986` | `IA32_UINTR_HANDLER` | 63:0 — user handler entry point |
//! | `0x987` | `IA32_UINTR_STACKADJUST` | 63:0 — bit 0 selects load-vs-subtract |
//! | `0x988` | `IA32_UINTR_MISC` | 31:0 `UITTSZ`, 39:32 `UINV`; 63:40 reserved |
//! | `0x989` | `IA32_UINTR_PD` | 63:6 UPID address; 5:0 reserved (64-byte aligned) |
//! | `0x98A` | `IA32_UINTR_TT` | 63:4 UITT address, bit 0 `SENDUIPI` enable; 3:1 reserved |
//!
//! `WRMSR` to a reserved bit #GPs on hardware; this model instead masks
//! reserved bits deterministically on [`MsrFile::write`], so every model
//! that goes through the typed interface holds a byte-identical file.

/// `IA32_UINTR_RR` address.
pub const IA32_UINTR_RR: u32 = 0x985;
/// `IA32_UINTR_HANDLER` address.
pub const IA32_UINTR_HANDLER: u32 = 0x986;
/// `IA32_UINTR_STACKADJUST` address.
pub const IA32_UINTR_STACKADJUST: u32 = 0x987;
/// `IA32_UINTR_MISC` address.
pub const IA32_UINTR_MISC: u32 = 0x988;
/// `IA32_UINTR_PD` address.
pub const IA32_UINTR_PD: u32 = 0x989;
/// `IA32_UINTR_TT` address.
pub const IA32_UINTR_TT: u32 = 0x98a;

/// `UITTSZ` occupies `IA32_UINTR_MISC` bits 31:0.
pub const MISC_UITTSZ_MASK: u64 = 0xffff_ffff;
/// `UINV` occupies `IA32_UINTR_MISC` bits 39:32.
pub const MISC_UINV_SHIFT: u32 = 32;
/// The defined bits of `IA32_UINTR_MISC`.
pub const MISC_DEFINED: u64 = 0x0000_00ff_ffff_ffff;
/// The defined bits of `IA32_UINTR_PD` (the UPID is 64-byte aligned).
pub const PD_DEFINED: u64 = !0x3f;
/// Bit 0 of `IA32_UINTR_TT`: `senduipi` enable.
pub const TT_ENABLE: u64 = 1;
/// The defined bits of `IA32_UINTR_TT` (bits 3:1 reserved).
pub const TT_DEFINED: u64 = !0xe;

/// The six UINTR MSRs, in address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UintrMsr {
    /// `IA32_UINTR_RR` (0x985).
    Rr,
    /// `IA32_UINTR_HANDLER` (0x986).
    Handler,
    /// `IA32_UINTR_STACKADJUST` (0x987).
    StackAdjust,
    /// `IA32_UINTR_MISC` (0x988).
    Misc,
    /// `IA32_UINTR_PD` (0x989).
    Pd,
    /// `IA32_UINTR_TT` (0x98A).
    Tt,
}

/// Every UINTR MSR, in address order.
pub const ALL_MSRS: [UintrMsr; 6] = [
    UintrMsr::Rr,
    UintrMsr::Handler,
    UintrMsr::StackAdjust,
    UintrMsr::Misc,
    UintrMsr::Pd,
    UintrMsr::Tt,
];

impl UintrMsr {
    /// The MSR's architectural address.
    #[must_use]
    pub const fn address(self) -> u32 {
        match self {
            Self::Rr => IA32_UINTR_RR,
            Self::Handler => IA32_UINTR_HANDLER,
            Self::StackAdjust => IA32_UINTR_STACKADJUST,
            Self::Misc => IA32_UINTR_MISC,
            Self::Pd => IA32_UINTR_PD,
            Self::Tt => IA32_UINTR_TT,
        }
    }

    /// Looks an MSR up by architectural address.
    #[must_use]
    pub const fn from_address(addr: u32) -> Option<Self> {
        match addr {
            IA32_UINTR_RR => Some(Self::Rr),
            IA32_UINTR_HANDLER => Some(Self::Handler),
            IA32_UINTR_STACKADJUST => Some(Self::StackAdjust),
            IA32_UINTR_MISC => Some(Self::Misc),
            IA32_UINTR_PD => Some(Self::Pd),
            IA32_UINTR_TT => Some(Self::Tt),
            _ => None,
        }
    }

    /// The mask of defined (writable) bits; everything else is reserved
    /// and reads as zero.
    #[must_use]
    pub const fn defined_mask(self) -> u64 {
        match self {
            Self::Rr | Self::Handler | Self::StackAdjust => u64::MAX,
            Self::Misc => MISC_DEFINED,
            Self::Pd => PD_DEFINED,
            Self::Tt => TT_DEFINED,
        }
    }
}

/// The per-thread UINTR register file, stored exactly as `RDMSR` would
/// return it (reserved bits always zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MsrFile {
    rr: u64,
    handler: u64,
    stack_adjust: u64,
    misc: u64,
    pd: u64,
    tt: u64,
}

impl MsrFile {
    /// A zeroed register file (reset state).
    #[must_use]
    pub const fn new() -> Self {
        Self { rr: 0, handler: 0, stack_adjust: 0, misc: 0, pd: 0, tt: 0 }
    }

    /// `RDMSR`: the stored value (reserved bits read as zero).
    #[must_use]
    pub const fn read(&self, msr: UintrMsr) -> u64 {
        match msr {
            UintrMsr::Rr => self.rr,
            UintrMsr::Handler => self.handler,
            UintrMsr::StackAdjust => self.stack_adjust,
            UintrMsr::Misc => self.misc,
            UintrMsr::Pd => self.pd,
            UintrMsr::Tt => self.tt,
        }
    }

    /// `WRMSR` with deterministic reserved-bit masking; returns the
    /// value actually stored.
    pub fn write(&mut self, msr: UintrMsr, value: u64) -> u64 {
        let stored = value & msr.defined_mask();
        match msr {
            UintrMsr::Rr => self.rr = stored,
            UintrMsr::Handler => self.handler = stored,
            UintrMsr::StackAdjust => self.stack_adjust = stored,
            UintrMsr::Misc => self.misc = stored,
            UintrMsr::Pd => self.pd = stored,
            UintrMsr::Tt => self.tt = stored,
        }
        stored
    }

    /// `UINV` (MISC bits 39:32).
    #[must_use]
    pub const fn uinv(&self) -> u8 {
        (self.misc >> MISC_UINV_SHIFT) as u8
    }

    /// Writes `UINV`, preserving `UITTSZ` and masking reserved bits.
    pub fn set_uinv(&mut self, uinv: u8) {
        self.misc = (self.misc & MISC_UITTSZ_MASK) | ((uinv as u64) << MISC_UINV_SHIFT);
    }

    /// `UITTSZ` (MISC bits 31:0): highest valid UITT index.
    #[must_use]
    pub const fn uittsz(&self) -> u32 {
        (self.misc & MISC_UITTSZ_MASK) as u32
    }

    /// Writes `UITTSZ`, preserving `UINV`.
    pub fn set_uittsz(&mut self, size: u32) {
        self.misc = (self.misc & !MISC_UITTSZ_MASK) | size as u64;
    }

    /// Whether `IA32_UINTR_TT` bit 0 enables `senduipi`.
    #[must_use]
    pub const fn senduipi_enabled(&self) -> bool {
        self.tt & TT_ENABLE != 0
    }

    /// The UITT base address from `IA32_UINTR_TT` (enable bit stripped).
    #[must_use]
    pub const fn uitt_addr(&self) -> u64 {
        self.tt & TT_DEFINED & !TT_ENABLE
    }

    /// Serializes the file as its 48-byte little-endian image, MSRs in
    /// address order 0x985..=0x98A — the form the byte differ compares.
    #[must_use]
    pub fn pack(&self) -> [u8; 48] {
        let mut bytes = [0u8; 48];
        for (i, msr) in ALL_MSRS.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&self.read(*msr).to_le_bytes());
        }
        bytes
    }

    /// Deserializes from the 48-byte image, masking reserved bits.
    #[must_use]
    pub fn unpack(bytes: &[u8; 48]) -> Self {
        let mut file = Self::new();
        for (i, msr) in ALL_MSRS.iter().enumerate() {
            let word = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            file.write(*msr, word);
        }
        file
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_match_the_sdm_map() {
        assert_eq!(UintrMsr::Rr.address(), 0x985);
        assert_eq!(UintrMsr::Handler.address(), 0x986);
        assert_eq!(UintrMsr::StackAdjust.address(), 0x987);
        assert_eq!(UintrMsr::Misc.address(), 0x988);
        assert_eq!(UintrMsr::Pd.address(), 0x989);
        assert_eq!(UintrMsr::Tt.address(), 0x98a);
        for msr in ALL_MSRS {
            assert_eq!(UintrMsr::from_address(msr.address()), Some(msr));
        }
        assert_eq!(UintrMsr::from_address(0x984), None);
    }

    #[test]
    fn writes_mask_reserved_bits() {
        let mut f = MsrFile::new();
        assert_eq!(f.write(UintrMsr::Misc, u64::MAX), MISC_DEFINED);
        assert_eq!(f.write(UintrMsr::Pd, 0x1234_567f), 0x1234_5640);
        assert_eq!(f.write(UintrMsr::Tt, 0xffff), 0xfff1);
        assert_eq!(f.write(UintrMsr::Handler, u64::MAX), u64::MAX);
    }

    #[test]
    fn misc_helpers_pack_uinv_and_uittsz() {
        let mut f = MsrFile::new();
        f.set_uinv(0xec);
        f.set_uittsz(256);
        assert_eq!(f.uinv(), 0xec);
        assert_eq!(f.uittsz(), 256);
        assert_eq!(f.read(UintrMsr::Misc), (0xec << 32) | 256);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Write-then-read returns the masked value, and pack∘unpack is
        /// the identity on files built through the typed interface.
        #[test]
        fn masked_write_read_round_trip(values in any::<[u64; 6]>()) {
            let mut f = MsrFile::new();
            for (msr, v) in ALL_MSRS.iter().zip(values.iter()) {
                let stored = f.write(*msr, *v);
                prop_assert_eq!(stored, v & msr.defined_mask());
                prop_assert_eq!(f.read(*msr), stored);
            }
            prop_assert_eq!(MsrFile::unpack(&f.pack()), f);
        }

        /// Any 48-byte pattern survives unpack→pack for defined bits.
        #[test]
        fn image_round_trip_masks_deterministically(bytes in any::<[u8; 48]>()) {
            let f = MsrFile::unpack(&bytes);
            let repacked = f.pack();
            for (i, msr) in ALL_MSRS.iter().enumerate() {
                let word = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
                let expect = word & msr.defined_mask();
                let got = u64::from_le_bytes(repacked[i * 8..(i + 1) * 8].try_into().unwrap());
                prop_assert_eq!(got, expect);
            }
            prop_assert_eq!(MsrFile::unpack(&repacked), f);
        }
    }
}
