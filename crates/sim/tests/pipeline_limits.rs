//! Structural-limit tests for the out-of-order pipeline: each Table 3
//! resource (functional units, ports, queues) must actually constrain
//! execution the way the configuration says.

use xui_sim::config::SystemConfig;
use xui_sim::isa::{AluKind, Inst, Op, Operand, Program, Reg};
use xui_sim::System;

/// Builds a loop of `iters` iterations whose body is `body` repeated —
/// all instructions independent across iterations.
fn loop_of(body: Vec<Op>, iters: u64) -> Program {
    let mut code = vec![Inst::new(Op::Li { dst: Reg(1), imm: iters })];
    let top = code.len();
    code.extend(body.into_iter().map(Inst::new));
    code.push(Inst::new(Op::Alu {
        kind: AluKind::Sub,
        dst: Reg(1),
        src: Reg(1),
        op2: Operand::Imm(1),
    }));
    code.push(Inst::new(Op::Bnez { src: Reg(1), target: top }));
    code.push(Inst::new(Op::Halt));
    Program::new("limit", code)
}

fn run_cycles(p: Program) -> u64 {
    let mut sys = System::new(SystemConfig::uipi(), vec![p]);
    sys.run_until_core_halted(0, 500_000_000).expect("halts")
}

#[test]
fn multiplier_count_limits_mul_throughput() {
    // 8 independent multiplies per iteration; 2 mult units with a
    // 3-cycle latency (unpipelined per-issue modeling: ≥2 issues/cycle).
    let muls: Vec<Op> = (2u8..10)
        .map(|r| Op::Mul {
            dst: Reg(r),
            src: Reg(r),
            op2: Operand::Imm(3),
        })
        .collect();
    let iters = 20_000;
    let mul_cycles = run_cycles(loop_of(muls, iters));
    // The same count of independent single-cycle ALU ops uses 6 units.
    let adds: Vec<Op> = (2u8..10)
        .map(|r| Op::Alu {
            kind: AluKind::Add,
            dst: Reg(r),
            src: Reg(r),
            op2: Operand::Imm(3),
        })
        .collect();
    let add_cycles = run_cycles(loop_of(adds, iters));
    assert!(
        mul_cycles as f64 > add_cycles as f64 * 1.8,
        "2 mult units must throttle: mul {mul_cycles} vs add {add_cycles}"
    );
}

#[test]
fn load_ports_limit_parallel_loads() {
    // 6 independent cache-hot loads per iteration vs 6 ALU ops: with 3
    // load ports the load loop needs ≥2 cycles per iteration of load
    // issue, the ALU loop only 1.
    let loads: Vec<Op> = (2u8..8)
        .map(|r| Op::Load {
            dst: Reg(r),
            base: Reg(20), // r20 = 0 → all hit one hot line
            offset: 0x8000,
        })
        .collect();
    let loads_cycles = run_cycles(loop_of(loads, 20_000));
    let adds: Vec<Op> = (2u8..8)
        .map(|r| Op::Alu {
            kind: AluKind::Add,
            dst: Reg(r),
            src: Reg(r),
            op2: Operand::Imm(1),
        })
        .collect();
    let adds_cycles = run_cycles(loop_of(adds, 20_000));
    assert!(
        loads_cycles > adds_cycles,
        "3 load ports throttle 6 loads/iter: {loads_cycles} vs {adds_cycles}"
    );
}

#[test]
fn fetch_width_bounds_ipc() {
    // However parallel the work, committed IPC can never beat the 6-wide
    // front end.
    let adds: Vec<Op> = (2u8..12)
        .map(|r| Op::Alu {
            kind: AluKind::Add,
            dst: Reg(r),
            src: Reg(r),
            op2: Operand::Imm(1),
        })
        .collect();
    let p = loop_of(adds, 30_000);
    let mut sys = System::new(SystemConfig::uipi(), vec![p]);
    let cycles = sys.run_until_core_halted(0, 500_000_000).expect("halts");
    let ipc = sys.cores[0].stats.committed_insts as f64 / cycles as f64;
    assert!(ipc <= 6.0 + 1e-9, "IPC {ipc} exceeds fetch width");
    assert!(ipc > 3.0, "independent work should still run wide: {ipc}");
}

#[test]
fn serial_chain_bounds_ipc_near_one_per_dependence() {
    // One long dependence chain: IPC limited by the chain regardless of
    // the 10-wide issue.
    let chain: Vec<Op> = (0..8)
        .map(|_| Op::Alu {
            kind: AluKind::Add,
            dst: Reg(2),
            src: Reg(2),
            op2: Operand::Imm(1),
        })
        .collect();
    let p = loop_of(chain, 20_000);
    let mut sys = System::new(SystemConfig::uipi(), vec![p]);
    let cycles = sys.run_until_core_halted(0, 500_000_000).expect("halts");
    // 8 chained adds + loop overhead ≈ 8 cycles/iteration minimum.
    let per_iter = cycles as f64 / 20_000.0;
    assert!(per_iter >= 7.5, "chain must serialize: {per_iter} cy/iter");
}

#[test]
fn rob_capacity_limits_memory_level_parallelism() {
    // Independent DRAM misses: a bigger ROB exposes more of them at once.
    // (This is the mechanism behind the ablation_window result.)
    let strided_loads: Vec<Op> = (2u8..6)
        .map(|r| Op::Load {
            dst: Reg(r + 10), // do not clobber the base register
            base: Reg(r),
            offset: 0,
        })
        .collect();
    // Point each base register at a distinct, never-cached region and
    // advance it every iteration so every load misses.
    let mut code = vec![Inst::new(Op::Li { dst: Reg(1), imm: 3_000 })];
    for (i, r) in (2u8..6).enumerate() {
        code.push(Inst::new(Op::Li {
            dst: Reg(r),
            imm: 0x4000_0000 + (i as u64) * 0x100_0000,
        }));
    }
    let top = code.len();
    code.extend(strided_loads.into_iter().map(Inst::new));
    for r in 2u8..6 {
        code.push(Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(r),
            src: Reg(r),
            op2: Operand::Imm(4096),
        }));
    }
    code.push(Inst::new(Op::Alu {
        kind: AluKind::Sub,
        dst: Reg(1),
        src: Reg(1),
        op2: Operand::Imm(1),
    }));
    code.push(Inst::new(Op::Bnez { src: Reg(1), target: top }));
    code.push(Inst::new(Op::Halt));
    let program = Program::new("mlp", code);

    let run_with_rob = |scale: f64| {
        let mut cfg = SystemConfig::uipi();
        cfg.core.rob_size = (384.0 * scale) as usize;
        cfg.core.lq_size = (128.0 * scale) as usize;
        cfg.core.iq_size = (168.0 * scale) as usize;
        let mut sys = System::new(cfg, vec![program.clone()]);
        sys.run_until_core_halted(0, 2_000_000_000).expect("halts")
    };
    let small = run_with_rob(0.25);
    let big = run_with_rob(1.0);
    assert!(
        big < small,
        "a 4× window must expose more MLP: small {small} vs big {big}"
    );
}
