//! Differential fuzzing: random programs executed on the out-of-order
//! pipeline must end in exactly the architectural state the functional
//! interpreter computes — under every delivery strategy, with and without
//! interrupts hammering the pipeline.

use proptest::prelude::*;

use xui_sim::config::{DeliveryStrategy, SystemConfig};
use xui_sim::interp::{interpret, InterpState, Stop};
use xui_sim::isa::{AluKind, Inst, Op, Operand, Pc, Program, Reg};
use xui_sim::system::Device;
use xui_sim::System;

/// Registers the generator is allowed to touch (r1–r7; r20+ reserved for
/// handlers, r28+ for SP/microcode).
fn reg_strategy() -> impl Strategy<Value = Reg> {
    (1u8..8).prop_map(Reg)
}

fn alu_kind() -> impl Strategy<Value = AluKind> {
    prop_oneof![
        Just(AluKind::Add),
        Just(AluKind::Sub),
        Just(AluKind::And),
        Just(AluKind::Or),
        Just(AluKind::Xor),
        Just(AluKind::Shl),
        Just(AluKind::Shr),
    ]
}

/// Straight-line body instructions (no control flow).
fn body_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (alu_kind(), reg_strategy(), reg_strategy(), -64i64..64)
            .prop_map(|(kind, dst, src, imm)| Op::Alu { kind, dst, src, op2: Operand::Imm(imm) }),
        (alu_kind(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(kind, dst, src, r)| Op::Alu { kind, dst, src, op2: Operand::Reg(r) }),
        (reg_strategy(), 0u64..1024).prop_map(|(dst, imm)| Op::Li { dst, imm }),
        (reg_strategy(), reg_strategy(), 0i64..32)
            .prop_map(|(dst, src, imm)| Op::Mul { dst, src, op2: Operand::Imm(imm) }),
        (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(dst, src, r)| Op::Fp { dst, src, op2: Operand::Reg(r) }),
        // Loads/stores over a small private arena at 0x9000 so addresses
        // stay in range regardless of register contents.
        (reg_strategy(), reg_strategy()).prop_map(|(dst, base)| Op::Load {
            dst,
            base,
            offset: 0x9000,
        }),
        (reg_strategy(), reg_strategy()).prop_map(|(src, base)| Op::Store {
            src,
            base,
            offset: 0x9000,
        }),
    ]
}

/// Builds a program: a counted outer loop whose body is the random
/// instruction list (with register values masked small so load/store
/// addresses stay in the arena), then halt.
fn build_program(body: Vec<Op>, iters: u64) -> Program {
    let mut code = vec![Inst::new(Op::Li { dst: Reg(9), imm: iters })];
    let top: Pc = code.len();
    for op in body {
        // Mask address bases into the arena before memory ops.
        if let Op::Load { base, .. } | Op::Store { base, .. } = op {
            code.push(Inst::new(Op::Alu {
                kind: AluKind::And,
                dst: base,
                src: base,
                op2: Operand::Imm(0x1F8),
            }));
        }
        code.push(Inst::new(op));
    }
    code.push(Inst::new(Op::Alu {
        kind: AluKind::Sub,
        dst: Reg(9),
        src: Reg(9),
        op2: Operand::Imm(1),
    }));
    code.push(Inst::new(Op::Bnez { src: Reg(9), target: top }));
    code.push(Inst::new(Op::Halt));
    // Handler (never reached unless interrupts are enabled).
    code.push(Inst::new(Op::Alu {
        kind: AluKind::Add,
        dst: Reg(20),
        src: Reg(20),
        op2: Operand::Imm(1),
    }));
    code.push(Inst::new(Op::Uiret));
    Program::new("fuzz", code)
}

fn pipeline_state(
    program: &Program,
    strategy: DeliveryStrategy,
    irq_period: Option<u64>,
) -> (Vec<u64>, u64) {
    let mut cfg = SystemConfig::uipi();
    cfg.strategy.0 = strategy;
    let mut sys = System::new(cfg, vec![program.clone()]);
    let handler = program.len() - 2;
    sys.cores[0].set_handler(handler);
    if let Some(period) = irq_period {
        sys.add_device(Device::DirectIrq {
            period,
            next_fire: period / 2,
            core: 0,
            user_vector: 1,
        });
    }
    sys.run_until_core_halted(0, 200_000_000)
        .expect("pipeline run halts");
    let regs: Vec<u64> = (1..10).map(|r| sys.cores[0].reg(Reg(r))).collect();
    (regs, sys.cores[0].reg(Reg(20)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without interrupts, the pipeline's final register state equals the
    /// interpreter's, for all three delivery strategies (they only differ
    /// when interrupts arrive).
    #[test]
    fn pipeline_matches_interpreter(
        body in proptest::collection::vec(body_op(), 1..14),
        iters in 1u64..40,
    ) {
        let program = build_program(body, iters);
        let (golden, stop) = interpret(&program, InterpState::default(), 1_000_000);
        prop_assert_eq!(stop, Stop::Halted);
        for strategy in [DeliveryStrategy::Flush, DeliveryStrategy::Drain, DeliveryStrategy::Tracked] {
            let (regs, handled) = pipeline_state(&program, strategy, None);
            for (i, &v) in regs.iter().enumerate() {
                prop_assert_eq!(
                    v,
                    golden.reg(Reg((i + 1) as u8)),
                    "r{} mismatch under {:?}", i + 1, strategy
                );
            }
            prop_assert_eq!(handled, 0);
        }
    }

    /// With interrupts hammering the pipeline, program-visible state is
    /// still exactly the interpreter's (the handler only touches r20),
    /// and the handler ran once per delivered interrupt.
    ///
    /// The period stays above the worst-case delivery + handler cost:
    /// below it, a flush-delivered interrupt storm livelocks the program
    /// (zero commits between back-to-back deliveries) — architecturally
    /// honest, but then there is no final state to compare.
    #[test]
    fn interrupts_never_corrupt_architectural_state(
        body in proptest::collection::vec(body_op(), 1..10),
        iters in 20u64..60,
        period in 1_500u64..4_000,
    ) {
        let program = build_program(body, iters);
        let (golden, stop) = interpret(&program, InterpState::default(), 1_000_000);
        prop_assert_eq!(stop, Stop::Halted);
        for strategy in [DeliveryStrategy::Flush, DeliveryStrategy::Drain, DeliveryStrategy::Tracked] {
            let (regs, _handled) = pipeline_state(&program, strategy, Some(period));
            for (i, &v) in regs.iter().enumerate() {
                prop_assert_eq!(
                    v,
                    golden.reg(Reg((i + 1) as u8)),
                    "r{} corrupted by {:?} interrupts", i + 1, strategy
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Safepoint mode under interrupt pressure: architectural state still
    /// matches the interpreter, and every delivery waited for a marked
    /// instruction (counted exactly by the handler).
    #[test]
    fn safepoint_mode_never_corrupts_state(
        body in proptest::collection::vec(body_op(), 1..10),
        iters in 20u64..60,
        period in 400u64..2_500,
        mark_stride in 1usize..4,
    ) {
        // Mark every `mark_stride`-th body instruction as a safepoint.
        let program = {
            let mut p = build_program(body, iters);
            for (i, inst) in p.code.iter_mut().enumerate() {
                if i % mark_stride == 1 && !inst.is_control() {
                    inst.safepoint = true;
                }
            }
            p
        };
        let (golden, stop) = interpret(&program, InterpState::default(), 1_000_000);
        prop_assert_eq!(stop, Stop::Halted);

        let mut cfg = SystemConfig::uipi();
        cfg.strategy.0 = DeliveryStrategy::Tracked;
        let mut sys = System::new(cfg, vec![program.clone()]);
        sys.cores[0].safepoint_mode = true;
        let handler = program.len() - 2;
        sys.cores[0].set_handler(handler);
        sys.add_device(Device::DirectIrq {
            period,
            next_fire: period / 2,
            core: 0,
            user_vector: 1,
        });
        sys.run_until_core_halted(0, 40_000_000).expect("halts");
        for r in 1..10u8 {
            prop_assert_eq!(
                sys.cores[0].reg(Reg(r)),
                golden.reg(Reg(r)),
                "r{} corrupted under safepoint mode", r
            );
        }
        prop_assert_eq!(
            sys.cores[0].reg(Reg(20)),
            sys.cores[0].stats.interrupts_delivered,
            "handler count matches deliveries"
        );
    }
}
