//! End-to-end interrupt delivery through the cycle-level pipeline:
//! UIPI send→receive, tracked interrupts, KB_Timer, forwarded device
//! interrupts, and hardware safepoints.

use xui_sim::config::{DeliveryStrategy, SystemConfig};
use xui_sim::isa::{AluKind, Inst, Op, Operand, Reg, SetTimerMode};
use xui_sim::system::Device;
use xui_sim::{Program, System};

/// Receiver: a counting loop with a handler at PC 4 that bumps r20.
///
/// ```text
/// 0: li   r1, iters
/// 1: sub  r1, r1, 1
/// 2: bnez r1 -> 1
/// 3: halt
/// 4: add  r20, r20, 1   ; handler
/// 5: uiret
/// ```
fn receiver_program(iters: u64) -> Program {
    Program::new(
        "receiver",
        vec![
            Inst::new(Op::Li { dst: Reg(1), imm: iters }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(1),
                src: Reg(1),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
            Inst::new(Op::Halt),
            Inst::new(Op::Alu {
                kind: AluKind::Add,
                dst: Reg(20),
                src: Reg(20),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Uiret),
        ],
    )
}

const HANDLER_PC: usize = 4;

/// Sender: sends `count` UIPIs with a spacing loop between them.
///
/// ```text
/// 0: li   r1, count
/// 1: li   r2, spacing
/// 2: sub  r2, r2, 1
/// 3: bnez r2 -> 2
/// 4: senduipi 0
/// 5: sub  r1, r1, 1
/// 6: bnez r1 -> 1
/// 7: halt
/// ```
fn sender_program(count: u64, spacing: u64) -> Program {
    Program::new(
        "sender",
        vec![
            Inst::new(Op::Li { dst: Reg(1), imm: count }),
            Inst::new(Op::Li { dst: Reg(2), imm: spacing }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(2),
                src: Reg(2),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(2), target: 2 }),
            Inst::new(Op::SendUipi { index: 0 }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(1),
                src: Reg(1),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
            Inst::new(Op::Halt),
        ],
    )
}

fn uipi_pair(cfg: SystemConfig, sends: u64, spacing: u64, recv_iters: u64) -> System {
    let mut sys = System::new(cfg, vec![sender_program(sends, spacing), receiver_program(recv_iters)]);
    sys.register_receiver(1, HANDLER_PC);
    sys.connect_sender(0, 1, 5);
    sys
}

#[test]
fn uipi_send_receive_flush_strategy() {
    let mut sys = uipi_pair(SystemConfig::uipi(), 5, 2000, 400_000);
    sys.run_until_halted(5_000_000);
    let rx = &sys.cores[1];
    assert_eq!(rx.stats.interrupts_delivered, 5, "all five UIPIs delivered");
    assert_eq!(rx.stats.uirets, 5);
    assert_eq!(rx.reg(Reg(20)), 5, "handler ran architecturally");
    assert_eq!(rx.reg(Reg(1)), 0, "interrupted loop still completed");
    assert!(rx.stats.irq_flushes >= 5, "flush strategy flushes per IRQ");
}

#[test]
fn uipi_send_receive_tracked_strategy() {
    let mut sys = uipi_pair(SystemConfig::xui(), 5, 2000, 400_000);
    sys.run_until_halted(5_000_000);
    let rx = &sys.cores[1];
    assert_eq!(rx.stats.interrupts_delivered, 5);
    assert_eq!(rx.reg(Reg(20)), 5);
    assert_eq!(rx.reg(Reg(1)), 0);
    assert_eq!(rx.stats.irq_flushes, 0, "tracking never flushes for IRQs");
}

#[test]
fn uipi_send_receive_drain_strategy() {
    let mut sys = uipi_pair(SystemConfig::drain(), 5, 2000, 400_000);
    sys.run_until_halted(5_000_000);
    let rx = &sys.cores[1];
    assert_eq!(rx.stats.interrupts_delivered, 5);
    assert_eq!(rx.reg(Reg(20)), 5);
    assert_eq!(rx.reg(Reg(1)), 0);
}

#[test]
fn tracked_wastes_less_work_than_flush() {
    let mut flush = uipi_pair(SystemConfig::uipi(), 20, 3000, 600_000);
    flush.run_until_halted(10_000_000);
    let mut tracked = uipi_pair(SystemConfig::xui(), 20, 3000, 600_000);
    tracked.run_until_halted(10_000_000);
    assert_eq!(flush.cores[1].stats.interrupts_delivered, 20);
    assert_eq!(tracked.cores[1].stats.interrupts_delivered, 20);
    assert!(
        tracked.cores[1].stats.squashed_uops < flush.cores[1].stats.squashed_uops,
        "tracking squashes less: {} vs {}",
        tracked.cores[1].stats.squashed_uops,
        flush.cores[1].stats.squashed_uops
    );
}

#[test]
fn kb_timer_fires_periodically_and_delivers() {
    // Receiver arms its own KB_Timer; no sender, no UPID.
    let mut prog = receiver_program(500_000).code;
    prog.insert(
        0,
        Inst::new(Op::SetTimer {
            cycles: 5_000,
            mode: SetTimerMode::Periodic,
        }),
    );
    // Adjust branch targets / handler for the shifted layout.
    let prog = Program::new(
        "kb-receiver",
        vec![
            prog[0], // set_timer
            Inst::new(Op::Li { dst: Reg(1), imm: 300_000 }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(1),
                src: Reg(1),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(1), target: 2 }),
            Inst::new(Op::Halt),
            Inst::new(Op::Alu {
                kind: AluKind::Add,
                dst: Reg(20),
                src: Reg(20),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Uiret),
        ],
    );
    let mut sys = System::new(SystemConfig::xui(), vec![prog]);
    sys.cores[0].enable_kb_timer(3);
    sys.cores[0].set_handler(5);
    let end = sys.run_until_core_halted(0, 5_000_000).expect("halts");
    let delivered = sys.cores[0].stats.interrupts_delivered;
    // Roughly one delivery per 5000 cycles of runtime.
    let expected = end / 5_000;
    assert!(delivered > 0, "timer interrupts were delivered");
    assert!(
        delivered.abs_diff(expected) <= expected / 3 + 2,
        "delivered={delivered} expected≈{expected}"
    );
    assert_eq!(sys.cores[0].reg(Reg(20)), delivered);
}

#[test]
fn forwarded_device_interrupts_reach_the_thread() {
    let mut sys = System::new(SystemConfig::xui(), vec![receiver_program(300_000)]);
    sys.cores[0].set_handler(HANDLER_PC);
    sys.add_device(Device::DirectIrq {
        period: 10_000,
        next_fire: 10_000,
        core: 0,
        user_vector: 9,
    });
    sys.run_until_core_halted(0, 5_000_000).expect("halts");
    assert!(sys.cores[0].stats.interrupts_delivered > 5);
    assert_eq!(
        sys.cores[0].reg(Reg(20)),
        sys.cores[0].stats.interrupts_delivered
    );
}

#[test]
fn safepoint_mode_delivers_only_at_safepoints() {
    // Loop body: the *loop-back branch's successor* (pc 1) is the only
    // safepoint. The handler records r21 = r20 at entry; since delivery
    // happens only at the safepoint, the interrupted next-PC is always
    // pc 1 — we verify via exact delivery counting.
    let code = vec![
        Inst::new(Op::Li { dst: Reg(1), imm: 300_000 }),
        Inst::safepoint(Op::Alu {
            kind: AluKind::Sub,
            dst: Reg(1),
            src: Reg(1),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(2),
            src: Reg(2),
            op2: Operand::Imm(3),
        }),
        Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
        Inst::new(Op::Halt),
        // handler:
        Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(20),
            src: Reg(20),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Uiret),
    ];
    let mut sys = System::new(SystemConfig::xui(), vec![Program::new("sp", code)]);
    sys.cores[0].safepoint_mode = true;
    sys.cores[0].set_handler(5);
    sys.add_device(Device::DirectIrq {
        period: 20_000,
        next_fire: 5_000,
        core: 0,
        user_vector: 2,
    });
    sys.run_until_core_halted(0, 10_000_000).expect("halts");
    let delivered = sys.cores[0].stats.interrupts_delivered;
    assert!(delivered > 3, "delivered={delivered}");
    assert_eq!(sys.cores[0].reg(Reg(20)), delivered);
    // The loop still computed the right result.
    assert_eq!(sys.cores[0].reg(Reg(2)), 3 * 300_000);
}

#[test]
fn interrupts_preserve_program_semantics_under_stress() {
    // High-frequency tracked interrupts into a mispredicting workload:
    // the alternating-branch loop from the system tests.
    let code = vec![
        Inst::new(Op::Li { dst: Reg(1), imm: 20_000 }),
        Inst::new(Op::Li { dst: Reg(2), imm: 0 }),
        Inst::new(Op::Alu {
            kind: AluKind::And,
            dst: Reg(3),
            src: Reg(1),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Beqz { src: Reg(3), target: 5 }),
        Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(2),
            src: Reg(2),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Alu {
            kind: AluKind::Sub,
            dst: Reg(1),
            src: Reg(1),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Bnez { src: Reg(1), target: 2 }),
        Inst::new(Op::Halt),
        // handler:
        Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(20),
            src: Reg(20),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Uiret),
    ];
    for strategy in [
        DeliveryStrategy::Flush,
        DeliveryStrategy::Drain,
        DeliveryStrategy::Tracked,
    ] {
        let mut cfg = SystemConfig::uipi();
        cfg.strategy.0 = strategy;
        let mut sys = System::new(cfg, vec![Program::new("stress", code.clone())]);
        sys.cores[0].set_handler(8);
        sys.add_device(Device::DirectIrq {
            period: 700,
            next_fire: 400,
            core: 0,
            user_vector: 1,
        });
        sys.run_until_core_halted(0, 20_000_000).expect("halts");
        assert_eq!(
            sys.cores[0].reg(Reg(2)),
            10_000,
            "architectural result corrupted under {strategy:?}"
        );
        assert!(sys.cores[0].stats.interrupts_delivered > 10);
        assert_eq!(
            sys.cores[0].reg(Reg(20)),
            sys.cores[0].stats.interrupts_delivered,
            "handler count mismatch under {strategy:?}"
        );
    }
}

#[test]
fn tracked_reinjection_happens_under_mispredict_pressure() {
    // Frequent interrupts + frequent mispredicts: re-injections occur and
    // nothing is lost.
    let code = vec![
        Inst::new(Op::Li { dst: Reg(1), imm: 50_000 }),
        Inst::new(Op::Alu {
            kind: AluKind::And,
            dst: Reg(3),
            src: Reg(1),
            op2: Operand::Imm(3),
        }),
        Inst::new(Op::Beqz { src: Reg(3), target: 4 }),
        Inst::new(Op::Nop),
        Inst::new(Op::Alu {
            kind: AluKind::Sub,
            dst: Reg(1),
            src: Reg(1),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
        Inst::new(Op::Halt),
        // handler:
        Inst::new(Op::Alu {
            kind: AluKind::Add,
            dst: Reg(20),
            src: Reg(20),
            op2: Operand::Imm(1),
        }),
        Inst::new(Op::Uiret),
    ];
    let mut sys = System::new(SystemConfig::xui(), vec![Program::new("reinject", code)]);
    sys.cores[0].set_handler(7);
    sys.add_device(Device::DirectIrq {
        period: 300,
        next_fire: 100,
        core: 0,
        user_vector: 1,
    });
    sys.run_until_core_halted(0, 50_000_000).expect("halts");
    let st = sys.cores[0].stats;
    assert!(st.mispredict_recoveries > 100, "workload mispredicts");
    assert!(st.interrupts_delivered > 100);
    assert_eq!(sys.cores[0].reg(Reg(20)), st.interrupts_delivered);
}

#[test]
fn stock_gem5_drain_quirk_adds_fixed_penalty() {
    // §5.2: stock gem5 drains and "a fixed 13 cycles was artificially
    // added after each drain". The corrected drain model omits it.
    let run = |cfg: SystemConfig| {
        let mut sys = uipi_pair(cfg, 20, 3_000, 400_000);
        sys.run_until_halted(10_000_000);
        let rx = &sys.cores[1];
        assert_eq!(rx.stats.interrupts_delivered, 20);
        rx.stats.halted_at.expect("receiver halts")
    };
    let corrected = run(SystemConfig::drain());
    let stock = run(SystemConfig::gem5_stock());
    let extra_per_irq = (stock as f64 - corrected as f64) / 20.0;
    assert!(
        (0.0..=26.0).contains(&extra_per_irq),
        "stock gem5 adds a small fixed cost per drain: {extra_per_irq:.1}"
    );
    assert!(stock >= corrected, "the quirk never helps");
}

#[test]
fn two_senders_one_receiver_distinct_vectors() {
    // Two sender cores target the same receiver with different vectors;
    // every send is eventually delivered and handled.
    let receiver = Program::new(
        "rx",
        vec![
            Inst::new(Op::Li { dst: Reg(1), imm: 600_000 }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(1),
                src: Reg(1),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
            Inst::new(Op::Halt),
            // handler: count per-vector via the frame's vector slot
            Inst::new(Op::Load { dst: Reg(22), base: Reg::SP, offset: -24 }),
            Inst::new(Op::Alu {
                kind: AluKind::Add,
                dst: Reg(20),
                src: Reg(20),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Alu {
                kind: AluKind::Add,
                dst: Reg(21),
                src: Reg(21),
                op2: Operand::Reg(Reg(22)),
            }),
            Inst::new(Op::Uiret),
        ],
    );
    let mut sys = System::new(
        SystemConfig::xui(),
        vec![
            sender_program(4, 5_000),
            sender_program(4, 7_000),
            receiver,
        ],
    );
    sys.register_receiver(2, 4);
    sys.connect_sender(0, 2, 5); // vector 5
    sys.connect_sender(1, 2, 9); // vector 9
    sys.run_until_halted(20_000_000);
    let rx = &sys.cores[2];
    assert_eq!(rx.reg(Reg(20)), rx.stats.interrupts_delivered);
    // Vectors coalesce per sender but both senders' vectors must appear:
    // the vector-sum register mixes 5s and 9s.
    let sum = rx.reg(Reg(21));
    assert!(sum >= 5 + 9, "both vectors delivered at least once: {sum}");
    assert!(rx.stats.interrupts_delivered >= 2);
    assert!(rx.stats.interrupts_delivered <= 8);
    assert_eq!(rx.reg(Reg(1)), 0, "receiver loop completed");
}
