//! The cycle-level out-of-order core model.
//!
//! One [`Core`] implements a decoupled front-end (fetch + branch
//! prediction + MSROM sequencing), an out-of-order backend (ROB, issue
//! queue, functional units, load/store queues), and the three interrupt
//! delivery strategies of §3.5/§4.2: **flush**, **drain**, and xUI
//! **tracking**, plus hardware safepoint gating (§4.4).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::branch::BranchPredictor;
use crate::config::{CoreConfig, DeliveryStrategy};
use crate::isa::{AluKind, Inst, Op, Operand, Pc, Program, Reg, SetTimerMode, MSROM_BASE, REG_COUNT};
use crate::mem::MemorySystem;
use crate::microcode::{MicroOp, Msrom, Routine};
use crate::trace::{TraceEvent, TraceKind};

/// Functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fu {
    /// Integer ALU.
    Int,
    /// Integer multiplier.
    Mult,
    /// Floating point.
    Fp,
    /// Load port.
    Load,
    /// Store port.
    Store,
}

/// Internal µop kinds (post-decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Kind {
    Int,
    Alu { kind: AluKind, imm: Option<i64> },
    Li { imm: u64 },
    Load { offset: i64 },
    Store { offset: i64, data_imm: Option<u64> },
    Branch { on_zero: bool, target: Pc, fall: Pc, predicted: bool },
    Testui,
    CluiU,
    StuiU,
    SetTimerU { cycles: u64, periodic: bool },
    ClearTimerU,
    SendUipiMarker,
    UittLoadU { index: usize },
    UpidPostU { index: usize },
    IcrWriteU,
    UpidDrainU,
    DeliverTakeU,
    DeliverCluiU,
    JumpHandlerU { return_pc: Pc },
    UiretU,
    HaltU,
}

/// A decoded µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uop {
    kind: Kind,
    srcs: [Option<Reg>; 2],
    dst: Option<Reg>,
    fu: Fu,
    latency: u64,
    /// Serializing MSR write: modeled through the micro chain plus its
    /// long latency (the whole pipeline is paused while microcode runs).
    serializing: bool,
    from_interrupt: bool,
    is_program: bool,
    /// True for MSROM-sourced µops: microcode is sequenced serially, so
    /// each such µop implicitly depends on the previous one.
    micro: bool,
    pc: Pc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Ready,
    Executing { done_at: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    uop: Uop,
    deps: [Option<u64>; 3],
    src_vals: [u64; 2],
    deps_remaining: u8,
    state: EntryState,
    result: u64,
    dependents: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    uop: Uop,
    ready_at: u64,
}

/// Which reception routine an accepted interrupt needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IrqKind {
    /// UIPI notification: notification processing + delivery.
    Notif,
    /// KB_Timer / forwarded device: delivery only.
    DeliverOnly,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IrqState {
    Idle,
    FlushSquashing { kind: IrqKind },
    Draining { kind: IrqKind },
    WaitSafepoint { kind: IrqKind },
    Injected { committed: bool },
}

#[derive(Debug, Clone, Copy)]
struct Recovery {
    branch_seq: u64,
    redirect_pc: Pc,
}

/// A UITT entry as configured into a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimUittEntry {
    /// Destination thread's UPID address in simulated memory.
    pub upid_addr: u64,
    /// The 6-bit user vector to post.
    pub user_vector: u8,
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Committed program instructions (µops from MSROM excluded).
    pub committed_insts: u64,
    /// Committed µops (program + microcode).
    pub committed_uops: u64,
    /// µops squashed by mispredictions or interrupt flushes.
    pub squashed_uops: u64,
    /// User interrupts delivered (JumpHandler commits).
    pub interrupts_delivered: u64,
    /// `uiret` commits.
    pub uirets: u64,
    /// Branch mispredictions recovered.
    pub mispredict_recoveries: u64,
    /// Interrupt-flush events (flush strategy only).
    pub irq_flushes: u64,
    /// Tracked-interrupt re-injections after misprediction flushes.
    pub irq_reinjections: u64,
    /// Cycle the core halted, if it has.
    pub halted_at: Option<u64>,
}

/// Per-delivered-interrupt timing record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrqTiming {
    /// Cycle the interrupt was accepted by the core.
    pub accepted_at: u64,
    /// Cycle the microcode was injected into the µop stream.
    pub injected_at: u64,
    /// Cycle the handler was entered (JumpHandler commit).
    pub handler_at: u64,
    /// Cycle the matching `uiret` committed (0 until it does).
    pub uiret_at: u64,
}

/// UPID field layout within the two 64-bit words at `upid_addr`,
/// re-derived from the single bit-accurate source in [`xui_uipi_abi`]:
/// low word bit 0 = ON, bit 1 = SN, bits 32.. = NDST; high word = PIR.
pub mod upid_words {
    use core::mem::offset_of;

    /// ON bit in the low word.
    pub const ON: u64 = xui_uipi_abi::nc::ON as u64;
    /// SN bit in the low word.
    pub const SN: u64 = xui_uipi_abi::nc::SN as u64;
    /// Shift of the NDST field in the low word (byte offset of the
    /// packed `ndst` field, in bits).
    pub const NDST_SHIFT: u32 = 8 * offset_of!(xui_uipi_abi::UintrNc, ndst) as u32;

    // The simulator's word bridge and the packed ABI form must agree.
    const _: () = assert!(ON == 1 && SN == 2 && NDST_SHIFT == 32);
}

/// One simulated out-of-order core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Core index (== its APIC id in the simulated system).
    pub id: usize,
    cfg: CoreConfig,
    strategy: DeliveryStrategy,
    program: Program,
    msrom: Msrom,

    // ---- front end ----
    fetch_pc: Pc,
    fetch_enabled: bool,
    fetch_stall_until: u64,
    fetch_buffer: VecDeque<Fetched>,
    predictor: BranchPredictor,
    msrom_return: Pc,
    msrom_arg: usize,
    irq: IrqState,
    irq_kind_pending: Option<IrqKind>,
    irq_return_pc: Pc,
    frame_stack_spec: Vec<Pc>,
    /// Safepoint-only delivery mode (§4.4).
    pub safepoint_mode: bool,

    // ---- backend ----
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    rename: [Option<u64>; REG_COUNT],
    regs: [u64; REG_COUNT],
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    recovery: Option<Recovery>,
    next_commit_pc: Pc,
    halted: bool,
    last_micro_seq: Option<u64>,
    /// True while the micro-sequencer owns the front-end: set when a
    /// routine's final µop is fetched, cleared when the routine's serial
    /// chain finishes executing. Normal fetch is blocked meanwhile —
    /// this is what makes microcode sequencing cost front-end bandwidth.
    msrom_wait: bool,

    // ---- architectural user-interrupt state ----
    uif: bool,
    uirr: u64,
    last_taken_vector: u64,
    /// This thread's UPID address in simulated memory.
    pub upid_addr: u64,
    /// Registered user handler entry PC.
    pub handler_pc: Pc,
    uitt: Vec<SimUittEntry>,
    frames: Vec<Pc>,
    pending_notif: bool,
    ipi_flag: Option<usize>, // dest core decided by UpidPost
    pending_ipi: Option<usize>, // dest core of an ICR write this cycle

    // ---- KB timer ----
    kbt_enabled: bool,
    kbt_vector: u8,
    kbt_deadline: Option<u64>,
    kbt_period: Option<u64>,

    // ---- measurement ----
    /// Execution statistics.
    pub stats: CoreStats,
    /// Per-interrupt timing records.
    pub irq_timings: Vec<IrqTiming>,
    current_irq: IrqTiming,
    /// Trace events (cycle, kind), recorded when `trace_enabled`.
    pub trace: Vec<TraceEvent>,
    /// Enables per-event tracing (Fig 2 timeline).
    pub trace_enabled: bool,
}

impl Core {
    /// Creates a core running `program` with the given strategy.
    #[must_use]
    pub fn new(
        id: usize,
        cfg: CoreConfig,
        strategy: DeliveryStrategy,
        program: Program,
    ) -> Self {
        let mut regs = [0u64; REG_COUNT];
        regs[Reg::SP.index()] = 0x0100_0000 + (id as u64) * 0x1_0000;
        Self {
            id,
            cfg,
            strategy,
            program,
            msrom: Msrom::new(),
            fetch_pc: 0,
            fetch_enabled: true,
            fetch_stall_until: 0,
            fetch_buffer: VecDeque::new(),
            predictor: BranchPredictor::new(),
            msrom_return: 0,
            msrom_arg: 0,
            irq: IrqState::Idle,
            irq_kind_pending: None,
            irq_return_pc: 0,
            frame_stack_spec: Vec::new(),
            safepoint_mode: false,
            rob: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            rename: [None; REG_COUNT],
            regs,
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            recovery: None,
            next_commit_pc: 0,
            halted: false,
            last_micro_seq: None,
            msrom_wait: false,
            uif: true,
            uirr: 0,
            last_taken_vector: 0,
            upid_addr: 0x2000_0000 + (id as u64) * 64,
            handler_pc: 0,
            uitt: Vec::new(),
            frames: Vec::new(),
            pending_notif: false,
            ipi_flag: None,
            pending_ipi: None,
            kbt_enabled: false,
            kbt_vector: 0,
            kbt_deadline: None,
            kbt_period: None,
            stats: CoreStats::default(),
            irq_timings: Vec::new(),
            current_irq: IrqTiming::default(),
            trace: Vec::new(),
            trace_enabled: false,
        }
    }

    /// Registers the user-interrupt handler entry point.
    pub fn set_handler(&mut self, pc: Pc) {
        self.handler_pc = pc;
    }

    /// Adds a UITT entry, returning its index for `senduipi`.
    pub fn add_uitt_entry(&mut self, entry: SimUittEntry) -> usize {
        self.uitt.push(entry);
        self.uitt.len() - 1
    }

    /// Sets an architectural register (workload setup).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.index()] = value;
    }

    /// Reads an architectural register (post-run inspection).
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index()]
    }

    /// Enables the KB_Timer with a user vector (kernel-side
    /// `enable_kb_timer()`).
    pub fn enable_kb_timer(&mut self, vector: u8) {
        self.kbt_enabled = true;
        self.kbt_vector = vector & 63;
    }

    /// True once the core has committed `Halt` and drained.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Posts a forwarded device interrupt / timer vector straight into
    /// UIRR (the xUI fast path: no UPID involved, §4.5).
    pub fn post_direct(&mut self, user_vector: u8) {
        self.uirr |= 1u64 << (user_vector & 63);
    }

    /// Signals arrival of a conventional IPI on the UIPI notification
    /// vector (§3.3 step 3).
    pub fn post_notification(&mut self, now: u64) {
        self.pending_notif = true;
        self.trace_event(now, TraceKind::IpiArrive);
    }

    /// Pending user-interrupt request bits (diagnostics).
    #[must_use]
    pub fn uirr(&self) -> u64 {
        self.uirr
    }

    fn trace_event(&mut self, cycle: u64, kind: TraceKind) {
        if self.trace_enabled {
            self.trace.push(TraceEvent {
                cycle,
                core: self.id,
                kind,
            });
        }
    }

    fn entry_index(&self, seq: u64) -> Option<usize> {
        if seq < self.head_seq {
            return None;
        }
        let idx = (seq - self.head_seq) as usize;
        if idx < self.rob.len() {
            Some(idx)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Decode
    // ------------------------------------------------------------------

    fn uop_common(kind: Kind, fu: Fu, latency: u64, pc: Pc) -> Uop {
        Uop {
            kind,
            srcs: [None, None],
            dst: None,
            fu,
            latency,
            serializing: false,
            from_interrupt: false,
            is_program: false,
            micro: false,
            pc,
        }
    }

    /// Decodes one program instruction into a µop and computes the next
    /// fetch PC (with branch prediction). Returns `None` for pure
    /// redirects.
    fn decode_program(&mut self, inst: Inst, pc: Pc) -> Option<Uop> {
        let mut next = pc + 1;
        let uop = match inst.op {
            Op::Nop => Some(Self::uop_common(Kind::Int, Fu::Int, 1, pc)),
            Op::Alu { kind, dst, src, op2 } => {
                let (imm, src2) = match op2 {
                    Operand::Imm(i) => (Some(i), None),
                    Operand::Reg(r) => (None, Some(r)),
                };
                let mut u = Self::uop_common(Kind::Alu { kind, imm }, Fu::Int, 1, pc);
                u.srcs = [Some(src), src2];
                u.dst = Some(dst);
                Some(u)
            }
            Op::Li { dst, imm } => {
                let mut u = Self::uop_common(Kind::Li { imm }, Fu::Int, 1, pc);
                u.dst = Some(dst);
                Some(u)
            }
            Op::Mul { dst, src, op2 } => {
                let (imm, src2) = match op2 {
                    Operand::Imm(i) => (Some(i), None),
                    Operand::Reg(r) => (None, Some(r)),
                };
                let mut u = Self::uop_common(
                    Kind::Alu { kind: AluKind::Add, imm },
                    Fu::Mult,
                    self.cfg.mult_latency,
                    pc,
                );
                u.srcs = [Some(src), src2];
                u.dst = Some(dst);
                Some(u)
            }
            Op::Fp { dst, src, op2 } => {
                let (imm, src2) = match op2 {
                    Operand::Imm(i) => (Some(i), None),
                    Operand::Reg(r) => (None, Some(r)),
                };
                let mut u = Self::uop_common(
                    Kind::Alu { kind: AluKind::Add, imm },
                    Fu::Fp,
                    self.cfg.fp_latency,
                    pc,
                );
                u.srcs = [Some(src), src2];
                u.dst = Some(dst);
                Some(u)
            }
            Op::Load { dst, base, offset } => {
                let mut u = Self::uop_common(Kind::Load { offset }, Fu::Load, 0, pc);
                u.srcs = [Some(base), None];
                u.dst = Some(dst);
                Some(u)
            }
            Op::Store { src, base, offset } => {
                let mut u =
                    Self::uop_common(Kind::Store { offset, data_imm: None }, Fu::Store, 1, pc);
                u.srcs = [Some(base), Some(src)];
                Some(u)
            }
            Op::Beqz { src, target } | Op::Bnez { src, target } => {
                let on_zero = matches!(inst.op, Op::Beqz { .. });
                let predicted = self.predictor.predict(pc);
                next = if predicted { target } else { pc + 1 };
                let mut u = Self::uop_common(
                    Kind::Branch {
                        on_zero,
                        target,
                        fall: pc + 1,
                        predicted,
                    },
                    Fu::Int,
                    1,
                    pc,
                );
                u.srcs = [Some(src), None];
                Some(u)
            }
            Op::Jmp { target } => {
                next = target;
                Some(Self::uop_common(Kind::Int, Fu::Int, 1, pc))
            }
            Op::SendUipi { index } => {
                // Call into the MSROM routine; 57 µops follow.
                self.msrom_return = pc + 1;
                self.msrom_arg = index;
                next = MSROM_BASE + self.msrom.senduipi.start;
                Some(Self::uop_common(Kind::SendUipiMarker, Fu::Int, 1, pc))
            }
            Op::Uiret => {
                next = self.frame_stack_spec.pop().unwrap_or(pc + 1);
                Some(Self::uop_common(Kind::UiretU, Fu::Int, self.cfg.uiret_latency, pc))
            }
            Op::Clui => {
                // clui/stui manipulate the UIF MSR: modeled as
                // pipeline-owning µops so their measured costs (Table 2:
                // 2 and 32 cycles) appear even in high-slack code.
                let mut u = Self::uop_common(Kind::CluiU, Fu::Int, self.cfg.clui_latency, pc);
                u.micro = true;
                Some(u)
            }
            Op::Stui => {
                let mut u = Self::uop_common(Kind::StuiU, Fu::Int, self.cfg.stui_latency, pc);
                u.micro = true;
                Some(u)
            }
            Op::Testui { dst } => {
                let mut u = Self::uop_common(Kind::Testui, Fu::Int, 1, pc);
                u.dst = Some(dst);
                Some(u)
            }
            Op::SetTimer { cycles, mode } => Some(Self::uop_common(
                Kind::SetTimerU {
                    cycles,
                    periodic: matches!(mode, SetTimerMode::Periodic),
                },
                Fu::Int,
                4,
                pc,
            )),
            Op::ClearTimer => Some(Self::uop_common(Kind::ClearTimerU, Fu::Int, 4, pc)),
            Op::Halt => {
                self.fetch_enabled = false;
                Some(Self::uop_common(Kind::HaltU, Fu::Int, 1, pc))
            }
        };
        self.fetch_pc = next;
        uop.map(|mut u| {
            u.is_program = true;
            u
        })
    }

    /// Decodes one MSROM µop; returns `None` for pure sequencer
    /// redirects.
    fn decode_msrom(&mut self, mop: MicroOp, pc: Pc, from_interrupt: bool) -> Option<Uop> {
        let mut next = pc + 1;
        let uop = match mop {
            MicroOp::Seq { latency } => {
                Some(Self::uop_common(Kind::Int, Fu::Int, u64::from(latency), pc))
            }
            MicroOp::MsrAccess { latency } => {
                Some(Self::uop_common(Kind::Int, Fu::Int, u64::from(latency), pc))
            }
            MicroOp::UittLoad => Some(Self::uop_common(
                Kind::UittLoadU { index: self.msrom_arg },
                Fu::Load,
                0,
                pc,
            )),
            MicroOp::UpidPost => {
                let mut u = Self::uop_common(
                    Kind::UpidPostU { index: self.msrom_arg },
                    Fu::Load,
                    0,
                    pc,
                );
                u.serializing = true;
                Some(u)
            }
            MicroOp::IcrWrite => {
                let mut u = Self::uop_common(
                    Kind::IcrWriteU,
                    Fu::Int,
                    self.cfg.msr_write_latency,
                    pc,
                );
                u.serializing = true;
                Some(u)
            }
            MicroOp::UpidDrain => {
                let mut u = Self::uop_common(Kind::UpidDrainU, Fu::Load, 0, pc);
                u.dst = Some(Reg::UT0);
                Some(u)
            }
            MicroOp::DeliverTake => {
                let mut u = Self::uop_common(Kind::DeliverTakeU, Fu::Int, 1, pc);
                u.srcs = [Some(Reg::UT0), None];
                u.dst = Some(Reg::UT1);
                Some(u)
            }
            MicroOp::PushSp => {
                let mut u =
                    Self::uop_common(Kind::Store { offset: -8, data_imm: None }, Fu::Store, 1, pc);
                u.srcs = [Some(Reg::SP), Some(Reg::SP)];
                Some(u)
            }
            MicroOp::PushPc => {
                let mut u = Self::uop_common(
                    Kind::Store {
                        offset: -16,
                        data_imm: Some(self.irq_return_pc as u64),
                    },
                    Fu::Store,
                    1,
                    pc,
                );
                u.srcs = [Some(Reg::SP), None];
                Some(u)
            }
            MicroOp::PushVec => {
                let mut u =
                    Self::uop_common(Kind::Store { offset: -24, data_imm: None }, Fu::Store, 1, pc);
                u.srcs = [Some(Reg::SP), Some(Reg::UT1)];
                Some(u)
            }
            MicroOp::DeliverClui => Some(Self::uop_common(Kind::DeliverCluiU, Fu::Int, 1, pc)),
            MicroOp::JumpHandler => {
                next = self.handler_pc;
                self.msrom_wait = true;
                Some(Self::uop_common(
                    Kind::JumpHandlerU {
                        return_pc: self.irq_return_pc,
                    },
                    Fu::Int,
                    1,
                    pc,
                ))
            }
            MicroOp::MsromRet => {
                next = self.msrom_return;
                self.msrom_wait = true;
                None
            }
        };
        self.fetch_pc = next;
        uop.map(|mut u| {
            u.from_interrupt = from_interrupt;
            u.micro = true;
            u
        })
    }

    // ------------------------------------------------------------------
    // Interrupt acceptance & injection
    // ------------------------------------------------------------------

    fn irq_pending_kind(&self) -> Option<IrqKind> {
        if self.pending_notif {
            Some(IrqKind::Notif)
        } else if self.uirr != 0 {
            Some(IrqKind::DeliverOnly)
        } else {
            None
        }
    }

    fn accept_interrupts(&mut self, now: u64, mem: &MemorySystem) {
        if self.irq != IrqState::Idle || !self.uif || self.recovery.is_some() || self.halted {
            return;
        }
        let Some(kind) = self.irq_pending_kind() else {
            return;
        };
        if matches!(kind, IrqKind::Notif) {
            self.pending_notif = false;
            // Spurious notification: an earlier drain already collected
            // this IPI's posted vector (it raced with the post). The
            // recognition microcode finds nothing pending and delivers
            // nothing.
            if mem.peek(self.upid_addr + 8) == 0 && self.uirr == 0 {
                return;
            }
        }
        self.current_irq = IrqTiming {
            accepted_at: now,
            ..IrqTiming::default()
        };
        self.trace_event(now, TraceKind::IrqAccepted);
        match self.strategy {
            DeliveryStrategy::Tracked => {
                if self.safepoint_mode {
                    self.irq = IrqState::WaitSafepoint { kind };
                } else {
                    self.inject(kind, self.fetch_pc, now);
                }
            }
            DeliveryStrategy::Flush => {
                self.stats.irq_flushes += 1;
                self.fetch_buffer.clear();
                self.irq = IrqState::FlushSquashing { kind };
            }
            DeliveryStrategy::Drain => {
                self.irq = IrqState::Draining { kind };
            }
        }
    }

    fn routine_for(&self, kind: IrqKind) -> Routine {
        match kind {
            IrqKind::Notif => self.msrom.notif_deliver,
            IrqKind::DeliverOnly => self.msrom.deliver_only,
        }
    }

    fn inject(&mut self, kind: IrqKind, return_pc: Pc, now: u64) {
        self.irq_return_pc = return_pc;
        self.frame_stack_spec.push(return_pc);
        let routine = self.routine_for(kind);
        self.fetch_pc = MSROM_BASE + routine.start;
        // A wrong-path Halt may have stopped fetch; injection always
        // restarts it (the microcode + handler must run).
        self.fetch_enabled = true;
        self.fetch_stall_until = self
            .fetch_stall_until
            .max(now + self.cfg.delivery_msrom_latency());
        self.irq = IrqState::Injected { committed: false };
        self.irq_kind_pending = Some(kind);
        self.current_irq.injected_at = now;
        self.trace_event(now, TraceKind::IrqInjected);
    }

    // ------------------------------------------------------------------
    // Squash machinery
    // ------------------------------------------------------------------

    fn squash_tail_one(&mut self) {
        if let Some(entry) = self.rob.pop_back() {
            match entry.state {
                EntryState::Waiting | EntryState::Ready => self.iq_count -= 1,
                _ => {}
            }
            match entry.uop.fu {
                Fu::Load => self.lq_count -= 1,
                Fu::Store => self.sq_count -= 1,
                _ => {}
            }
            self.stats.squashed_uops += 1;
            self.next_seq = entry.seq;
        }
    }

    fn rebuild_rename(&mut self) {
        self.rename = [None; REG_COUNT];
        self.last_micro_seq = None;
        for i in 0..self.rob.len() {
            if let Some(dst) = self.rob[i].uop.dst {
                self.rename[dst.index()] = Some(self.rob[i].seq);
            }
            if self.rob[i].uop.micro {
                self.last_micro_seq = Some(self.rob[i].seq);
            }
        }
    }

    /// Advances misprediction recovery; returns true if fetch must stay
    /// stalled.
    fn step_recovery(&mut self, now: u64) -> bool {
        let Some(rec) = self.recovery else {
            return false;
        };
        let mut budget = self.cfg.squash_width;
        while budget > 0 {
            match self.rob.back() {
                Some(e) if e.seq > rec.branch_seq => {
                    self.squash_tail_one();
                    budget -= 1;
                }
                _ => break,
            }
        }
        let done = self
            .rob
            .back()
            .is_none_or(|e| e.seq <= rec.branch_seq);
        if !done {
            return true;
        }
        // Squash complete: rebuild and redirect.
        self.rebuild_rename();
        self.recovery = None;
        self.msrom_wait = false;
        self.stats.mispredict_recoveries += 1;
        self.trace_event(now, TraceKind::MispredictRecovered);

        let irq_uops_survive = self.rob.iter().any(|e| e.uop.from_interrupt);
        let reinject = matches!(self.irq, IrqState::Injected { committed: false })
            && !irq_uops_survive;
        // Restore the speculative frame stack from committed state.
        self.frame_stack_spec = self.frames.clone();
        if reinject {
            let kind = self.irq_kind_pending.unwrap_or(IrqKind::DeliverOnly);
            if self.safepoint_mode {
                // §4.4: the safepoint was on the misspeculated path; wait
                // for the next one on the correct path.
                self.irq = IrqState::WaitSafepoint { kind };
                self.fetch_pc = rec.redirect_pc;
            } else {
                self.stats.irq_reinjections += 1;
                self.inject(kind, rec.redirect_pc, now);
            }
        } else {
            self.fetch_pc = rec.redirect_pc;
        }
        self.fetch_stall_until = self.fetch_stall_until.max(now + 1);
        self.fetch_enabled = true;
        false
    }

    /// Advances an interrupt-triggered full flush; returns true if fetch
    /// must stay stalled.
    fn step_irq_flush(&mut self, now: u64) -> bool {
        let IrqState::FlushSquashing { kind } = self.irq else {
            return false;
        };
        let mut budget = self.cfg.squash_width;
        while budget > 0 && !self.rob.is_empty() {
            self.squash_tail_one();
            budget -= 1;
        }
        if self.rob.is_empty() {
            self.rebuild_rename();
            self.frame_stack_spec = self.frames.clone();
            self.inject(kind, self.next_commit_pc, now);
            // Flush-path delivery pays the full microcode-assist startup
            // (Fig 2's 424-cycle flush+refill anatomy).
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(now + self.cfg.delivery_flush_latency());
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // The per-cycle tick
    // ------------------------------------------------------------------

    /// Advances the core by one cycle against the shared memory system.
    /// Outgoing IPIs are retrieved afterwards with
    /// [`Core::take_pending_ipi`].
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if self.halted {
            return;
        }

        self.poll_kb_timer(now);
        self.complete(now);
        self.commit(now, mem);

        let recovery_stall = self.step_recovery(now);
        let flush_stall = self.step_irq_flush(now);

        self.accept_interrupts(now, mem);

        self.issue(now, mem);

        // Drain strategy: inject once the pipeline is empty.
        if let IrqState::Draining { kind } = self.irq {
            if self.rob.is_empty() && self.fetch_buffer.is_empty() {
                self.inject(kind, self.next_commit_pc, now);
                // Stock gem5's artificial post-drain stall (§5.2).
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(now + self.cfg.delivery_drain_penalty());
            }
        }

        if self.msrom_wait {
            let chain_busy = self
                .last_micro_seq
                .and_then(|seq| self.entry_index(seq))
                .is_some_and(|idx| !matches!(self.rob[idx].state, EntryState::Done))
                || self
                    .fetch_buffer
                    .iter()
                    .any(|f| f.uop.micro);
            if !chain_busy {
                self.msrom_wait = false;
            }
        }

        let flush_active = matches!(self.irq, IrqState::FlushSquashing { .. });
        if !flush_active && self.recovery.is_none() {
            self.dispatch(now);
        }

        let draining = matches!(self.irq, IrqState::Draining { .. });
        if !recovery_stall && !flush_stall && !flush_active && !draining && self.recovery.is_none()
        {
            self.fetch(now);
        }

        // Halt once the last µop has committed — but never while an
        // interrupt is mid-delivery (its microcode still has to run).
        // An interrupt still *waiting for a safepoint* does not block
        // halting: the program ended without reaching another safepoint,
        // so the pending preemption is moot (the thread is leaving user
        // execution anyway).
        if !self.fetch_enabled
            && self.rob.is_empty()
            && self.fetch_buffer.is_empty()
            && matches!(self.irq, IrqState::Idle | IrqState::WaitSafepoint { .. })
            && !self.halted
        {
            self.halted = true;
            self.stats.halted_at = Some(now);
        }
    }

    fn poll_kb_timer(&mut self, now: u64) {
        if !self.kbt_enabled {
            return;
        }
        if let Some(deadline) = self.kbt_deadline {
            if now >= deadline {
                self.uirr |= 1u64 << self.kbt_vector;
                self.trace_event(now, TraceKind::KbTimerFired);
                match self.kbt_period {
                    Some(p) => {
                        let p = p.max(1);
                        let missed = (now - deadline) / p + 1;
                        self.kbt_deadline = Some(deadline + missed * p);
                    }
                    None => self.kbt_deadline = None,
                }
            }
        }
    }

    fn complete(&mut self, now: u64) {
        let mut completions: Vec<u64> = Vec::new();
        for e in &mut self.rob {
            if let EntryState::Executing { done_at } = e.state {
                if done_at <= now {
                    e.state = EntryState::Done;
                    completions.push(e.seq);
                }
            }
        }
        for seq in completions {
            let (result, dependents) = {
                let idx = self.entry_index(seq).expect("completed entry in ROB");
                let e = &self.rob[idx];
                (e.result, e.dependents.clone())
            };
            // Branch resolution happens at completion.
            self.resolve_branch_if_any(seq, now);
            for dep_seq in dependents {
                if let Some(di) = self.entry_index(dep_seq) {
                    let d = &mut self.rob[di];
                    for s in 0..3 {
                        if d.deps[s] == Some(seq) {
                            d.deps[s] = None;
                            if s < 2 {
                                d.src_vals[s] = result;
                            }
                            d.deps_remaining -= 1;
                        }
                    }
                    if d.deps_remaining == 0 && matches!(d.state, EntryState::Waiting) {
                        d.state = EntryState::Ready;
                    }
                }
            }
        }
    }

    fn resolve_branch_if_any(&mut self, seq: u64, now: u64) {
        let Some(idx) = self.entry_index(seq) else {
            return;
        };
        let e = &self.rob[idx];
        let Kind::Branch {
            on_zero,
            target,
            fall,
            predicted,
        } = e.uop.kind
        else {
            return;
        };
        let cond_val = e.src_vals[0];
        let taken = if on_zero { cond_val == 0 } else { cond_val != 0 };
        let pc = e.uop.pc;
        self.predictor.resolve(pc, taken, predicted);
        if taken != predicted {
            let redirect = if taken { target } else { fall };
            let replace = match self.recovery {
                None => true,
                Some(r) => seq < r.branch_seq,
            };
            // Ignore mispredicts while an interrupt flush is squashing
            // everything anyway.
            if replace && !matches!(self.irq, IrqState::FlushSquashing { .. }) {
                self.recovery = Some(Recovery {
                    branch_seq: seq,
                    redirect_pc: redirect,
                });
                self.fetch_buffer.clear();
                self.trace_event(now, TraceKind::MispredictDetected);
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn issue(&mut self, now: u64, mem: &mut MemorySystem) {
        let mut budget = self.cfg.issue_width;
        let mut int_used = 0;
        let mut mult_used = 0;
        let mut fp_used = 0;
        let mut load_used = 0;
        let mut store_used = 0;
        // Microcode owns the pipeline while it runs: the routine's MSR
        // accesses are serializing, so no ordinary µop enters execution
        // until the micro chain completes (§3.4/§3.5 — this is where the
        // measured receiver costs come from).
        //
        // Program-initiated microcode (senduipi/clui/stui) must not
        // execute speculatively: it stalls until every older branch has
        // resolved, and while stalled it does NOT yet own the pipeline —
        // otherwise the branch it waits for could never issue.
        let oldest_unresolved_branch = self
            .rob
            .iter()
            .find(|e| {
                matches!(e.uop.kind, Kind::Branch { .. })
                    && !matches!(e.state, EntryState::Done)
            })
            .map(|e| e.seq);
        let nonspeculative = |seq: u64| oldest_unresolved_branch.is_none_or(|b| seq < b);
        let micro_engaged = self.rob.iter().any(|e| {
            e.uop.micro
                && !matches!(e.state, EntryState::Done)
                && (e.uop.from_interrupt || nonspeculative(e.seq))
        });
        let rob_len = self.rob.len();
        let mut issued_any = false;
        // Progress guarantee: when microcode owns the pipeline but cannot
        // itself proceed (e.g. delivery's PushSp waits on a stack pointer
        // produced by a blocked program chain — the §6.1 pathology) and
        // nothing is executing, let the oldest ready program µop through.
        let any_executing = self
            .rob
            .iter()
            .any(|e| matches!(e.state, EntryState::Executing { .. }));
        let mut breaker_budget = if micro_engaged && !any_executing { 1usize } else { 0 };
        for idx in 0..rob_len {
            if budget == 0 {
                break;
            }
            if micro_engaged && !self.rob[idx].uop.micro {
                if issued_any || breaker_budget == 0 {
                    continue;
                }
                let ready_now = matches!(self.rob[idx].state, EntryState::Ready)
                    || (matches!(self.rob[idx].state, EntryState::Waiting)
                        && self.rob[idx].deps_remaining == 0);
                if !ready_now {
                    continue;
                }
                breaker_budget -= 1;
            }
            if self.rob[idx].uop.micro
                && !self.rob[idx].uop.from_interrupt
                && !nonspeculative(self.rob[idx].seq)
            {
                continue;
            }
            let ready = matches!(self.rob[idx].state, EntryState::Ready)
                || (matches!(self.rob[idx].state, EntryState::Waiting)
                    && self.rob[idx].deps_remaining == 0);
            if !ready {
                continue;
            }
            let fu = self.rob[idx].uop.fu;
            let fu_ok = match fu {
                Fu::Int => int_used < self.cfg.int_alu_units,
                Fu::Mult => mult_used < self.cfg.int_mult_units,
                Fu::Fp => fp_used < self.cfg.fp_units,
                Fu::Load => load_used < self.cfg.load_ports,
                Fu::Store => store_used < self.cfg.store_ports,
            };
            if !fu_ok {
                continue;
            }
            // Memory disambiguation: a load may not issue past an older
            // store whose address is unknown, or one to the same word
            // whose data is not yet ready (it will forward once Done).
            if let Kind::Load { offset } = self.rob[idx].uop.kind {
                if self.rob[idx].deps[0].is_some() {
                    continue; // base not ready (shouldn't happen: deps==0)
                }
                let word = self.rob[idx].src_vals[0].wrapping_add_signed(offset) & !7;
                let blocked = self.rob.iter().take(idx).any(|e| {
                    if !matches!(e.uop.fu, Fu::Store)
                        || matches!(e.state, EntryState::Done)
                    {
                        return false;
                    }
                    let Kind::Store { offset: soff, .. } = e.uop.kind else {
                        return false;
                    };
                    if e.deps[0].is_some() {
                        return true; // address unknown: conservative
                    }
                    e.src_vals[0].wrapping_add_signed(soff) & !7 == word
                });
                if blocked {
                    continue;
                }
            }
            // Issue it.
            let (latency, result) = self.execute_uop(idx, now, mem);
            let e = &mut self.rob[idx];
            e.result = result;
            e.state = EntryState::Executing {
                done_at: now + latency.max(1),
            };
            self.iq_count -= 1;
            budget -= 1;
            issued_any = true;
            match fu {
                Fu::Int => int_used += 1,
                Fu::Mult => mult_used += 1,
                Fu::Fp => fp_used += 1,
                Fu::Load => load_used += 1,
                Fu::Store => store_used += 1,
            }
        }
    }

    /// Computes a µop's latency and result, applying execute-time side
    /// effects (memory reads, UPID RMWs, ICR writes).
    fn execute_uop(&mut self, idx: usize, now: u64, mem: &mut MemorySystem) -> (u64, u64) {
        let uop = self.rob[idx].uop;
        let sv = self.rob[idx].src_vals;
        match uop.kind {
            Kind::Int | Kind::SendUipiMarker | Kind::HaltU | Kind::CluiU | Kind::StuiU
            | Kind::DeliverCluiU | Kind::SetTimerU { .. } | Kind::ClearTimerU
            | Kind::UiretU => (uop.latency, 0),
            Kind::JumpHandlerU { .. } => {
                // The handler starts *executing* here (speculatively, like
                // an rdtsc in a real handler); commit finalizes the
                // record. Re-execution after a squash overwrites the
                // stamp, keeping the last pre-commit execution.
                self.current_irq.handler_at = now;
                (uop.latency, 0)
            }
            Kind::Alu { kind, imm } => {
                let b = imm.map_or(sv[1], |i| i as u64);
                (uop.latency, kind.eval(sv[0], b))
            }
            Kind::Li { imm } => (uop.latency, imm),
            Kind::Load { offset } => {
                let addr = sv[0].wrapping_add_signed(offset);
                // Store-to-load forwarding: the youngest older store to
                // the same word supplies the data at L1 speed.
                let word = addr & !7;
                let mut forwarded = None;
                for e in self.rob.iter().take(idx) {
                    if let Kind::Store { offset: soff, data_imm } = e.uop.kind {
                        if matches!(e.state, EntryState::Done) {
                            let saddr = e.src_vals[0].wrapping_add_signed(soff);
                            if saddr & !7 == word {
                                forwarded = Some(data_imm.unwrap_or(e.src_vals[1]));
                            }
                        }
                    }
                }
                match forwarded {
                    Some(val) => (4, val),
                    None => {
                        let (lat, val) = mem.read(self.id, addr);
                        (lat, val)
                    }
                }
            }
            Kind::Store { .. } => (uop.latency, 0),
            Kind::Branch { .. } => (uop.latency, 0),
            Kind::Testui => (uop.latency, u64::from(self.uif)),
            Kind::UittLoadU { index } => {
                // The UITT entry line: model as a load from a per-core
                // table address (hot in L1 after first use).
                let addr = 0x3000_0000 + (self.id as u64) * 4096 + (index as u64) * 16;
                let (lat, _) = mem.read(self.id, addr);
                (lat, 0)
            }
            Kind::UpidPostU { index } => {
                let Some(entry) = self.uitt.get(index).copied() else {
                    return (1, 0);
                };
                let (lat1, low) = mem.read(self.id, entry.upid_addr);
                let (_, pir) = mem.read(self.id, entry.upid_addr + 8);
                let new_pir = pir | (1u64 << (entry.user_vector & 63));
                mem.write(self.id, entry.upid_addr + 8, new_pir);
                let sn = low & upid_words::SN != 0;
                let on = low & upid_words::ON != 0;
                if !sn && !on {
                    mem.write(self.id, entry.upid_addr, low | upid_words::ON);
                    let dest = (low >> upid_words::NDST_SHIFT) as usize;
                    self.ipi_flag = Some(dest);
                }
                self.trace_event(now, TraceKind::UpidPosted);
                (lat1 + 4, 0)
            }
            Kind::IcrWriteU => {
                if let Some(dest) = self.ipi_flag.take() {
                    self.trace_event(now, TraceKind::IcrWrite);
                    // The system adds bus latency; record intent in the
                    // pending outbox (flushed by tick's caller).
                    self.pending_ipi = Some(dest);
                }
                (uop.latency, 0)
            }
            Kind::UpidDrainU => {
                let (lat, low) = mem.read(self.id, self.upid_addr);
                let (_, pir) = mem.read(self.id, self.upid_addr + 8);
                mem.write(self.id, self.upid_addr, low & !upid_words::ON);
                mem.write(self.id, self.upid_addr + 8, 0);
                self.uirr |= pir;
                self.trace_event(now, TraceKind::UpidDrained);
                (lat + 4, pir)
            }
            Kind::DeliverTakeU => {
                let v = if self.uirr == 0 {
                    self.last_taken_vector
                } else {
                    let v = 63 - self.uirr.leading_zeros() as u64;
                    self.uirr &= !(1u64 << v);
                    self.last_taken_vector = v;
                    v
                };
                (uop.latency, v)
            }
        }
    }

    fn dispatch(&mut self, now: u64) {
        let mut budget = self.cfg.decode_width;
        while budget > 0 {
            let Some(front) = self.fetch_buffer.front() else {
                break;
            };
            if front.ready_at > now || self.rob.len() >= self.cfg.rob_size {
                break;
            }
            if self.iq_count >= self.cfg.iq_size {
                break;
            }
            let uop = front.uop;
            match uop.fu {
                Fu::Load if self.lq_count >= self.cfg.lq_size => break,
                Fu::Store if self.sq_count >= self.cfg.sq_size => break,
                _ => {}
            }
            self.fetch_buffer.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut deps = [None, None, None];
            let mut src_vals = [0u64, 0];
            let mut deps_remaining = 0u8;
            for s in 0..2 {
                if let Some(reg) = uop.srcs[s] {
                    match self.rename[reg.index()] {
                        Some(prod_seq) => {
                            let pidx = self.entry_index(prod_seq).unwrap_or_else(|| {
                                panic!(
                                    "rename points outside ROB: core={} now={} reg={} prod_seq={} head_seq={} rob_len={} next_seq={} uop={:?} irq={:?} recovery={:?}",
                                    self.id, now, reg.0, prod_seq, self.head_seq,
                                    self.rob.len(), self.next_seq, uop.kind, self.irq, self.recovery
                                )
                            });
                            if matches!(self.rob[pidx].state, EntryState::Done) {
                                src_vals[s] = self.rob[pidx].result;
                            } else {
                                deps[s] = Some(prod_seq);
                                deps_remaining += 1;
                                self.rob[pidx].dependents.push(seq);
                            }
                        }
                        None => src_vals[s] = self.regs[reg.index()],
                    }
                }
            }
            // Microcode sequencing: MSROM µops issue in order, each
            // waiting for its predecessor — the serial micro-sequencer
            // that makes delivery cost what it costs (§3.4).
            if uop.micro {
                if let Some(prev) = self.last_micro_seq {
                    if let Some(pidx) = self.entry_index(prev) {
                        if !matches!(self.rob[pidx].state, EntryState::Done) {
                            deps[2] = Some(prev);
                            deps_remaining += 1;
                            self.rob[pidx].dependents.push(seq);
                        }
                    }
                }
                self.last_micro_seq = Some(seq);
            }
            if let Some(dst) = uop.dst {
                self.rename[dst.index()] = Some(seq);
            }
            let state = if deps_remaining == 0 {
                EntryState::Ready
            } else {
                EntryState::Waiting
            };
            self.iq_count += 1;
            match uop.fu {
                Fu::Load => self.lq_count += 1,
                Fu::Store => self.sq_count += 1,
                _ => {}
            }
            self.rob.push_back(RobEntry {
                seq,
                uop,
                deps,
                src_vals,
                deps_remaining,
                state,
                result: 0,
                dependents: Vec::new(),
            });
            budget -= 1;
        }
    }

    fn fetch(&mut self, now: u64) {
        if !self.fetch_enabled || now < self.fetch_stall_until {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        while budget > 0 {
            if self.msrom_wait || self.fetch_buffer.len() >= self.cfg.fetch_queue_size {
                break;
            }
            let pc = self.fetch_pc;
            let from_interrupt = matches!(self.irq, IrqState::Injected { committed: false })
                && pc >= MSROM_BASE;
            let decoded = if pc >= MSROM_BASE {
                let Some(mop) = self.msrom.get(pc - MSROM_BASE) else {
                    break;
                };
                self.decode_msrom(mop, pc, from_interrupt)
            } else {
                let Some(inst) = self.program.get(pc).copied() else {
                    self.fetch_enabled = false;
                    break;
                };
                // Safepoint gating: inject *before* the marked
                // instruction (§4.4).
                if let IrqState::WaitSafepoint { kind } = self.irq {
                    if inst.safepoint {
                        self.trace_event(now, TraceKind::SafepointHit);
                        self.inject(kind, pc, now);
                        break;
                    }
                }
                self.decode_program(inst, pc)
            };
            if let Some(uop) = decoded {
                self.fetch_buffer.push_back(Fetched {
                    uop,
                    ready_at: now + self.cfg.frontend_depth,
                });
                budget -= 1;
            }
            if !self.fetch_enabled || now < self.fetch_stall_until {
                break;
            }
            // A redirect into/out of MSROM still consumes the cycle's
            // remaining fetch slots naturally via the loop.
        }
    }

    fn commit(&mut self, now: u64, mem: &mut MemorySystem) {
        // An interrupt flush stops retirement (everything uncommitted is
        // being squashed).
        if matches!(self.irq, IrqState::FlushSquashing { .. }) {
            return;
        }
        let mut budget = self.cfg.retire_width;
        while budget > 0 {
            let Some(head) = self.rob.front() else {
                break;
            };
            if !matches!(head.state, EntryState::Done) {
                break;
            }
            // Never retire past a mispredicted branch awaiting recovery:
            // everything younger is wrong-path.
            if let Some(rec) = self.recovery {
                if head.seq > rec.branch_seq {
                    break;
                }
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.head_seq = entry.seq + 1;
            match entry.uop.fu {
                Fu::Load => self.lq_count -= 1,
                Fu::Store => self.sq_count -= 1,
                _ => {}
            }
            self.apply_commit(&entry, now, mem);
            budget -= 1;
        }
    }

    fn apply_commit(&mut self, entry: &RobEntry, now: u64, mem: &mut MemorySystem) {
        let uop = entry.uop;
        self.stats.committed_uops += 1;
        if uop.is_program {
            self.stats.committed_insts += 1;
            self.next_commit_pc = match uop.kind {
                Kind::Branch {
                    on_zero,
                    target,
                    fall,
                    ..
                } => {
                    let taken = if on_zero {
                        entry.src_vals[0] == 0
                    } else {
                        entry.src_vals[0] != 0
                    };
                    if taken {
                        target
                    } else {
                        fall
                    }
                }
                _ => match self.program.get(uop.pc).map(|i| i.op) {
                    Some(Op::Jmp { target }) => target,
                    _ => uop.pc + 1,
                },
            };
        }
        if uop.from_interrupt {
            if let IrqState::Injected { committed: false } = self.irq {
                self.irq = IrqState::Injected { committed: true };
            }
        }
        if let Some(dst) = uop.dst {
            self.regs[dst.index()] = entry.result;
            if self.rename[dst.index()] == Some(entry.seq) {
                self.rename[dst.index()] = None;
            }
        }
        match uop.kind {
            Kind::Store { offset, data_imm } => {
                let addr = entry.src_vals[0].wrapping_add_signed(offset);
                let data = data_imm.unwrap_or(entry.src_vals[1]);
                mem.write(self.id, addr, data);
            }
            Kind::CluiU | Kind::DeliverCluiU => self.uif = false,
            Kind::StuiU => self.uif = true,
            Kind::UiretU => {
                // Architectural control transfer: execution resumes at
                // the frame's return PC — a later interrupt flush must
                // use it, not the handler-side next_commit_pc.
                if let Some(return_pc) = self.frames.pop() {
                    self.next_commit_pc = return_pc;
                }
                self.uif = true;
                self.stats.uirets += 1;
                self.current_irq.uiret_at = now;
                if let Some(last) = self.irq_timings.last_mut() {
                    if last.uiret_at == 0 {
                        last.uiret_at = now;
                    }
                }
                self.trace_event(now, TraceKind::UiretCommitted);
            }
            Kind::JumpHandlerU { return_pc } => {
                self.frames.push(return_pc);
                self.next_commit_pc = self.handler_pc;
                self.stats.interrupts_delivered += 1;
                if self.current_irq.handler_at == 0 {
                    self.current_irq.handler_at = now;
                }
                self.irq_timings.push(self.current_irq);
                self.irq = IrqState::Idle;
                self.irq_kind_pending = None;
                self.trace_event(now, TraceKind::HandlerEntered);
            }
            Kind::SetTimerU { cycles, periodic }
                if self.kbt_enabled => {
                    if periodic {
                        self.kbt_deadline = Some(now + cycles.max(1));
                        self.kbt_period = Some(cycles.max(1));
                    } else {
                        self.kbt_deadline = Some(now + cycles);
                        self.kbt_period = None;
                    }
                }
            Kind::ClearTimerU => {
                self.kbt_deadline = None;
                self.kbt_period = None;
            }
            Kind::SendUipiMarker => {
                self.trace_event(now, TraceKind::SendUipiStart);
            }
            _ => {}
        }
    }

    /// Takes the IPI produced this cycle, if any (the system puts it on
    /// the bus).
    pub fn take_pending_ipi(&mut self) -> Option<usize> {
        self.pending_ipi.take()
    }
}

// The pending-IPI slot is declared here (after the impl that references
// it) to keep the struct definition readable.
impl Core {
    /// Current reorder-buffer occupancy (diagnostics).
    #[must_use]
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }
}
