//! The shared-memory system: per-core L1/L2 caches with LRU replacement, a
//! shared last-level cache, and a MESI-lite directory that charges a
//! cache-to-cache transfer when a core reads a line another agent wrote.
//!
//! This is where polling and UPID costs become emergent rather than
//! assumed: a poll loop hits its flag line in L1 (cheap) until the remote
//! writer invalidates it, and the UIPI notification-processing microcode
//! pays the same remote-read penalty when it drains a UPID a sender just
//! posted into (§4.2 "Cheaper than shared memory notification?").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::config::MemConfig;

/// Writer id used by devices/DMA agents that are not simulated cores
/// (e.g. the software-timer device posting into a UPID).
pub const EXTERNAL_WRITER: usize = usize::MAX;

const LINE_SHIFT: u32 = 6; // 64-byte lines

fn line_of(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

fn word_of(addr: u64) -> u64 {
    addr & !7
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SetAssocCache {
    sets: Vec<Vec<(u64, u64)>>, // (line, lru_stamp)
    ways: usize,
    stamp: u64,
}

impl SetAssocCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
            stamp: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    fn contains(&mut self, line: u64) -> bool {
        let idx = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(entry) = self.sets[idx].iter_mut().find(|(l, _)| *l == line) {
            entry.1 = stamp;
            true
        } else {
            false
        }
    }

    /// Inserts a line, returning the evicted line if the set was full.
    fn insert(&mut self, line: u64) -> Option<u64> {
        let idx = self.set_index(line);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[idx];
        if let Some(entry) = set.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = stamp;
            return None;
        }
        let mut evicted = None;
        if set.len() >= self.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty set");
            evicted = Some(set.swap_remove(victim).0);
        }
        set.push((line, stamp));
        evicted
    }

    fn invalidate(&mut self, line: u64) {
        let idx = self.set_index(line);
        self.sets[idx].retain(|(l, _)| *l != line);
    }
}

/// Per-core access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses).
    pub l2_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// DRAM accesses (first touch).
    pub mem_accesses: u64,
    /// Reads satisfied by a remote cache-to-cache transfer.
    pub remote_transfers: u64,
}

/// The system-wide memory model: values plus timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySystem {
    cfg: MemConfig,
    words: HashMap<u64, u64>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    /// Lines resident somewhere on chip (LLC is effectively infinite).
    llc: HashMap<u64, ()>,
    /// Line → writer that holds it modified (core id or
    /// [`EXTERNAL_WRITER`]).
    modified_by: HashMap<u64, usize>,
    /// Line → bitmask of cores that may cache it.
    presence: HashMap<u64, u64>,
    stats: Vec<MemStats>,
}

impl MemorySystem {
    /// Creates a memory system for `cores` cores.
    #[must_use]
    pub fn new(cfg: MemConfig, cores: usize) -> Self {
        Self {
            l1: (0..cores).map(|_| SetAssocCache::new(cfg.l1_sets, cfg.l1_ways)).collect(),
            l2: (0..cores).map(|_| SetAssocCache::new(cfg.l2_sets, cfg.l2_ways)).collect(),
            cfg,
            words: HashMap::new(),
            llc: HashMap::new(),
            modified_by: HashMap::new(),
            presence: HashMap::new(),
            stats: vec![MemStats::default(); cores],
        }
    }

    /// Number of cores this memory system serves.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Per-core statistics.
    #[must_use]
    pub fn stats(&self, core: usize) -> MemStats {
        self.stats[core]
    }

    fn note_present(&mut self, line: u64, core: usize) {
        if core != EXTERNAL_WRITER {
            *self.presence.entry(line).or_insert(0) |= 1u64 << core;
        }
        self.llc.insert(line, ());
    }

    fn fill(&mut self, core: usize, line: u64) {
        if core == EXTERNAL_WRITER {
            return;
        }
        if let Some(evicted) = self.l1[core].insert(line) {
            self.l2[core].insert(evicted);
        }
        self.l2[core].insert(line);
        self.note_present(line, core);
    }

    fn invalidate_others(&mut self, line: u64, keeper: usize) {
        let mask = self.presence.get(&line).copied().unwrap_or(0);
        if mask == 0 {
            return;
        }
        for core in 0..self.l1.len() {
            if core != keeper && mask & (1u64 << core) != 0 {
                self.l1[core].invalidate(line);
                self.l2[core].invalidate(line);
            }
        }
        let keep_bit = if keeper == EXTERNAL_WRITER {
            0
        } else {
            mask & (1u64 << keeper)
        };
        self.presence.insert(line, keep_bit);
    }

    /// Performs a timed read: returns `(latency_cycles, value)`.
    pub fn read(&mut self, core: usize, addr: u64) -> (u64, u64) {
        let line = line_of(addr);
        let value = self.words.get(&word_of(addr)).copied().unwrap_or(0);
        let latency = match self.modified_by.get(&line).copied() {
            Some(writer) if writer != core => {
                // Dirty in another agent's cache: cache-to-cache transfer;
                // the line becomes shared.
                self.modified_by.remove(&line);
                self.stats[core].remote_transfers += 1;
                self.fill(core, line);
                self.cfg.remote_latency
            }
            _ => {
                if self.l1[core].contains(line) {
                    self.stats[core].l1_hits += 1;
                    self.cfg.l1_latency
                } else if self.l2[core].contains(line) {
                    self.stats[core].l2_hits += 1;
                    self.fill(core, line);
                    self.cfg.l2_latency
                } else if self.llc.contains_key(&line) {
                    self.stats[core].llc_hits += 1;
                    self.fill(core, line);
                    self.cfg.llc_latency
                } else {
                    self.stats[core].mem_accesses += 1;
                    self.fill(core, line);
                    self.cfg.mem_latency
                }
            }
        };
        (latency, value)
    }

    /// Performs a timed write of an aligned 64-bit word; returns the
    /// latency. Other cores' copies are invalidated and the line becomes
    /// modified by `core`.
    pub fn write(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let line = line_of(addr);
        self.invalidate_others(line, core);
        let latency = if core == EXTERNAL_WRITER {
            self.note_present(line, core);
            0
        } else if self.l1[core].contains(line) && !self.was_remote_dirty(line, core) {
            self.cfg.l1_latency
        } else {
            self.fill(core, line);
            self.cfg.l1_latency
        };
        self.modified_by.insert(line, core);
        self.words.insert(word_of(addr), value);
        latency
    }

    fn was_remote_dirty(&self, line: u64, core: usize) -> bool {
        matches!(self.modified_by.get(&line), Some(&w) if w != core)
    }

    /// Untimed read for devices/tests.
    #[must_use]
    pub fn peek(&self, addr: u64) -> u64 {
        self.words.get(&word_of(addr)).copied().unwrap_or(0)
    }

    /// Untimed write that still participates in coherence as an external
    /// agent (used to initialize workload data without billing a core).
    pub fn poke(&mut self, addr: u64, value: u64) {
        let line = line_of(addr);
        self.invalidate_others(line, EXTERNAL_WRITER);
        self.modified_by.remove(&line);
        self.note_present(line, EXTERNAL_WRITER);
        self.words.insert(word_of(addr), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::sapphire_rapids_like(), cores)
    }

    #[test]
    fn first_touch_then_l1_hit() {
        let mut m = sys(1);
        let (lat, v) = m.read(0, 0x1000);
        assert_eq!(lat, m.cfg.mem_latency);
        assert_eq!(v, 0);
        let (lat, _) = m.read(0, 0x1000);
        assert_eq!(lat, m.cfg.l1_latency);
        let (lat, _) = m.read(0, 0x1008);
        assert_eq!(lat, m.cfg.l1_latency, "same line, different word");
        assert_eq!(m.stats(0).l1_hits, 2);
    }

    #[test]
    fn write_then_read_value() {
        let mut m = sys(1);
        m.write(0, 0x2000, 42);
        let (_, v) = m.read(0, 0x2000);
        assert_eq!(v, 42);
        assert_eq!(m.peek(0x2000), 42);
    }

    #[test]
    fn remote_write_invalidates_and_costs_remote_latency() {
        let mut m = sys(2);
        // Core 0 caches the flag line.
        m.write(0, 0x3000, 0);
        assert_eq!(m.read(0, 0x3000).0, m.cfg.l1_latency);
        // Core 1 (the notifier) writes the flag.
        m.write(1, 0x3000, 1);
        // Core 0's next poll misses and pays the cache-to-cache price.
        let (lat, v) = m.read(0, 0x3000);
        assert_eq!(lat, m.cfg.remote_latency);
        assert_eq!(v, 1);
        assert_eq!(m.stats(0).remote_transfers, 1);
        // And then it is cheap again.
        assert_eq!(m.read(0, 0x3000).0, m.cfg.l1_latency);
    }

    #[test]
    fn external_writer_behaves_like_remote_agent() {
        let mut m = sys(1);
        m.write(0, 0x4000, 0);
        assert_eq!(m.read(0, 0x4000).0, m.cfg.l1_latency);
        m.write(EXTERNAL_WRITER, 0x4000, 9);
        let (lat, v) = m.read(0, 0x4000);
        assert_eq!(lat, m.cfg.remote_latency);
        assert_eq!(v, 9);
    }

    #[test]
    fn l1_capacity_eviction_falls_back_to_l2() {
        let mut m = sys(1);
        // One L1 set holds 8 ways; touch 9 lines mapping to the same set.
        let set_stride = 64u64 * m.cfg.l1_sets as u64;
        for i in 0..9u64 {
            m.read(0, 0x10_0000 + i * set_stride);
        }
        // The first line was evicted from L1 but lives in L2.
        let (lat, _) = m.read(0, 0x10_0000);
        assert_eq!(lat, m.cfg.l2_latency);
    }

    #[test]
    fn working_set_beyond_l2_hits_llc() {
        let mut m = sys(1);
        let l2_lines = (m.cfg.l2_sets * m.cfg.l2_ways) as u64;
        // Touch 2x the L2 capacity of distinct lines.
        for i in 0..(2 * l2_lines) {
            m.read(0, i * 64);
        }
        // Early lines are out of both L1 and L2 now.
        let (lat, _) = m.read(0, 0);
        assert_eq!(lat, m.cfg.llc_latency);
    }

    #[test]
    fn poke_initializes_without_core_state() {
        let mut m = sys(2);
        m.poke(0x5000, 77);
        assert_eq!(m.peek(0x5000), 77);
        let (lat, v) = m.read(1, 0x5000);
        assert_eq!(v, 77);
        assert_eq!(lat, m.cfg.llc_latency, "poked data is on-chip, not dirty");
    }

    #[test]
    fn two_writers_alternate_ownership() {
        let mut m = sys(2);
        m.write(0, 0x6000, 1);
        m.write(1, 0x6000, 2);
        assert_eq!(m.read(0, 0x6000), (m.cfg.remote_latency, 2));
        m.write(0, 0x6000, 3);
        assert_eq!(m.read(1, 0x6000), (m.cfg.remote_latency, 3));
    }
}
