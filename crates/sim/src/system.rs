//! The multi-core system: cores in lockstep, the shared memory system, the
//! IPI bus, and interrupt-source devices.

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::core::{upid_words, Core, SimUittEntry};
use crate::isa::{Pc, Program};
use crate::mem::{MemorySystem, EXTERNAL_WRITER};

/// An interrupt/notification source attached to the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Device {
    /// Models a dedicated software-timer core sending UIPIs at a fixed
    /// period (the "UIPI SW Timer" configuration of Figure 4): posts into
    /// the destination UPID as a remote agent (invalidating the
    /// receiver's cached copy) and raises the notification IPI after the
    /// sender-side `senduipi` + bus transit time.
    UipiTimer {
        /// Firing period in cycles.
        period: u64,
        /// Next firing time.
        next_fire: u64,
        /// Destination UPID address.
        upid_addr: u64,
        /// User vector to post.
        user_vector: u8,
        /// End-to-end send latency (sender µcode + APIC transit).
        send_latency: u64,
    },
    /// Periodically writes a shared-memory flag — the notification side
    /// of a polling-based preemption scheme (Concord-style, Figure 5).
    FlagWriter {
        /// Firing period in cycles.
        period: u64,
        /// Next firing time.
        next_fire: u64,
        /// Flag address.
        addr: u64,
        /// Value written.
        value: u64,
    },
    /// A device whose interrupts are *forwarded* to the running thread
    /// (xUI fast path, §4.5) — or the per-core KB_Timer being exercised
    /// externally: posts the user vector straight into the core's UIRR.
    DirectIrq {
        /// Firing period in cycles.
        period: u64,
        /// Next firing time.
        next_fire: u64,
        /// Destination core.
        core: usize,
        /// User vector posted.
        user_vector: u8,
    },
}

impl Device {
    /// Next cycle at which this device fires.
    fn next_fire(&self) -> u64 {
        match self {
            Device::UipiTimer { next_fire, .. }
            | Device::FlagWriter { next_fire, .. }
            | Device::DirectIrq { next_fire, .. } => *next_fire,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BusMsg {
    arrive_at: u64,
    dest: usize,
}

/// A complete simulated machine.
#[derive(Debug)]
pub struct System {
    /// System configuration.
    pub cfg: SystemConfig,
    /// The cores, indexed by id (== APIC id).
    pub cores: Vec<Core>,
    /// The shared memory system.
    pub mem: MemorySystem,
    devices: Vec<Device>,
    bus: Vec<BusMsg>,
    cycle: u64,
    /// Earliest `next_fire` across devices (`u64::MAX` when none): lets
    /// `tick` skip the device scan on cycles where nothing can fire.
    next_device_fire: u64,
    /// Earliest `arrive_at` across in-flight bus messages (`u64::MAX`
    /// when the bus is empty): lets `tick` skip the bus scan.
    next_bus_arrive: u64,
    /// Scratch buffer for due bus messages (reused to avoid a per-cycle
    /// allocation; order-preserving like the `retain` it replaces).
    bus_due: Vec<BusMsg>,
}

impl System {
    /// Builds a system with one core per program.
    #[must_use]
    pub fn new(cfg: SystemConfig, programs: Vec<Program>) -> Self {
        let mem = MemorySystem::new(cfg.mem.clone(), programs.len());
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(id, p)| Core::new(id, cfg.core.clone(), cfg.strategy.0, p))
            .collect();
        Self {
            cfg,
            cores,
            mem,
            devices: Vec::new(),
            bus: Vec::new(),
            cycle: 0,
            next_device_fire: u64::MAX,
            next_bus_arrive: u64::MAX,
            bus_due: Vec::new(),
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Registers `core` as a user-interrupt receiver with the given
    /// handler entry point, initializing its UPID in simulated memory.
    pub fn register_receiver(&mut self, core: usize, handler: Pc) {
        let addr = self.cores[core].upid_addr;
        // Low word: ON=0, SN=0, NDST=core. High word: PIR=0.
        self.mem
            .poke(addr, (core as u64) << upid_words::NDST_SHIFT);
        self.mem.poke(addr + 8, 0);
        self.cores[core].set_handler(handler);
    }

    /// Grants `sender` the ability to `senduipi` to `receiver`; returns
    /// the UITT index to use as the instruction operand.
    pub fn connect_sender(&mut self, sender: usize, receiver: usize, user_vector: u8) -> usize {
        let upid_addr = self.cores[receiver].upid_addr;
        self.cores[sender].add_uitt_entry(SimUittEntry {
            upid_addr,
            user_vector,
        })
    }

    /// Attaches a device.
    pub fn add_device(&mut self, device: Device) {
        self.next_device_fire = self.next_device_fire.min(device.next_fire());
        self.devices.push(device);
    }

    fn fire_devices(&mut self) {
        let now = self.cycle;
        if now < self.next_device_fire {
            return;
        }
        for d in &mut self.devices {
            match d {
                Device::UipiTimer {
                    period,
                    next_fire,
                    upid_addr,
                    user_vector,
                    send_latency,
                } => {
                    if now >= *next_fire {
                        let low = self.mem.peek(*upid_addr);
                        let pir = self.mem.peek(*upid_addr + 8);
                        self.mem
                            .write(EXTERNAL_WRITER, *upid_addr + 8, pir | (1 << (*user_vector & 63)));
                        let sn = low & upid_words::SN != 0;
                        let on = low & upid_words::ON != 0;
                        if !sn && !on {
                            self.mem
                                .write(EXTERNAL_WRITER, *upid_addr, low | upid_words::ON);
                            let dest = (low >> upid_words::NDST_SHIFT) as usize;
                            let arrive_at = now + *send_latency;
                            self.bus.push(BusMsg { arrive_at, dest });
                            self.next_bus_arrive = self.next_bus_arrive.min(arrive_at);
                        }
                        *next_fire += (*period).max(1);
                    }
                }
                Device::FlagWriter {
                    period,
                    next_fire,
                    addr,
                    value,
                } => {
                    if now >= *next_fire {
                        self.mem.write(EXTERNAL_WRITER, *addr, *value);
                        *next_fire += (*period).max(1);
                    }
                }
                Device::DirectIrq {
                    period,
                    next_fire,
                    core,
                    user_vector,
                } => {
                    if now >= *next_fire {
                        self.cores[*core].post_direct(*user_vector);
                        *next_fire += (*period).max(1);
                    }
                }
            }
        }
        self.next_device_fire = self
            .devices
            .iter()
            .map(Device::next_fire)
            .min()
            .unwrap_or(u64::MAX);
    }

    fn deliver_bus(&mut self) {
        let now = self.cycle;
        if now < self.next_bus_arrive {
            return;
        }
        // Stable partition into the reusable scratch buffer, preserving
        // delivery order exactly as the old `retain`-based path did.
        let mut due = std::mem::take(&mut self.bus_due);
        due.clear();
        self.bus.retain(|m| {
            if m.arrive_at <= now {
                due.push(*m);
                false
            } else {
                true
            }
        });
        for m in &due {
            if m.dest < self.cores.len() {
                self.cores[m.dest].post_notification(now);
            }
        }
        self.bus_due = due;
        self.next_bus_arrive = self
            .bus
            .iter()
            .map(|m| m.arrive_at)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Advances the whole system by one cycle.
    pub fn tick(&mut self) {
        self.fire_devices();
        self.deliver_bus();
        let now = self.cycle;
        for core in &mut self.cores {
            core.tick(now, &mut self.mem);
            if let Some(dest) = core.take_pending_ipi() {
                let arrive_at = now + self.cfg.delivery_ipi_latency();
                self.bus.push(BusMsg { arrive_at, dest });
                self.next_bus_arrive = self.next_bus_arrive.min(arrive_at);
            }
        }
        self.cycle += 1;
    }

    /// True when every core has drained and halted.
    fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::is_halted)
    }

    /// With every core halted, nothing can change state between now and
    /// the next external event (device fire or bus arrival): halting is
    /// terminal for a core, so those cycles are pure clock advancement.
    /// Returns the first cycle `>= self.cycle` (capped at `end`) at which
    /// something can happen again — i.e. how far the clock may jump
    /// without simulating individual cycles.
    fn next_wakeup(&self, end: u64) -> u64 {
        self.next_device_fire.min(self.next_bus_arrive).min(end)
    }

    /// Runs for `cycles` cycles, skipping dead cycles in bulk once every
    /// core has halted (cycle-level semantics are unchanged: device
    /// firings and bus deliveries still happen on their exact cycles).
    pub fn run_cycles(&mut self, cycles: u64) {
        let end = self.cycle.saturating_add(cycles);
        while self.cycle < end {
            if self.all_halted() {
                let wake = self.next_wakeup(end);
                if wake > self.cycle {
                    self.cycle = wake;
                    continue;
                }
            }
            self.tick();
        }
    }

    /// Runs until every core halts or `max_cycles` elapse; returns the
    /// cycle count at stop.
    pub fn run_until_halted(&mut self, max_cycles: u64) -> u64 {
        while self.cycle < max_cycles && !self.all_halted() {
            self.tick();
        }
        self.cycle
    }

    /// All cores' trace events merged into one stream, sorted by
    /// `(cycle, core)` — deterministic input for the core-aware lookups
    /// in `trace` and for telemetry export.
    #[must_use]
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        let mut out: Vec<crate::trace::TraceEvent> = self
            .cores
            .iter()
            .flat_map(|c| c.trace.iter().copied())
            .collect();
        out.sort_by_key(|e| (e.cycle, e.core));
        out
    }

    /// The merged trace as telemetry events (see
    /// [`crate::trace::to_telemetry`]), ready for Chrome-trace export.
    #[must_use]
    pub fn telemetry_events(&self) -> Vec<xui_telemetry::Event> {
        crate::trace::to_telemetry(&self.trace_events())
    }

    /// Runs until the given core halts or `max_cycles` elapse; returns
    /// the halt cycle, or `None` on timeout.
    pub fn run_until_core_halted(&mut self, core: usize, max_cycles: u64) -> Option<u64> {
        while self.cycle < max_cycles {
            if self.cores[core].is_halted() {
                return self.cores[core].stats.halted_at;
            }
            self.tick();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::isa::{AluKind, Inst, Op, Operand, Reg};

    fn counting_loop(iters: u64) -> Program {
        // r1 = iters; loop { r1 -= 1 } while r1 != 0; halt
        Program::new(
            "count",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: iters }),
                Inst::new(Op::Alu {
                    kind: AluKind::Sub,
                    dst: Reg(1),
                    src: Reg(1),
                    op2: Operand::Imm(1),
                }),
                Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
                Inst::new(Op::Halt),
            ],
        )
    }

    #[test]
    fn dead_cycle_skip_matches_per_cycle_ticking() {
        // Two identical systems with a periodic flag writer; one runs via
        // run_cycles (bulk-skips dead cycles once the core halts), the
        // other ticks every cycle. All observable state must match.
        let build = || {
            let mut sys = System::new(SystemConfig::uipi(), vec![counting_loop(50)]);
            sys.add_device(Device::FlagWriter {
                period: 700,
                next_fire: 100,
                addr: 0xA000,
                value: 1,
            });
            sys
        };
        let mut fast = build();
        let mut slow = build();
        fast.run_cycles(10_000);
        for _ in 0..10_000 {
            slow.tick();
        }
        assert_eq!(fast.now(), slow.now());
        assert_eq!(fast.mem.peek(0xA000), slow.mem.peek(0xA000));
        assert_eq!(
            fast.cores[0].stats.committed_insts,
            slow.cores[0].stats.committed_insts
        );
        assert_eq!(
            fast.cores[0].stats.halted_at,
            slow.cores[0].stats.halted_at
        );
    }

    #[test]
    fn devices_fire_on_exact_cycles_across_bulk_skip() {
        // A flag writer with a long period: while the (quickly halted)
        // core sleeps, the writer must still fire exactly at its period
        // boundaries, observable right after run_cycles crosses each.
        let mut sys = System::new(SystemConfig::uipi(), vec![counting_loop(1)]);
        sys.add_device(Device::FlagWriter {
            period: 1_000_000,
            next_fire: 5_000,
            addr: 0xB000,
            value: 9,
        });
        sys.run_cycles(5_000); // clock at 5_000: fire cycle not yet ticked
        let before = sys.mem.peek(0xB000);
        sys.run_cycles(1); // executes cycle 5_000 → device fires
        assert_eq!(before, 0);
        assert_eq!(sys.mem.peek(0xB000), 9);
        // The next dead stretch is skipped in bulk, clock still exact.
        sys.run_cycles(3_000_000);
        assert_eq!(sys.now(), 3_005_001);
    }

    #[test]
    fn single_core_counting_loop_halts_with_correct_count() {
        let mut sys = System::new(SystemConfig::uipi(), vec![counting_loop(1000)]);
        let halted = sys.run_until_core_halted(0, 1_000_000);
        assert!(halted.is_some(), "loop must halt");
        assert_eq!(sys.cores[0].reg(Reg(1)), 0);
        // 1000 iterations × 2 insts + li + halt
        assert_eq!(sys.cores[0].stats.committed_insts, 2 + 2 * 1000);
    }

    #[test]
    fn dependent_chain_limits_ipc_to_one() {
        // A chain of dependent subs can commit at most 1 per cycle.
        let mut sys = System::new(SystemConfig::uipi(), vec![counting_loop(5000)]);
        let halted = sys.run_until_core_halted(0, 1_000_000).expect("halts");
        let insts = sys.cores[0].stats.committed_insts;
        let ipc = insts as f64 / halted as f64;
        // The sub chain serializes; branch executes in parallel → IPC ≲ 2.
        assert!(ipc <= 2.2, "ipc={ipc}");
        assert!(ipc > 0.5, "ipc={ipc}");
    }

    #[test]
    fn store_then_load_round_trips_through_memory() {
        let prog = Program::new(
            "st-ld",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: 0x9000 }),
                Inst::new(Op::Li { dst: Reg(2), imm: 77 }),
                Inst::new(Op::Store { src: Reg(2), base: Reg(1), offset: 0 }),
                Inst::new(Op::Halt),
            ],
        );
        let mut sys = System::new(SystemConfig::uipi(), vec![prog]);
        sys.run_until_core_halted(0, 100_000).expect("halts");
        assert_eq!(sys.mem.peek(0x9000), 77);
    }

    #[test]
    fn pointer_chase_follows_values() {
        // mem[0x8000] = 0x8040, mem[0x8040] = 0x8080; two chained loads.
        let prog = Program::new(
            "chase",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: 0x8000 }),
                Inst::new(Op::Load { dst: Reg(1), base: Reg(1), offset: 0 }),
                Inst::new(Op::Load { dst: Reg(1), base: Reg(1), offset: 0 }),
                Inst::new(Op::Halt),
            ],
        );
        let mut sys = System::new(SystemConfig::uipi(), vec![prog]);
        sys.mem.poke(0x8000, 0x8040);
        sys.mem.poke(0x8040, 0x8080);
        sys.run_until_core_halted(0, 100_000).expect("halts");
        assert_eq!(sys.cores[0].reg(Reg(1)), 0x8080);
    }

    #[test]
    fn branch_mispredicts_are_recovered_correctly() {
        // Alternating taken/not-taken pattern confuses the predictor but
        // execution must stay architecturally correct: count 100
        // iterations where we take a branch every other iteration.
        // r1: counter down from 200; r2: accumulator of r1&1.
        let prog = Program::new(
            "alt",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: 200 }),
                Inst::new(Op::Li { dst: Reg(2), imm: 0 }),
                // loop:
                Inst::new(Op::Alu { kind: AluKind::And, dst: Reg(3), src: Reg(1), op2: Operand::Imm(1) }),
                Inst::new(Op::Beqz { src: Reg(3), target: 5 }),
                Inst::new(Op::Alu { kind: AluKind::Add, dst: Reg(2), src: Reg(2), op2: Operand::Imm(1) }),
                // skip:
                Inst::new(Op::Alu { kind: AluKind::Sub, dst: Reg(1), src: Reg(1), op2: Operand::Imm(1) }),
                Inst::new(Op::Bnez { src: Reg(1), target: 2 }),
                Inst::new(Op::Halt),
            ],
        );
        let mut sys = System::new(SystemConfig::uipi(), vec![prog]);
        sys.run_until_core_halted(0, 1_000_000).expect("halts");
        assert_eq!(sys.cores[0].reg(Reg(2)), 100, "odd iterations counted");
        assert!(sys.cores[0].stats.mispredict_recoveries > 0);
        assert!(sys.cores[0].stats.squashed_uops > 0);
    }
}
