//! # xui-sim
//!
//! A cycle-level, multi-core, out-of-order pipeline simulator purpose-built
//! to reproduce the microarchitectural results of *"Extended User
//! Interrupts (xUI)"* (ASPLOS '25): the cost anatomy of Intel UIPI (§3),
//! and the xUI mechanisms — **tracked interrupts** (§4.2), **hardware
//! safepoints** (§4.4), the **KB_Timer** (§4.3) and **interrupt
//! forwarding** fast-path delivery (§4.5).
//!
//! The model implements the phenomena the paper's numbers come from rather
//! than assuming them:
//!
//! - a Table 3 out-of-order backend (ROB/IQ/LQ/SQ, FU contention,
//!   squash-width-limited recovery) and a decoupled front-end with branch
//!   prediction and MSROM micro-sequencing;
//! - `senduipi` as a 57-µop MSROM routine with two serializing MSR writes
//!   (§3.5);
//! - three interrupt delivery strategies: **flush**, **drain**, and xUI
//!   **tracking** with re-injection after misprediction flushes;
//! - a MESI-lite memory system where UPID reads miss when a remote sender
//!   just posted — the shared-memory cost that the KB_Timer and interrupt
//!   forwarding avoid.
//!
//! See `xui-workloads` for the benchmark programs that run on this
//! simulator, and `xui-bench` for the figure/table regeneration binaries.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod config;
pub mod core;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod microcode;
pub mod system;
pub mod trace;

pub use config::{CoreConfig, DeliveryStrategy, InterferenceConfig, MemConfig, SystemConfig};
pub use core::{Core, CoreStats, IrqTiming, SimUittEntry};
pub use isa::{Inst, Op, Pc, Program, Reg};
pub use system::{Device, System};
