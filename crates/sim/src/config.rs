//! Core and system configuration (Table 3 of the paper).

use serde::{Deserialize, Serialize};

/// Interrupt-delivery strategy implemented by the pipeline front-end
/// (§3.5 "Interrupt handling strategy" and §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryStrategy {
    /// Squash every in-flight µop, then redirect fetch to the interrupt
    /// microcode — what Sapphire Rapids does (§3.5).
    Flush,
    /// Stop fetching, retire everything in flight, then redirect — the
    /// strategy stock gem5 implements (§5.2).
    Drain,
    /// xUI tracked interrupts: immediately inject the interrupt microcode
    /// into the µop stream without disturbing in-flight work, re-injecting
    /// if a misprediction flush claims it (§4.2).
    Tracked,
}

/// Microarchitectural parameters of one simulated core, defaulting to the
/// paper's Sapphire-Rapids-like gem5 configuration (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// µops fetched per cycle.
    pub fetch_width: usize,
    /// µops dispatched (renamed) per cycle.
    pub decode_width: usize,
    /// µops issued to functional units per cycle.
    pub issue_width: usize,
    /// µops retired per cycle.
    pub retire_width: usize,
    /// µops squashed per cycle during misprediction/flush recovery.
    pub squash_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Issue-queue capacity (µops dispatched but not yet issued).
    pub iq_size: usize,
    /// Load-queue capacity.
    pub lq_size: usize,
    /// Store-queue capacity.
    pub sq_size: usize,
    /// Integer ALUs.
    pub int_alu_units: usize,
    /// Integer multipliers.
    pub int_mult_units: usize,
    /// FP ALU/MUL units.
    pub fp_units: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// Front-end depth: cycles from fetch to dispatch-ready (pipeline
    /// refill latency after a redirect).
    pub frontend_depth: u64,
    /// Capacity of the fetch/decode queue between the front-end and
    /// dispatch (the IDQ); fetch stalls when it is full.
    pub fetch_queue_size: usize,
    /// Extra cycles to enter an MSROM microcode routine (micro-sequencer
    /// startup); charged on redirects into microcode.
    pub msrom_entry_latency: u64,
    /// Additional microcode-assist startup charged when an interrupt is
    /// delivered by *flushing*: the pipeline-flush + refill anatomy of
    /// Fig 2 (~424 cycles total) that tracking eliminates (§4.2).
    pub flush_assist_latency: u64,
    /// Extra fixed stall after a *drain*-style delivery. Zero in the
    /// paper's corrected model; stock gem5 "artificially added" 13
    /// cycles after each drain (§5.2), reproduced by
    /// [`SystemConfig::gem5_stock`].
    pub drain_extra_penalty: u64,
    /// Latency of a serializing MSR write (e.g. to the ICR inside
    /// `senduipi`); such µops also wait until they reach the ROB head.
    pub msr_write_latency: u64,
    /// Latency of the `stui` µop (Table 2: 32 cycles).
    pub stui_latency: u64,
    /// Latency of the `clui` µop (Table 2: 2 cycles).
    pub clui_latency: u64,
    /// Latency of the `uiret` µop (Fig 2: 10 cycles).
    pub uiret_latency: u64,
    /// Integer multiply latency.
    pub mult_latency: u64,
    /// FP operation latency.
    pub fp_latency: u64,
}

impl CoreConfig {
    /// The paper's baseline x86 core (Table 3) with the microcode-latency
    /// knobs calibrated so the simulated UIPI costs match the paper's
    /// hardware characterization (§3.4, verified by
    /// `tests/calibration.rs`).
    #[must_use]
    pub fn sapphire_rapids_like() -> Self {
        Self {
            fetch_width: 6,
            decode_width: 6,
            issue_width: 10,
            retire_width: 10,
            squash_width: 10,
            rob_size: 384,
            iq_size: 168,
            lq_size: 128,
            sq_size: 72,
            int_alu_units: 6,
            int_mult_units: 2,
            fp_units: 3,
            load_ports: 3,
            store_ports: 2,
            frontend_depth: 12,
            fetch_queue_size: 64,
            msrom_entry_latency: 26,
            flush_assist_latency: 350,
            drain_extra_penalty: 0,
            msr_write_latency: 130,
            stui_latency: 32,
            clui_latency: 2,
            uiret_latency: 10,
            mult_latency: 3,
            fp_latency: 4,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::sapphire_rapids_like()
    }
}

/// Memory-hierarchy latencies and geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1D hit latency.
    pub l1_latency: u64,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// Shared LLC hit latency.
    pub llc_latency: u64,
    /// DRAM latency (first touch / LLC miss).
    pub mem_latency: u64,
    /// Cache-to-cache transfer when another core holds the line modified
    /// (the cost of reading a remotely-updated UPID or poll flag).
    pub remote_latency: u64,
    /// L1D sets (64 B lines; 32 KB 8-way ⇒ 64 sets).
    pub l1_sets: usize,
    /// L1D ways.
    pub l1_ways: usize,
    /// L2 sets (1 MB 16-way ⇒ 1024 sets).
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
}

impl MemConfig {
    /// Sapphire-Rapids-like hierarchy at the paper's 2 GHz clock.
    #[must_use]
    pub fn sapphire_rapids_like() -> Self {
        Self {
            l1_latency: 4,
            l2_latency: 14,
            llc_latency: 50,
            mem_latency: 200,
            remote_latency: 110,
            l1_sets: 64,
            l1_ways: 8,
            l2_sets: 1024,
            l2_ways: 16,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::sapphire_rapids_like()
    }
}

/// Whole-system configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Per-core pipeline parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Interrupt-delivery strategy for every core.
    pub strategy: DeliveryStrategyConfig,
    /// APIC-to-APIC IPI transit latency over the system bus (calibrated
    /// so `senduipi`-to-receiver-interrupt ≈ 380 cycles, Fig 2).
    pub ipi_bus_latency: u64,
}

/// Strategy selection wrapper with a serde-friendly default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryStrategyConfig(pub DeliveryStrategy);

impl Default for DeliveryStrategyConfig {
    fn default() -> Self {
        Self(DeliveryStrategy::Flush)
    }
}

impl SystemConfig {
    /// Baseline UIPI system: flush delivery, Table 3 core.
    #[must_use]
    pub fn uipi() -> Self {
        Self {
            core: CoreConfig::sapphire_rapids_like(),
            mem: MemConfig::sapphire_rapids_like(),
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Flush),
            ipi_bus_latency: 240,
        }
    }

    /// xUI system: tracked delivery, same core.
    #[must_use]
    pub fn xui() -> Self {
        Self {
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Tracked),
            ..Self::uipi()
        }
    }

    /// Drain-style delivery (the corrected model), for the §5.2
    /// comparison.
    #[must_use]
    pub fn drain() -> Self {
        Self {
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Drain),
            ..Self::uipi()
        }
    }

    /// Stock gem5's interrupt model as the paper found it (§5.2): drain
    /// the pipeline, then "a fixed 13 cycles was artificially added
    /// after each drain".
    #[must_use]
    pub fn gem5_stock() -> Self {
        let mut cfg = Self::drain();
        cfg.core.drain_extra_penalty = 13;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters() {
        let c = CoreConfig::sapphire_rapids_like();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.issue_width, 10);
        assert_eq!(c.retire_width, 10);
        assert_eq!(c.squash_width, 10);
        assert_eq!(c.rob_size, 384);
        assert_eq!(c.iq_size, 168);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.int_alu_units, 6);
        assert_eq!(c.int_mult_units, 2);
        assert_eq!(c.fp_units, 3);
    }

    #[test]
    fn presets_differ_only_in_strategy() {
        let uipi = SystemConfig::uipi();
        let xui = SystemConfig::xui();
        assert_eq!(uipi.core, xui.core);
        assert_eq!(uipi.strategy.0, DeliveryStrategy::Flush);
        assert_eq!(xui.strategy.0, DeliveryStrategy::Tracked);
        assert_eq!(SystemConfig::drain().strategy.0, DeliveryStrategy::Drain);
    }
}
