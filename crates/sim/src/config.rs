//! Core and system configuration (Table 3 of the paper).

use serde::{Deserialize, Serialize};

/// Interrupt-delivery strategy implemented by the pipeline front-end
/// (§3.5 "Interrupt handling strategy" and §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryStrategy {
    /// Squash every in-flight µop, then redirect fetch to the interrupt
    /// microcode — what Sapphire Rapids does (§3.5).
    Flush,
    /// Stop fetching, retire everything in flight, then redirect — the
    /// strategy stock gem5 implements (§5.2).
    Drain,
    /// xUI tracked interrupts: immediately inject the interrupt microcode
    /// into the µop stream without disturbing in-flight work, re-injecting
    /// if a misprediction flush claims it (§4.2).
    Tracked,
}

/// Delivery-path interference multipliers, modelling co-located bulk
/// tenants polluting the caches and contending for the front-end of the
/// victim's core. Both default to zero (no interference), so every
/// baseline configuration and golden is unchanged; the worst-case
/// scenario band (`wc_*` presets) sweeps them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceConfig {
    /// Cache interference: percent inflation of the refill-dominated
    /// delivery costs (the handler's working set was evicted by the
    /// interferers), applied to the flush-assist startup and the IPI
    /// bus transit (coherence traffic).
    pub cache_pct: u64,
    /// Pipeline interference: percent inflation of the micro-sequencer
    /// and redirect costs (front-end contention), applied to MSROM
    /// entry, the flush assist, and the post-drain stall.
    pub pipeline_pct: u64,
}

/// `base` inflated by `pct` percent, in integer arithmetic (exact
/// identity at `pct == 0`).
#[must_use]
pub fn scale_pct(base: u64, pct: u64) -> u64 {
    base + base * pct / 100
}

/// Microarchitectural parameters of one simulated core, defaulting to the
/// paper's Sapphire-Rapids-like gem5 configuration (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// µops fetched per cycle.
    pub fetch_width: usize,
    /// µops dispatched (renamed) per cycle.
    pub decode_width: usize,
    /// µops issued to functional units per cycle.
    pub issue_width: usize,
    /// µops retired per cycle.
    pub retire_width: usize,
    /// µops squashed per cycle during misprediction/flush recovery.
    pub squash_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Issue-queue capacity (µops dispatched but not yet issued).
    pub iq_size: usize,
    /// Load-queue capacity.
    pub lq_size: usize,
    /// Store-queue capacity.
    pub sq_size: usize,
    /// Integer ALUs.
    pub int_alu_units: usize,
    /// Integer multipliers.
    pub int_mult_units: usize,
    /// FP ALU/MUL units.
    pub fp_units: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// Front-end depth: cycles from fetch to dispatch-ready (pipeline
    /// refill latency after a redirect).
    pub frontend_depth: u64,
    /// Capacity of the fetch/decode queue between the front-end and
    /// dispatch (the IDQ); fetch stalls when it is full.
    pub fetch_queue_size: usize,
    /// Extra cycles to enter an MSROM microcode routine (micro-sequencer
    /// startup); charged on redirects into microcode.
    pub msrom_entry_latency: u64,
    /// Additional microcode-assist startup charged when an interrupt is
    /// delivered by *flushing*: the pipeline-flush + refill anatomy of
    /// Fig 2 (~424 cycles total) that tracking eliminates (§4.2).
    pub flush_assist_latency: u64,
    /// Extra fixed stall after a *drain*-style delivery. Zero in the
    /// paper's corrected model; stock gem5 "artificially added" 13
    /// cycles after each drain (§5.2), reproduced by
    /// [`SystemConfig::gem5_stock`].
    pub drain_extra_penalty: u64,
    /// Latency of a serializing MSR write (e.g. to the ICR inside
    /// `senduipi`); such µops also wait until they reach the ROB head.
    pub msr_write_latency: u64,
    /// Latency of the `stui` µop (Table 2: 32 cycles).
    pub stui_latency: u64,
    /// Latency of the `clui` µop (Table 2: 2 cycles).
    pub clui_latency: u64,
    /// Latency of the `uiret` µop (Fig 2: 10 cycles).
    pub uiret_latency: u64,
    /// Integer multiply latency.
    pub mult_latency: u64,
    /// FP operation latency.
    pub fp_latency: u64,
    /// Delivery-path interference multipliers (zero by default).
    pub interference: InterferenceConfig,
}

impl CoreConfig {
    /// The paper's baseline x86 core (Table 3) with the microcode-latency
    /// knobs calibrated so the simulated UIPI costs match the paper's
    /// hardware characterization (§3.4, verified by
    /// `tests/calibration.rs`).
    #[must_use]
    pub fn sapphire_rapids_like() -> Self {
        Self {
            fetch_width: 6,
            decode_width: 6,
            issue_width: 10,
            retire_width: 10,
            squash_width: 10,
            rob_size: 384,
            iq_size: 168,
            lq_size: 128,
            sq_size: 72,
            int_alu_units: 6,
            int_mult_units: 2,
            fp_units: 3,
            load_ports: 3,
            store_ports: 2,
            frontend_depth: 12,
            fetch_queue_size: 64,
            msrom_entry_latency: 26,
            flush_assist_latency: 350,
            drain_extra_penalty: 0,
            msr_write_latency: 130,
            stui_latency: 32,
            clui_latency: 2,
            uiret_latency: 10,
            mult_latency: 3,
            fp_latency: 4,
            interference: InterferenceConfig::default(),
        }
    }

    /// MSROM entry cost with pipeline interference applied.
    #[must_use]
    pub fn delivery_msrom_latency(&self) -> u64 {
        scale_pct(self.msrom_entry_latency, self.interference.pipeline_pct)
    }

    /// Flush-assist startup cost with cache + pipeline interference
    /// applied (the assist both refetches and refills).
    #[must_use]
    pub fn delivery_flush_latency(&self) -> u64 {
        scale_pct(
            self.flush_assist_latency,
            self.interference.cache_pct + self.interference.pipeline_pct,
        )
    }

    /// Post-drain stall with pipeline interference applied.
    #[must_use]
    pub fn delivery_drain_penalty(&self) -> u64 {
        scale_pct(self.drain_extra_penalty, self.interference.pipeline_pct)
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::sapphire_rapids_like()
    }
}

/// Memory-hierarchy latencies and geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1D hit latency.
    pub l1_latency: u64,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// Shared LLC hit latency.
    pub llc_latency: u64,
    /// DRAM latency (first touch / LLC miss).
    pub mem_latency: u64,
    /// Cache-to-cache transfer when another core holds the line modified
    /// (the cost of reading a remotely-updated UPID or poll flag).
    pub remote_latency: u64,
    /// L1D sets (64 B lines; 32 KB 8-way ⇒ 64 sets).
    pub l1_sets: usize,
    /// L1D ways.
    pub l1_ways: usize,
    /// L2 sets (1 MB 16-way ⇒ 1024 sets).
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
}

impl MemConfig {
    /// Sapphire-Rapids-like hierarchy at the paper's 2 GHz clock.
    #[must_use]
    pub fn sapphire_rapids_like() -> Self {
        Self {
            l1_latency: 4,
            l2_latency: 14,
            llc_latency: 50,
            mem_latency: 200,
            remote_latency: 110,
            l1_sets: 64,
            l1_ways: 8,
            l2_sets: 1024,
            l2_ways: 16,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::sapphire_rapids_like()
    }
}

/// Whole-system configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Per-core pipeline parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Interrupt-delivery strategy for every core.
    pub strategy: DeliveryStrategyConfig,
    /// APIC-to-APIC IPI transit latency over the system bus (calibrated
    /// so `senduipi`-to-receiver-interrupt ≈ 380 cycles, Fig 2).
    pub ipi_bus_latency: u64,
}

/// Strategy selection wrapper with a serde-friendly default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryStrategyConfig(pub DeliveryStrategy);

impl Default for DeliveryStrategyConfig {
    fn default() -> Self {
        Self(DeliveryStrategy::Flush)
    }
}

impl SystemConfig {
    /// Baseline UIPI system: flush delivery, Table 3 core.
    #[must_use]
    pub fn uipi() -> Self {
        Self {
            core: CoreConfig::sapphire_rapids_like(),
            mem: MemConfig::sapphire_rapids_like(),
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Flush),
            ipi_bus_latency: 240,
        }
    }

    /// xUI system: tracked delivery, same core.
    #[must_use]
    pub fn xui() -> Self {
        Self {
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Tracked),
            ..Self::uipi()
        }
    }

    /// Drain-style delivery (the corrected model), for the §5.2
    /// comparison.
    #[must_use]
    pub fn drain() -> Self {
        Self {
            strategy: DeliveryStrategyConfig(DeliveryStrategy::Drain),
            ..Self::uipi()
        }
    }

    /// Stock gem5's interrupt model as the paper found it (§5.2): drain
    /// the pipeline, then "a fixed 13 cycles was artificially added
    /// after each drain".
    #[must_use]
    pub fn gem5_stock() -> Self {
        let mut cfg = Self::drain();
        cfg.core.drain_extra_penalty = 13;
        cfg
    }

    /// IPI bus transit with cache interference applied (coherence
    /// traffic from the interferers contends for the same fabric).
    #[must_use]
    pub fn delivery_ipi_latency(&self) -> u64 {
        scale_pct(self.ipi_bus_latency, self.core.interference.cache_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters() {
        let c = CoreConfig::sapphire_rapids_like();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.issue_width, 10);
        assert_eq!(c.retire_width, 10);
        assert_eq!(c.squash_width, 10);
        assert_eq!(c.rob_size, 384);
        assert_eq!(c.iq_size, 168);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.int_alu_units, 6);
        assert_eq!(c.int_mult_units, 2);
        assert_eq!(c.fp_units, 3);
    }

    #[test]
    fn presets_differ_only_in_strategy() {
        let uipi = SystemConfig::uipi();
        let xui = SystemConfig::xui();
        assert_eq!(uipi.core, xui.core);
        assert_eq!(uipi.strategy.0, DeliveryStrategy::Flush);
        assert_eq!(xui.strategy.0, DeliveryStrategy::Tracked);
        assert_eq!(SystemConfig::drain().strategy.0, DeliveryStrategy::Drain);
    }

    #[test]
    fn zero_interference_leaves_delivery_costs_identical() {
        let sys = SystemConfig::uipi();
        let c = &sys.core;
        assert_eq!(c.interference, InterferenceConfig::default());
        assert_eq!(c.delivery_msrom_latency(), c.msrom_entry_latency);
        assert_eq!(c.delivery_flush_latency(), c.flush_assist_latency);
        assert_eq!(c.delivery_drain_penalty(), c.drain_extra_penalty);
        assert_eq!(sys.delivery_ipi_latency(), sys.ipi_bus_latency);
    }

    #[test]
    fn interference_inflates_delivery_costs_by_percent() {
        let mut sys = SystemConfig::gem5_stock();
        sys.core.interference = InterferenceConfig { cache_pct: 50, pipeline_pct: 100 };
        assert_eq!(sys.core.delivery_msrom_latency(), 52); // 26 × 2
        assert_eq!(sys.core.delivery_flush_latency(), 350 + 350 * 150 / 100);
        assert_eq!(sys.core.delivery_drain_penalty(), 26); // 13 × 2
        assert_eq!(sys.delivery_ipi_latency(), 360); // 240 × 1.5
        assert_eq!(scale_pct(0, 100), 0);
        assert_eq!(scale_pct(100, 0), 100);
        assert_eq!(scale_pct(100, 37), 137);
    }
}
