//! Per-event tracing, used to reconstruct the Figure 2 latency timeline.

use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// `senduipi` retired on the sender (time 0 of Fig 2).
    SendUipiStart,
    /// The serializing ICR write executed (the IPI leaves the sender).
    IcrWrite,
    /// A UPID was posted into by sender microcode.
    UpidPosted,
    /// The notification IPI arrived at the receiver's APIC.
    IpiArrive,
    /// The receiver accepted the interrupt (program flow interrupted).
    IrqAccepted,
    /// Interrupt microcode was injected into the µop stream.
    IrqInjected,
    /// Notification processing drained the UPID (ON cleared).
    UpidDrained,
    /// The handler was entered (delivery complete).
    HandlerEntered,
    /// `uiret` committed (handler done).
    UiretCommitted,
    /// The KB_Timer fired.
    KbTimerFired,
    /// A branch misprediction was detected at execute.
    MispredictDetected,
    /// Misprediction recovery completed (squash + redirect).
    MispredictRecovered,
    /// A safepoint instruction gated a pending interrupt (§4.4).
    SafepointHit,
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle of occurrence.
    pub cycle: u64,
    /// Core that produced the event.
    pub core: usize,
    /// Event kind.
    pub kind: TraceKind,
}

/// Finds the first event of `kind` at or after `from`, returning its
/// cycle.
#[must_use]
pub fn first_at_or_after(events: &[TraceEvent], kind: TraceKind, from: u64) -> Option<u64> {
    events
        .iter()
        .find(|e| e.kind == kind && e.cycle >= from)
        .map(|e| e.cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_at_or_after_filters() {
        let events = vec![
            TraceEvent { cycle: 5, core: 0, kind: TraceKind::SendUipiStart },
            TraceEvent { cycle: 9, core: 0, kind: TraceKind::IpiArrive },
            TraceEvent { cycle: 12, core: 0, kind: TraceKind::SendUipiStart },
        ];
        assert_eq!(
            first_at_or_after(&events, TraceKind::SendUipiStart, 0),
            Some(5)
        );
        assert_eq!(
            first_at_or_after(&events, TraceKind::SendUipiStart, 6),
            Some(12)
        );
        assert_eq!(first_at_or_after(&events, TraceKind::UpidDrained, 0), None);
    }
}
