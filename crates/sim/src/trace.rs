//! Per-event tracing, used to reconstruct the Figure 2 latency timeline.
//!
//! [`TraceEvent`] is the pipeline simulator's native record — cheap,
//! `Copy`, recorded inline by the cores. The telemetry bridge
//! ([`to_telemetry`] / `From<TraceEvent> for xui_telemetry::Event`) maps
//! these onto the workspace-wide structured event model: handler
//! execution and misprediction recovery become *spans* (their entry/exit
//! kinds open and close a named region), everything else becomes an
//! instant. Figure reconstruction keeps using the native records; the
//! `--trace` export path goes through the bridge.

use serde::{Deserialize, Serialize};
use xui_telemetry::Event;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// `senduipi` retired on the sender (time 0 of Fig 2).
    SendUipiStart,
    /// The serializing ICR write executed (the IPI leaves the sender).
    IcrWrite,
    /// A UPID was posted into by sender microcode.
    UpidPosted,
    /// The notification IPI arrived at the receiver's APIC.
    IpiArrive,
    /// The receiver accepted the interrupt (program flow interrupted).
    IrqAccepted,
    /// Interrupt microcode was injected into the µop stream.
    IrqInjected,
    /// Notification processing drained the UPID (ON cleared).
    UpidDrained,
    /// The handler was entered (delivery complete).
    HandlerEntered,
    /// `uiret` committed (handler done).
    UiretCommitted,
    /// The KB_Timer fired.
    KbTimerFired,
    /// A branch misprediction was detected at execute.
    MispredictDetected,
    /// Misprediction recovery completed (squash + redirect).
    MispredictRecovered,
    /// A safepoint instruction gated a pending interrupt (§4.4).
    SafepointHit,
}

impl TraceKind {
    /// The stable snake_case name this kind exports under (instants use
    /// it directly; span kinds share their region's name — see
    /// [`TraceKind::span_role`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SendUipiStart => "senduipi",
            Self::IcrWrite => "icr_write",
            Self::UpidPosted => "upid_posted",
            Self::IpiArrive => "ipi_arrive",
            Self::IrqAccepted => "irq_accepted",
            Self::IrqInjected => "irq_injected",
            Self::UpidDrained => "upid_drained",
            Self::HandlerEntered | Self::UiretCommitted => "uipi_handler",
            Self::KbTimerFired => "kb_timer_fired",
            Self::MispredictDetected | Self::MispredictRecovered => "mispredict_recovery",
            Self::SafepointHit => "safepoint_hit",
        }
    }

    /// Whether this kind opens (+1) or closes (-1) a span, or is a point
    /// event (0). Handler entry/exit and mispredict detect/recover are
    /// the two durations Figure 2 cares about, so they export as spans.
    #[must_use]
    pub fn span_role(self) -> i8 {
        match self {
            Self::HandlerEntered | Self::MispredictDetected => 1,
            Self::UiretCommitted | Self::MispredictRecovered => -1,
            _ => 0,
        }
    }
}

impl From<TraceEvent> for Event {
    fn from(e: TraceEvent) -> Self {
        let core = u32::try_from(e.core).unwrap_or(u32::MAX);
        match e.kind.span_role() {
            1 => Event::begin(e.cycle, core, e.kind.name()),
            -1 => Event::end(e.cycle, core, e.kind.name()),
            _ => Event::instant(e.cycle, core, e.kind.name()),
        }
    }
}

/// Converts native pipeline trace events to telemetry events, preserving
/// order.
#[must_use]
pub fn to_telemetry(events: &[TraceEvent]) -> Vec<Event> {
    events.iter().copied().map(Event::from).collect()
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle of occurrence.
    pub cycle: u64,
    /// Core that produced the event.
    pub core: usize,
    /// Event kind.
    pub kind: TraceKind,
}

/// Finds the first event of `kind` at or after `from`, returning its
/// cycle. **Ignores which core produced the event** — correct only for
/// single-core traces; multi-core reconstruction must use
/// [`first_on_core_at_or_after`] or it will match a different core's
/// event of the same kind.
#[must_use]
pub fn first_at_or_after(events: &[TraceEvent], kind: TraceKind, from: u64) -> Option<u64> {
    events
        .iter()
        .find(|e| e.kind == kind && e.cycle >= from)
        .map(|e| e.cycle)
}

/// Finds the first event of `kind` **on `core`** at or after `from`,
/// returning its cycle. This is the core-aware variant figure
/// reconstruction uses on merged multi-core traces.
#[must_use]
pub fn first_on_core_at_or_after(
    events: &[TraceEvent],
    core: usize,
    kind: TraceKind,
    from: u64,
) -> Option<u64> {
    events
        .iter()
        .find(|e| e.core == core && e.kind == kind && e.cycle >= from)
        .map(|e| e.cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_at_or_after_filters() {
        let events = vec![
            TraceEvent { cycle: 5, core: 0, kind: TraceKind::SendUipiStart },
            TraceEvent { cycle: 9, core: 0, kind: TraceKind::IpiArrive },
            TraceEvent { cycle: 12, core: 0, kind: TraceKind::SendUipiStart },
        ];
        assert_eq!(
            first_at_or_after(&events, TraceKind::SendUipiStart, 0),
            Some(5)
        );
        assert_eq!(
            first_at_or_after(&events, TraceKind::SendUipiStart, 6),
            Some(12)
        );
        assert_eq!(first_at_or_after(&events, TraceKind::UpidDrained, 0), None);
    }

    #[test]
    fn first_on_core_filters_by_core() {
        // Regression for the core-blind lookup: the same kind fires on
        // core 1 *before* core 0, and the core-aware variant must not
        // return the other core's cycle.
        let events = vec![
            TraceEvent { cycle: 3, core: 1, kind: TraceKind::IpiArrive },
            TraceEvent { cycle: 8, core: 0, kind: TraceKind::IpiArrive },
            TraceEvent { cycle: 15, core: 1, kind: TraceKind::IpiArrive },
        ];
        assert_eq!(
            first_at_or_after(&events, TraceKind::IpiArrive, 0),
            Some(3),
            "core-blind lookup matches core 1's earlier event"
        );
        assert_eq!(
            first_on_core_at_or_after(&events, 0, TraceKind::IpiArrive, 0),
            Some(8)
        );
        assert_eq!(
            first_on_core_at_or_after(&events, 1, TraceKind::IpiArrive, 4),
            Some(15)
        );
        assert_eq!(
            first_on_core_at_or_after(&events, 2, TraceKind::IpiArrive, 0),
            None
        );
    }

    #[test]
    fn telemetry_bridge_maps_spans_and_instants() {
        let events = vec![
            TraceEvent { cycle: 10, core: 1, kind: TraceKind::HandlerEntered },
            TraceEvent { cycle: 14, core: 1, kind: TraceKind::SafepointHit },
            TraceEvent { cycle: 30, core: 1, kind: TraceKind::UiretCommitted },
        ];
        let tel = to_telemetry(&events);
        assert_eq!(tel.len(), 3);
        assert_eq!(tel[0], Event::begin(10, 1, "uipi_handler"));
        assert_eq!(tel[1], Event::instant(14, 1, "safepoint_hit"));
        assert_eq!(tel[2], Event::end(30, 1, "uipi_handler"));
        // The bridged stream exports to a balanced Chrome trace.
        let doc = xui_telemetry::chrome::trace_json(&tel);
        let check = xui_telemetry::chrome::validate(&doc).expect("valid");
        assert_eq!(check.span_pairs, 1);
        assert_eq!(check.instants, 1);
    }

    #[test]
    fn every_kind_has_a_name_and_spans_pair_up() {
        let kinds = [
            TraceKind::SendUipiStart,
            TraceKind::IcrWrite,
            TraceKind::UpidPosted,
            TraceKind::IpiArrive,
            TraceKind::IrqAccepted,
            TraceKind::IrqInjected,
            TraceKind::UpidDrained,
            TraceKind::HandlerEntered,
            TraceKind::UiretCommitted,
            TraceKind::KbTimerFired,
            TraceKind::MispredictDetected,
            TraceKind::MispredictRecovered,
            TraceKind::SafepointHit,
        ];
        for kind in kinds {
            assert!(!kind.name().is_empty());
            assert!(kind.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        // Each span opener shares its name with exactly one closer.
        for (open, close) in [
            (TraceKind::HandlerEntered, TraceKind::UiretCommitted),
            (TraceKind::MispredictDetected, TraceKind::MispredictRecovered),
        ] {
            assert_eq!(open.span_role(), 1);
            assert_eq!(close.span_role(), -1);
            assert_eq!(open.name(), close.name());
        }
    }
}
