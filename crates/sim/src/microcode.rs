//! The micro-sequencer ROM (MSROM) and its routines.
//!
//! §3.5 established that `senduipi` is implemented as 57 MSROM µops with
//! two serializing MSR writes, and that receiving a UIPI runs two microcode
//! procedures: *notification processing* (drain the UPID) and *user
//! interrupt delivery* (push the frame, clear UIF, jump to the handler).
//! xUI's KB_Timer and forwarded device interrupts skip notification
//! processing entirely and start at delivery (§4.3), which is the
//! difference between the 231- and 105-cycle receiver costs.

use serde::{Deserialize, Serialize};

/// A microcode operation. These are decoded by the front-end exactly like
/// program instructions but live in the MSROM address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOp {
    /// Plain micro-sequencing work: an int-ALU-class µop with the given
    /// latency and no architectural effect.
    Seq {
        /// Execution latency in cycles.
        latency: u16,
    },
    /// Non-serializing MSR read/write (UINT handler pointer, UIRR
    /// updates, …).
    MsrAccess {
        /// Execution latency in cycles.
        latency: u16,
    },
    /// `senduipi` step: load the UITT entry named by the current MSROM
    /// call argument (a normal cached load).
    UittLoad,
    /// `senduipi` step: locked RMW on the destination UPID — set the PIR
    /// bit, and if `!SN && !ON` set `ON` and flag that an IPI is needed.
    /// Issues only at the ROB head (locked semantics).
    UpidPost,
    /// `senduipi` step: serializing write to the ICR; puts the IPI on the
    /// bus if `UpidPost` flagged one.
    IcrWrite,
    /// Notification processing: locked RMW on *this thread's* UPID —
    /// clear `ON`, drain `PIR` into `UIRR`. The load typically misses
    /// because a sender just wrote the line.
    UpidDrain,
    /// Delivery: take the highest pending vector from `UIRR` into a
    /// scratch register.
    DeliverTake,
    /// Delivery: push the interrupted stack pointer (a store whose data
    /// *and* address depend on `SP` — the §6.1 pathology).
    PushSp,
    /// Delivery: push the return PC (known at injection time).
    PushPc,
    /// Delivery: push the delivered vector (depends on `DeliverTake`).
    PushVec,
    /// Delivery: clear UIF so the handler runs with user interrupts
    /// masked.
    DeliverClui,
    /// Delivery: jump to the registered handler. Its commit marks
    /// "interrupt delivered" in the statistics.
    JumpHandler,
    /// Return from an MSROM call (used by the `senduipi` routine) to the
    /// saved program PC.
    MsromRet,
}

/// A routine's location in the MSROM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routine {
    /// Index of the first µop.
    pub start: usize,
    /// Number of µops.
    pub len: usize,
}

/// The MSROM contents and routine directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Msrom {
    code: Vec<MicroOp>,
    /// `senduipi`: UITT lookup, UPID post, ICR writes (§3.3 steps 1–2).
    pub senduipi: Routine,
    /// UIPI reception: notification processing then delivery (steps 4–5).
    pub notif_deliver: Routine,
    /// xUI KB_Timer / forwarded-device reception: delivery only (§4.3).
    pub deliver_only: Routine,
}

impl Msrom {
    /// Builds the MSROM with the calibrated routine bodies.
    #[must_use]
    pub fn new() -> Self {
        let mut code = Vec::new();

        // --- senduipi: 57 µops per §3.5, two serializing MSR writes. ---
        let senduipi_start = code.len();
        code.push(MicroOp::UittLoad);
        code.push(MicroOp::UpidPost);
        // Descriptor checks, vector formatting, fault checks: the bulk of
        // the 57 µops observed through the MSROM delivery counter.
        for _ in 0..51 {
            code.push(MicroOp::Seq { latency: 1 });
        }
        code.push(MicroOp::MsrAccess { latency: 24 });
        code.push(MicroOp::IcrWrite); // serializing MSR write #1
        code.push(MicroOp::MsrAccess { latency: 24 });
        code.push(MicroOp::IcrWrite); // serializing MSR write #2
        code.push(MicroOp::MsromRet);
        let senduipi = Routine {
            start: senduipi_start,
            len: code.len() - senduipi_start,
        };

        // --- delivery (shared tail of both reception routines) ---
        let build_delivery = |code: &mut Vec<MicroOp>| {
            code.push(MicroOp::MsrAccess { latency: 32 }); // read UINT_Handler
            code.push(MicroOp::DeliverTake);
            code.push(MicroOp::Seq { latency: 8 }); // vector checks
            code.push(MicroOp::Seq { latency: 8 }); // frame formatting
            code.push(MicroOp::PushSp);
            code.push(MicroOp::PushPc);
            code.push(MicroOp::PushVec);
            code.push(MicroOp::DeliverClui);
            code.push(MicroOp::MsrAccess { latency: 32 }); // update UIRR MSR
            code.push(MicroOp::Seq { latency: 8 }); // UIF/state bookkeeping
            code.push(MicroOp::JumpHandler);
        };

        // --- notification processing + delivery (UIPI reception) ---
        let notif_start = code.len();
        code.push(MicroOp::Seq { latency: 1 }); // recognize UINV
        code.push(MicroOp::MsrAccess { latency: 10 }); // read UPID address MSR
        code.push(MicroOp::UpidDrain);
        code.push(MicroOp::Seq { latency: 1 });
        build_delivery(&mut code);
        let notif_deliver = Routine {
            start: notif_start,
            len: code.len() - notif_start,
        };

        // --- delivery only (KB_Timer / forwarded device fast path) ---
        let deliver_start = code.len();
        build_delivery(&mut code);
        let deliver_only = Routine {
            start: deliver_start,
            len: code.len() - deliver_start,
        };

        Self {
            code,
            senduipi,
            notif_deliver,
            deliver_only,
        }
    }

    /// µop at MSROM-relative index.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<MicroOp> {
        self.code.get(index).copied()
    }

    /// Total MSROM size in µops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the ROM is empty (never, in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

impl Default for Msrom {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn senduipi_is_57_uops_per_paper() {
        let rom = Msrom::new();
        // 57 MSROM µops per successful senduipi (§3.5) plus the routine
        // return.
        assert_eq!(rom.senduipi.len, 57 + 1);
        let ops: Vec<_> = (0..rom.senduipi.len)
            .map(|i| rom.get(rom.senduipi.start + i).unwrap())
            .collect();
        let icr_writes = ops.iter().filter(|o| **o == MicroOp::IcrWrite).count();
        assert_eq!(icr_writes, 2, "two serializing MSR writes per §3.5");
        assert_eq!(*ops.last().unwrap(), MicroOp::MsromRet);
        assert_eq!(ops[0], MicroOp::UittLoad);
        assert_eq!(ops[1], MicroOp::UpidPost);
    }

    #[test]
    fn reception_routines_share_delivery_shape() {
        let rom = Msrom::new();
        let notif: Vec<_> = (0..rom.notif_deliver.len)
            .map(|i| rom.get(rom.notif_deliver.start + i).unwrap())
            .collect();
        let deliver: Vec<_> = (0..rom.deliver_only.len)
            .map(|i| rom.get(rom.deliver_only.start + i).unwrap())
            .collect();
        assert!(notif.contains(&MicroOp::UpidDrain));
        assert!(
            !deliver.contains(&MicroOp::UpidDrain),
            "deliver-only path never touches the UPID (§4.3)"
        );
        // The delivery tail is identical.
        let tail = &notif[notif.len() - deliver.len()..];
        assert_eq!(tail, deliver.as_slice());
        assert_eq!(*deliver.last().unwrap(), MicroOp::JumpHandler);
    }

    #[test]
    fn routines_are_disjoint_and_in_bounds() {
        let rom = Msrom::new();
        for r in [rom.senduipi, rom.notif_deliver, rom.deliver_only] {
            assert!(r.start + r.len <= rom.len());
        }
        assert!(rom.senduipi.start + rom.senduipi.len <= rom.notif_deliver.start);
        assert!(
            rom.notif_deliver.start + rom.notif_deliver.len <= rom.deliver_only.start
        );
    }
}
