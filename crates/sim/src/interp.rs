//! A functional (golden-model) interpreter for the simulator ISA.
//!
//! Executes programs instruction-at-a-time with no timing, producing the
//! architectural register/memory state the out-of-order pipeline must
//! match. Used by the differential fuzz tests (`tests/differential.rs`)
//! to validate the pipeline's renaming, forwarding, speculation recovery
//! and interrupt machinery against a trivially-correct reference.

use std::collections::HashMap;

use crate::isa::{Op, Operand, Pc, Program, Reg, REG_COUNT};

/// The interpreter's architectural state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpState {
    /// Register file.
    pub regs: [u64; REG_COUNT],
    /// Sparse memory (word-addressed).
    pub mem: HashMap<u64, u64>,
    /// Committed instructions.
    pub insts: u64,
}

impl InterpState {
    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Reads memory (8-byte aligned word).
    #[must_use]
    pub fn load(&self, addr: u64) -> u64 {
        self.mem.get(&(addr & !7)).copied().unwrap_or(0)
    }
}

/// Why interpretation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A `Halt` instruction was reached.
    Halted,
    /// The PC left the program.
    OutOfRange,
    /// The step budget ran out (likely an infinite loop).
    Budget,
}

/// Runs `program` functionally for at most `max_steps` instructions.
///
/// Instructions with asynchronous semantics (`senduipi`, `uiret`, UIF and
/// timer manipulation) execute as no-ops — the golden model covers the
/// *program-visible* dataflow; interrupt semantics are validated
/// separately against the protocol model.
#[must_use]
pub fn interpret(program: &Program, init: InterpState, max_steps: u64) -> (InterpState, Stop) {
    let mut st = init;
    let mut pc: Pc = 0;
    for _ in 0..max_steps {
        let Some(inst) = program.get(pc) else {
            return (st, Stop::OutOfRange);
        };
        st.insts += 1;
        let value = |st: &InterpState, op2: Operand| match op2 {
            Operand::Reg(r) => st.reg(r),
            Operand::Imm(i) => i as u64,
        };
        match inst.op {
            Op::Nop | Op::Clui | Op::Stui | Op::SendUipi { .. } | Op::Uiret
            | Op::SetTimer { .. } | Op::ClearTimer => pc += 1,
            Op::Alu { kind, dst, src, op2 } => {
                st.regs[dst.index()] = kind.eval(st.reg(src), value(&st, op2));
                pc += 1;
            }
            Op::Li { dst, imm } => {
                st.regs[dst.index()] = imm;
                pc += 1;
            }
            Op::Mul { dst, src, op2 } => {
                st.regs[dst.index()] = st.reg(src).wrapping_add(value(&st, op2));
                pc += 1;
            }
            Op::Fp { dst, src, op2 } => {
                st.regs[dst.index()] = st.reg(src).wrapping_add(value(&st, op2));
                pc += 1;
            }
            Op::Load { dst, base, offset } => {
                let addr = st.reg(base).wrapping_add_signed(offset);
                st.regs[dst.index()] = st.load(addr);
                pc += 1;
            }
            Op::Store { src, base, offset } => {
                let addr = st.reg(base).wrapping_add_signed(offset);
                st.mem.insert(addr & !7, st.reg(src));
                pc += 1;
            }
            Op::Beqz { src, target } => {
                pc = if st.reg(src) == 0 { target } else { pc + 1 };
            }
            Op::Bnez { src, target } => {
                pc = if st.reg(src) != 0 { target } else { pc + 1 };
            }
            Op::Jmp { target } => pc = target,
            Op::Testui { dst } => {
                st.regs[dst.index()] = 1;
                pc += 1;
            }
            Op::Halt => return (st, Stop::Halted),
        }
    }
    (st, Stop::Budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluKind, Inst};

    #[test]
    fn interprets_a_counting_loop() {
        let p = Program::new(
            "loop",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: 10 }),
                Inst::new(Op::Alu {
                    kind: AluKind::Add,
                    dst: Reg(2),
                    src: Reg(2),
                    op2: Operand::Imm(3),
                }),
                Inst::new(Op::Alu {
                    kind: AluKind::Sub,
                    dst: Reg(1),
                    src: Reg(1),
                    op2: Operand::Imm(1),
                }),
                Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
                Inst::new(Op::Halt),
            ],
        );
        let (st, stop) = interpret(&p, InterpState::default(), 10_000);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(st.reg(Reg(2)), 30);
        assert_eq!(st.insts, 1 + 3 * 10 + 1);
    }

    #[test]
    fn store_load_round_trip() {
        let p = Program::new(
            "mem",
            vec![
                Inst::new(Op::Li { dst: Reg(1), imm: 0x1000 }),
                Inst::new(Op::Li { dst: Reg(2), imm: 99 }),
                Inst::new(Op::Store { src: Reg(2), base: Reg(1), offset: 8 }),
                Inst::new(Op::Load { dst: Reg(3), base: Reg(1), offset: 8 }),
                Inst::new(Op::Halt),
            ],
        );
        let (st, stop) = interpret(&p, InterpState::default(), 100);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(st.reg(Reg(3)), 99);
        assert_eq!(st.load(0x1008), 99);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = Program::new("spin", vec![Inst::new(Op::Jmp { target: 0 })]);
        let (_, stop) = interpret(&p, InterpState::default(), 50);
        assert_eq!(stop, Stop::Budget);
    }

    #[test]
    fn falling_off_the_end_is_reported() {
        let p = Program::new("fall", vec![Inst::new(Op::Nop)]);
        let (_, stop) = interpret(&p, InterpState::default(), 50);
        assert_eq!(stop, Stop::OutOfRange);
    }
}
