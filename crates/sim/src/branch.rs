//! A gshare-style branch direction predictor.
//!
//! Targets are static in this ISA, so only direction needs predicting.
//! Mispredictions cost a squash (bounded by squash width) plus a front-end
//! refill — the same machinery an interrupt flush uses, which is why the
//! paper notes both costs grow with future speculation windows (§2).

use serde::{Deserialize, Serialize};

use crate::isa::Pc;

const TABLE_BITS: usize = 12;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// Two-bit-counter gshare predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    history: u64,
    /// Predictions made.
    pub predictions: u64,
    /// Mispredictions detected at resolve.
    pub mispredictions: u64,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counters: vec![1; TABLE_SIZE],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(pc: Pc) -> usize {
        // Bimodal (per-PC) indexing. A global-history scheme would need
        // checkpoint/repair on every squash to avoid pathological
        // history corruption under deep speculation; per-PC counters
        // capture everything the paper's workloads need (well-predicted
        // loops, mispredicted poll-flag branches and loop exits).
        pc & (TABLE_SIZE - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: Pc) -> bool {
        self.predictions += 1;
        self.counters[Self::index(pc)] >= 2
    }

    /// Resolves a branch: trains the counter and counts mispredictions.
    pub fn resolve(&mut self, pc: Pc, taken: bool, predicted: bool) {
        let c = &mut self.counters[Self::index(pc)];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        if taken != predicted {
            self.mispredictions += 1;
        }
    }

    /// Misprediction rate so far (0.0 if no predictions).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_loop() {
        let mut bp = BranchPredictor::new();
        let mut wrong = 0;
        for _ in 0..100 {
            let p = bp.predict(0x40);
            if !p {
                wrong += 1;
            }
            bp.resolve(0x40, true, p);
        }
        assert!(wrong <= 8, "warmup only: {wrong} wrong");
        assert_eq!(bp.mispredictions, wrong);
    }

    #[test]
    fn loop_exit_mispredicts_once() {
        let mut bp = BranchPredictor::new();
        // Train taken, then a single not-taken exit.
        for _ in 0..50 {
            let p = bp.predict(0x80);
            bp.resolve(0x80, true, p);
        }
        let before = bp.mispredictions;
        let p = bp.predict(0x80);
        bp.resolve(0x80, false, p);
        assert!(p, "a trained loop branch predicts taken");
        assert_eq!(bp.mispredictions, before + 1);
    }

    #[test]
    fn miss_rate_reflects_counts() {
        let mut bp = BranchPredictor::new();
        assert_eq!(bp.miss_rate(), 0.0);
        for i in 0..10 {
            let p = bp.predict(i);
            bp.resolve(i, false, p);
        }
        assert!(bp.miss_rate() <= 1.0);
        assert_eq!(bp.predictions, 10);
    }
}
