//! The simulator's µop-level ISA.
//!
//! Programs are sequences of [`Inst`]ructions over a small RISC-like
//! register machine, extended with the paper's new instructions:
//! `senduipi`, `uiret`, `clui`/`stui`, `set_timer`/`clear_timer`, plus a
//! per-instruction *safepoint* marker bit (the paper encodes it as an x86
//! instruction prefix, §4.4).
//!
//! PCs are indices into a program; PCs at or above [`MSROM_BASE`] address
//! the microcode ROM instead (see [`crate::microcode`]).

use serde::{Deserialize, Serialize};

/// A program counter: an instruction index. Values ≥ [`MSROM_BASE`] index
/// the MSROM.
pub type Pc = usize;

/// PCs at or above this value live in the microcode ROM.
pub const MSROM_BASE: Pc = 1 << 20;

/// Number of architectural registers: `r0`–`r27` general purpose, plus
/// [`Reg::SP`] and microcode temporaries.
pub const REG_COUNT: usize = 32;

/// An architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The stack pointer — delivery microcode stores through it, which is
    /// what makes the §6.1 pathological case possible.
    pub const SP: Reg = Reg(28);
    /// Microcode scratch register 0.
    pub const UT0: Reg = Reg(29);
    /// Microcode scratch register 1.
    pub const UT1: Reg = Reg(30);
    /// Microcode scratch register 2.
    pub const UT2: Reg = Reg(31);

    /// Register index for table lookups.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Second ALU operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

/// Integer ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluKind {
    /// `dst = src + op2`
    Add,
    /// `dst = src - op2`
    Sub,
    /// `dst = src & op2`
    And,
    /// `dst = src | op2`
    Or,
    /// `dst = src ^ op2`
    Xor,
    /// `dst = src << (op2 & 63)`
    Shl,
    /// `dst = src >> (op2 & 63)`
    Shr,
}

impl AluKind {
    /// Evaluates the operation on concrete values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluKind::Add => a.wrapping_add(b),
            AluKind::Sub => a.wrapping_sub(b),
            AluKind::And => a & b,
            AluKind::Or => a | b,
            AluKind::Xor => a ^ b,
            AluKind::Shl => a.wrapping_shl((b & 63) as u32),
            AluKind::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// KB_Timer programming mode carried by [`Op::SetTimer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetTimerMode {
    /// Periodic with the given period in cycles.
    Periodic,
    /// One-shot firing when the core clock reaches the given deadline
    /// offset from now.
    OneShotIn,
}

/// Instruction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// No operation (1-cycle int ALU slot).
    Nop,
    /// Integer ALU: `dst = kind(src, op2)`.
    Alu {
        /// Operation.
        kind: AluKind,
        /// Destination register.
        dst: Reg,
        /// First source register.
        src: Reg,
        /// Second operand.
        op2: Operand,
    },
    /// Load immediate: `dst = imm`.
    Li {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Integer multiply: `dst = src * op2` (multi-cycle, mult unit).
    Mul {
        /// Destination register.
        dst: Reg,
        /// First source register.
        src: Reg,
        /// Second operand.
        op2: Operand,
    },
    /// Floating-point op (value-opaque; FP unit, multi-cycle):
    /// `dst = src ⊕ op2` computed as integer add so dataflow is preserved.
    Fp {
        /// Destination register.
        dst: Reg,
        /// First source register.
        src: Reg,
        /// Second operand.
        op2: Operand,
    },
    /// Load: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Store: `mem[base + offset] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Branch if `src == 0` to `target`.
    Beqz {
        /// Condition register.
        src: Reg,
        /// Branch target.
        target: Pc,
    },
    /// Branch if `src != 0` to `target`.
    Bnez {
        /// Condition register.
        src: Reg,
        /// Branch target.
        target: Pc,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: Pc,
    },
    /// `senduipi uitt[index]` — microcoded; the front-end calls into the
    /// MSROM routine (§3.5 found 57 MSROM µops per `senduipi`).
    SendUipi {
        /// UITT index operand.
        index: usize,
    },
    /// `uiret` — return from a user-interrupt handler.
    Uiret,
    /// `clui` — block user-interrupt delivery.
    Clui,
    /// `stui` — enable user-interrupt delivery.
    Stui,
    /// `testui` — read UIF into `dst` (0 or 1).
    Testui {
        /// Destination register.
        dst: Reg,
    },
    /// `set_timer(cycles, mode)` (§4.3), immediate-operand form.
    SetTimer {
        /// Period or relative deadline in cycles.
        cycles: u64,
        /// Periodic vs one-shot.
        mode: SetTimerMode,
    },
    /// `clear_timer()` (§4.3).
    ClearTimer,
    /// Stop the core (end of workload).
    Halt,
}

/// One instruction: an operation plus the xUI safepoint marker (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// True if this instruction carries the safepoint prefix.
    pub safepoint: bool,
}

impl Inst {
    /// An unmarked instruction.
    #[must_use]
    pub const fn new(op: Op) -> Self {
        Self {
            op,
            safepoint: false,
        }
    }

    /// A safepoint-marked instruction.
    #[must_use]
    pub const fn safepoint(op: Op) -> Self {
        Self {
            op,
            safepoint: true,
        }
    }

    /// True if the instruction ends an in-order fetch run (control flow or
    /// halt).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self.op,
            Op::Beqz { .. }
                | Op::Bnez { .. }
                | Op::Jmp { .. }
                | Op::Uiret
                | Op::SendUipi { .. }
                | Op::Halt
        )
    }
}

/// An executable program: named instruction memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Diagnostic name.
    pub name: String,
    /// Instruction memory; PC 0 is the entry point.
    pub code: Vec<Inst>,
}

impl Program {
    /// Creates a program from instructions.
    #[must_use]
    pub fn new(name: impl Into<String>, code: Vec<Inst>) -> Self {
        Self {
            name: name.into(),
            code,
        }
    }

    /// Instruction at `pc`, if in range.
    #[must_use]
    pub fn get(&self, pc: Pc) -> Option<&Inst> {
        self.code.get(pc)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// A program that halts immediately (an idle core).
    #[must_use]
    pub fn idle() -> Self {
        Self::new("idle", vec![Inst::new(Op::Halt)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_semantics() {
        assert_eq!(AluKind::Add.eval(2, 3), 5);
        assert_eq!(AluKind::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluKind::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluKind::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluKind::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluKind::Shl.eval(1, 65), 2, "shift counts are mod 64");
        assert_eq!(AluKind::Shr.eval(8, 2), 2);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::new(Op::Jmp { target: 0 }).is_control());
        assert!(Inst::new(Op::Halt).is_control());
        assert!(Inst::new(Op::Uiret).is_control());
        assert!(!Inst::new(Op::Nop).is_control());
        assert!(!Inst::new(Op::Clui).is_control());
    }

    #[test]
    fn safepoint_marker() {
        let plain = Inst::new(Op::Nop);
        let marked = Inst::safepoint(Op::Nop);
        assert!(!plain.safepoint);
        assert!(marked.safepoint);
        assert_eq!(plain.op, marked.op);
    }

    #[test]
    fn program_accessors() {
        let p = Program::new("t", vec![Inst::new(Op::Nop), Inst::new(Op::Halt)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get(1).unwrap().op, Op::Halt);
        assert!(p.get(2).is_none());
        assert_eq!(Program::idle().get(0).unwrap().op, Op::Halt);
    }

    #[test]
    fn msrom_base_clears_program_space() {
        const { assert!(MSROM_BASE > 1 << 16, "program space must fit below MSROM") }
    }
}
