//! Satellite: the SENDUIPI-racing-context-switch window (§3.3), checked
//! property-style against the kernel model.
//!
//! The window: a sender snapshots the UPID, posts PIR, and issues the
//! notification IPI — but between the post and the IPI the kernel sets
//! SN and rewrites NDST. The IPI then lands on a core that no longer
//! runs the receiver, leaving ON=1 *and* SN=1 with bits parked in PIR.
//! Correct behavior is self-healing: the next schedule-in clears ON/SN
//! and reposts PIR, so nothing is lost and nothing is delivered twice.
//!
//! The oracle models the window natively ([`Event::SendPreempted`]);
//! the untimed protocol/kernel models reach the same observable state
//! via deschedule-then-send (their `senduipi` is atomic — see
//! `docs/ORACLE.md`). The property: for *any* interleaving of racing
//! sends, plain sends, context switches and drains, all models agree on
//! the delivered log and the final descriptor state.

use proptest::prelude::*;

use xui_oracle::{check, Event, Oracle, Schedule};

/// Four fixed user-vector lanes, spread across the priority range.
const LANES: [u8; 4] = [3, 9, 17, 33];

fn schedule_from(steps: &[(u8, u8)]) -> Schedule {
    let events = steps
        .iter()
        .map(|&(code, lane)| {
            let uv = LANES[usize::from(lane) % LANES.len()];
            match code {
                0 | 1 => Event::SendPreempted { uv },
                2 => Event::Send { uv },
                3 => Event::Schedule { core: 1 },
                4 => Event::Deliver,
                _ => Event::Deschedule,
            }
        })
        .collect();
    Schedule {
        seed: 0,
        cores: 2,
        send_vectors: LANES.to_vec(),
        timer_vector: None,
        forwarded: Vec::new(),
        events,
    }
}

proptest! {
    /// Any interleaving of racing sends with context switches agrees
    /// across the oracle, the protocol model, and the kernel model.
    #[test]
    fn racing_sends_agree_with_the_kernel_model(
        steps in proptest::collection::vec((0u8..6, 0u8..4), 1..48)
    ) {
        let s = schedule_from(&steps);
        let divergence = check(&s);
        prop_assert!(divergence.is_none(), "divergence: {divergence:?}");
    }

    /// The window itself is visible in the oracle: a send that races a
    /// switch-out strands ON=1, SN=1 with the vector parked in PIR, and
    /// the next schedule-in self-heals (ON/SN cleared, PIR reposted and
    /// deliverable exactly once).
    #[test]
    fn the_race_window_strands_on_and_sn_then_self_heals(lane in 0u8..4) {
        let uv = LANES[usize::from(lane)];
        let s = schedule_from(&[]);
        let mut o = Oracle::new(&s);
        o.step(&Event::Schedule { core: 1 });
        o.step(&Event::SendPreempted { uv });
        prop_assert!(o.on, "IPI was issued before SN was observed");
        prop_assert!(o.sn, "kernel set SN during the window");
        prop_assert_eq!(o.pir, 1u64 << (uv & 63), "vector parked in PIR");

        o.step(&Event::Schedule { core: 1 });
        prop_assert!(!o.on && !o.sn, "schedule-in heals the descriptor");
        o.step(&Event::Deliver);
        prop_assert_eq!(o.delivered.as_slice(), &[uv][..], "delivered exactly once");
    }
}
