//! The reference interpreter: SDM-style pseudocode for the UIPI/xUI
//! protocol, executed over one flat state struct.
//!
//! This module is deliberately unsophisticated. There is no caching, no
//! batching, no shared abstraction with the three production models —
//! just plain fields mirroring Table 1 and §3.3/§4.3/§4.5 of the paper,
//! and one big `match` per event. Every transition is written out the
//! way the SDM would spell it, so a reader can check each arm against
//! the paper's pseudocode line by line. The differential driver
//! ([`crate::diff`]) replays the same events through `ProtocolModel`,
//! `UintrKernel` and the cycle-level simulator and diffs the outcomes.
//!
//! The oracle models the fixed scenario every generated schedule uses:
//! one sender thread pinned to core 0, one receiver thread that may be
//! scheduled on, descheduled from, and migrated between cores
//! `1..cores`, an optional per-core KB_Timer multiplexed for the
//! receiver, and a set of forwarded device-interrupt lines registered
//! on every core.

use serde::{Deserialize, Serialize};
use xui_uipi_abi as abi;

use crate::schedule::{Event, ForwardLine, Schedule};

/// The notification vector (`UINV`) every model programs: the protocol
/// model's `register_handler` writes `0xec` into the UPID's NV byte, and
/// the oracle's packed mirror must agree byte for byte.
pub const UINV: u8 = 0xec;

/// Armed KB_Timer state, the oracle's rendering of `kb_timer_state_MSR`
/// (§4.3): an absolute deadline, the period (0 for one-shot), and the
/// assigned user vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerState {
    /// Absolute deadline in cycles.
    pub deadline: u64,
    /// Period for periodic mode; 0 means one-shot.
    pub period: u64,
    /// Vector delivered on expiry.
    pub vector: u8,
}

/// What a replayed schedule observably did: the full delivery log plus
/// the final descriptor state after quiescing. Every model must produce
/// the same value for the same schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Outcome {
    /// Every vector delivered to the receiver's handler, in order.
    pub delivered: Vec<u8>,
    /// Final UPID `ON` bit.
    pub on: bool,
    /// Final UPID `SN` bit.
    pub sn: bool,
    /// Final UPID `PIR` bitmap.
    pub pir: u64,
}

/// The flat reference state: the receiver's UPID (Table 1), its
/// core-resident delivery state, the parked DUPID, the multiplexed
/// KB_Timer, and the forwarding lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oracle {
    /// Number of cores; core 0 belongs to the sender.
    pub cores: u8,
    /// UPID.ON — outstanding notification (Table 1, bit 0).
    pub on: bool,
    /// UPID.SN — suppress notification (Table 1, bit 1).
    pub sn: bool,
    /// UPID.NDST — notification destination core (Table 1, 63:32).
    pub ndst: u8,
    /// UPID.PIR — posted-interrupt requests, one bit per user vector.
    pub pir: u64,
    /// The receiving core's UIRR register (moves with the thread).
    pub uirr: u64,
    /// The user-interrupt flag (STUI/CLUI).
    pub uif: bool,
    /// The DUPID where slow-path forwarded interrupts park (§4.5).
    pub dupid: u64,
    /// Which core the receiver currently occupies, if any.
    pub running_on: Option<u8>,
    /// KB_Timer feature vector, if the kernel enabled it (§4.3).
    pub timer_vector: Option<u8>,
    /// The live (in-context) armed timer.
    pub armed: Option<TimerState>,
    /// Timer state saved by the kernel while the receiver is out.
    pub saved_timer: Option<TimerState>,
    /// Forwarded device lines, registered identically on every core.
    pub forwarded: Vec<ForwardLine>,
    /// Current time in cycles.
    pub now: u64,
    /// Delivery log.
    pub delivered: Vec<u8>,
}

impl Oracle {
    /// Builds the oracle in the post-setup state of `schedule`:
    /// handler registered (UIF set by `stui`), SN set because the
    /// receiver is not yet scheduled, timer enabled if requested,
    /// forwarding lines registered.
    #[must_use]
    pub fn new(schedule: &Schedule) -> Self {
        Self {
            cores: schedule.cores,
            on: false,
            sn: true, // register_handler starts SN set: thread not running
            ndst: 0,
            pir: 0,
            uirr: 0,
            uif: true, // register_handler ends with stui
            dupid: 0,
            running_on: None,
            timer_vector: schedule.timer_vector,
            armed: None,
            saved_timer: None,
            forwarded: schedule.forwarded.clone(),
            now: 0,
            delivered: Vec::new(),
        }
    }

    /// SDM §3.3 *notification processing*, spelled out: clear `ON`,
    /// drain `PIR` into `UIRR`.
    fn notification_processing(&mut self) {
        self.on = false;
        self.uirr |= self.pir;
        self.pir = 0;
    }

    /// SDM §3.3 SENDUIPI steps (1)–(4), spelled out:
    /// 1. read the UPID through the UITT entry;
    /// 2. post the vector: `PIR |= 1 << uv`;
    /// 3. if `SN` or `ON`, stop — suppressed or already notified;
    /// 4. set `ON` and send the notification IPI to `NDST`.
    ///
    /// Untimed, the IPI "arrives" at once: if the receiver is in
    /// context on the `NDST` core, notification processing runs.
    fn senduipi(&mut self, uv: u8) {
        self.pir |= 1u64 << (uv & 63);
        if self.sn || self.on {
            return;
        }
        self.on = true;
        if self.running_on == Some(self.ndst) {
            self.notification_processing();
        }
    }

    /// The SENDUIPI-racing-context-switch window: the sender posts into
    /// `PIR` and reads a stale `SN = 0`, the kernel then suspends the
    /// receiver (`SN := 1`), and the sender's notification IPI lands on
    /// a core that no longer runs the thread. The IPI is absorbed by
    /// the kernel; `ON` stays set, the vector stays posted, and the
    /// resume-time repost recovers it. If the receiver is not running,
    /// there is no switch to race and this is a plain suppressed send.
    fn senduipi_preempted(&mut self, uv: u8) {
        if self.running_on.is_none() {
            self.senduipi(uv);
            return;
        }
        self.pir |= 1u64 << (uv & 63);
        let fire_ipi = !self.sn && !self.on;
        self.context_switch_out();
        if fire_ipi {
            // The stale-snapshot IPI: ON is set, but nobody is home.
            self.on = true;
        }
    }

    /// Kernel context-switch-in (§3.2, §4.3, §4.5): clear `SN` and
    /// `ON`, rewrite `NDST`, repost `PIR` and the DUPID into the UIRR,
    /// restore the saved KB_Timer and the forwarded-active bits.
    fn context_switch_in(&mut self, core: u8) {
        if self.running_on.is_some() || core == 0 || core >= self.cores {
            return; // already in context, or not a receiver core
        }
        self.running_on = Some(core);
        self.ndst = core;
        self.sn = false;
        self.on = false;
        self.uirr |= self.pir;
        self.pir = 0;
        self.uirr |= self.dupid;
        self.dupid = 0;
        if self.timer_vector.is_some() {
            self.armed = self.saved_timer.take();
        }
    }

    /// Kernel context-switch-out: set `SN`, save the KB_Timer state,
    /// deactivate the forwarded lines (they fall back to the slow
    /// path, §4.5).
    fn context_switch_out(&mut self) {
        if self.running_on.is_none() {
            return;
        }
        self.running_on = None;
        self.sn = true;
        self.saved_timer = self.armed.take();
    }

    /// §3.3 step (5) user-interrupt delivery, looped to quiescence the
    /// way a handler that ends in `uiret` runs: while `UIF` is set and
    /// `UIRR` is non-empty, deliver the highest pending vector (which
    /// clears `UIF` for the handler's duration), log it, and `uiret`
    /// (which restores `UIF`).
    fn deliver_pending(&mut self) {
        if self.running_on.is_none() {
            return;
        }
        while self.uif && self.uirr != 0 {
            let v = 63 - self.uirr.leading_zeros() as u8;
            self.uirr &= !(1u64 << v);
            self.uif = false; // delivery masks
            self.delivered.push(v);
            self.uif = true; // uiret unmasks
        }
    }

    /// `set_timer(cycles, mode)` (§4.3): only legal in context with the
    /// feature enabled; periodic measures from now, one-shot takes an
    /// absolute deadline.
    fn set_timer(&mut self, cycles: u64, periodic: bool) {
        let Some(vector) = self.timer_vector else { return };
        if self.running_on.is_none() {
            return;
        }
        self.armed = Some(if periodic {
            TimerState {
                deadline: self.now.saturating_add(cycles),
                period: cycles.max(1),
                vector,
            }
        } else {
            TimerState { deadline: cycles, period: 0, vector }
        });
    }

    /// Advance time and poll the KB_Timer once: at most one firing per
    /// poll (missed periods coalesce onto the arming grid, like the
    /// APIC timer), and only while the owner is in context.
    fn advance_time(&mut self, dt: u64) {
        self.now = self.now.saturating_add(dt);
        if self.running_on.is_none() {
            return;
        }
        let Some(t) = self.armed else { return };
        if self.now < t.deadline {
            return;
        }
        self.uirr |= 1u64 << (t.vector & 63);
        // Periodic timers re-arm on the original grid, coalescing every
        // missed period into the one firing above; `checked_div` is
        // `None` exactly for one-shot timers (period 0), which disarm.
        match (self.now - t.deadline).checked_div(t.period) {
            Some(missed) => {
                self.armed = Some(TimerState {
                    deadline: t.deadline + (missed + 1) * t.period,
                    ..t
                });
            }
            None => self.armed = None,
        }
    }

    /// A device interrupt arrives on forwarding line `line` at `core`
    /// (§4.5): fast path straight into the UIRR when the registered
    /// thread is the one running there; slow path parks in the DUPID
    /// otherwise. An unregistered line is a legacy interrupt the OS
    /// handles — invisible to user interrupts.
    fn device_interrupt(&mut self, line: u8, core: u8) {
        if core >= self.cores {
            return;
        }
        let Some(fwd) = self.forwarded.get(line as usize) else {
            return; // legacy: not a forwarded vector
        };
        let bit = 1u64 << (fwd.uv & 63);
        if self.running_on == Some(core) {
            self.uirr |= bit; // fast path
        } else {
            self.dupid |= bit; // slow path
        }
    }

    /// Interprets one event: the single flat dispatch the whole oracle
    /// reduces to.
    pub fn step(&mut self, event: &Event) {
        match *event {
            Event::Send { uv } => self.senduipi(uv),
            Event::SendPreempted { uv } => self.senduipi_preempted(uv),
            Event::Schedule { core } => self.context_switch_in(core),
            Event::Deschedule => self.context_switch_out(),
            Event::Deliver => self.deliver_pending(),
            Event::Clui => self.uif = false,
            Event::Stui => self.uif = true,
            Event::SetTimer { cycles, periodic } => self.set_timer(u64::from(cycles), periodic),
            Event::AdvanceTime { dt } => self.advance_time(u64::from(dt)),
            Event::DeviceIrq { line, core } => self.device_interrupt(line, core),
            // A send through the shared table is architecturally the
            // same SENDUIPI against the same UPID.
            Event::ShareUitt { uv } => self.senduipi(uv),
            // Kernel-internal bookkeeping: the receiver's descriptor is
            // untouched by construction, so any model that perturbs it
            // shows up as a byte divergence.
            Event::TeardownShared | Event::RegisterUntilEnospc => {}
        }
    }

    /// The receiver's descriptor in its packed 64-byte ABI form
    /// ([`abi::Upid`]): the oracle's flat `on`/`sn`/`ndst`/`pir` fields
    /// rendered through the same bit-accurate packer the production
    /// models use, so the differential driver can compare serialized
    /// ABI bytes after every schedule step.
    #[must_use]
    pub fn upid_bytes(&self) -> [u8; abi::upid::UPID_BYTES] {
        let mut nc = abi::UintrNc::new();
        nc.set_on(self.on);
        nc.set_sn(self.sn);
        nc.nv = UINV;
        nc.ndst = u32::from(self.ndst);
        abi::Upid { nc, puir: self.pir }.pack()
    }

    /// Runs a whole schedule: every event in order, then the quiesce
    /// sequence every replay shares — resume the receiver (reposting
    /// anything parked), unmask, drain.
    #[must_use]
    pub fn run(schedule: &Schedule) -> Outcome {
        let mut oracle = Self::new(schedule);
        for ev in &schedule.events {
            oracle.step(ev);
        }
        oracle.quiesce();
        oracle.outcome()
    }

    /// The shared end-of-schedule quiesce: schedule onto core 1 if out
    /// of context, `stui`, drain.
    pub fn quiesce(&mut self) {
        if self.running_on.is_none() {
            self.context_switch_in(1);
        }
        self.uif = true;
        self.deliver_pending();
    }

    /// The observable outcome so far.
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        Outcome {
            delivered: self.delivered.clone(),
            on: self.on,
            sn: self.sn,
            pir: self.pir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_schedule(events: Vec<Event>) -> Schedule {
        Schedule {
            seed: 0,
            cores: 3,
            send_vectors: (0..8).collect(),
            timer_vector: Some(1),
            forwarded: vec![
                ForwardLine { vector: 8, uv: 10 },
                ForwardLine { vector: 9, uv: 11 },
            ],
            events,
        }
    }

    #[test]
    fn suppressed_send_parks_and_resume_reposts() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Send { uv: 5 },
            Event::Schedule { core: 1 },
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![5]);
        assert_eq!(out.pir, 0);
        assert!(!out.on && !out.sn);
    }

    #[test]
    fn batch_delivers_highest_vector_first() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Send { uv: 3 },
            Event::Send { uv: 9 },
            Event::Send { uv: 3 },
            Event::Schedule { core: 2 },
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![9, 3], "coalesced, highest first");
    }

    #[test]
    fn clui_masks_until_stui() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Schedule { core: 1 },
            Event::Clui,
            Event::Send { uv: 4 },
            Event::Deliver, // masked: nothing delivered
            Event::Stui,
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![4]);
    }

    #[test]
    fn preempted_send_leaves_on_and_sn_and_self_heals() {
        let sched = base_schedule(vec![
            Event::Schedule { core: 1 },
            Event::SendPreempted { uv: 7 },
        ]);
        let mut oracle = Oracle::new(&sched);
        for ev in &sched.events {
            oracle.step(ev);
        }
        // The race window: IPI issued, nobody home.
        assert!(oracle.on && oracle.sn);
        assert_eq!(oracle.pir, 1 << 7);
        oracle.quiesce();
        let out = oracle.outcome();
        assert_eq!(out.delivered, vec![7], "resume repost recovers");
        assert!(!out.on && !out.sn);
        assert_eq!(out.pir, 0);
    }

    #[test]
    fn second_send_while_on_set_does_not_renotify() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Schedule { core: 1 },
            Event::SendPreempted { uv: 2 }, // leaves ON set, receiver out
            Event::Send { uv: 6 },          // ON set: post only
            Event::Schedule { core: 2 },    // migration target
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![6, 2], "both recovered, highest first");
    }

    #[test]
    fn timer_fires_only_in_context_and_multiplexes() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Schedule { core: 1 },
            Event::SetTimer { cycles: 1_000, periodic: true },
            Event::AdvanceTime { dt: 1_000 },
            Event::Deliver, // fires: uv 1
            Event::Deschedule,
            Event::AdvanceTime { dt: 5_000 }, // out of context: no firing
            Event::Schedule { core: 1 },
            Event::Deliver, // nothing pending yet
            Event::AdvanceTime { dt: 100 },
            Event::Deliver, // restored timer fires once (coalesced)
        ]));
        assert_eq!(out.delivered, vec![1, 1]);
    }

    #[test]
    fn forwarding_fast_slow_and_legacy_paths() {
        let out = Oracle::run(&base_schedule(vec![
            Event::DeviceIrq { line: 0, core: 1 }, // out of context: DUPID
            Event::Schedule { core: 1 },
            Event::Deliver, // resume reposts uv 10
            Event::DeviceIrq { line: 1, core: 1 }, // fast path
            Event::Deliver,
            Event::DeviceIrq { line: 0, core: 2 }, // wrong core: slow path
            Event::DeviceIrq { line: 9, core: 1 }, // unregistered: legacy
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![10, 11], "line 0 at core 2 still parked");
    }

    #[test]
    fn upid_bytes_mirror_the_flat_state() {
        let sched = base_schedule(vec![Event::Send { uv: 5 }]);
        let mut oracle = Oracle::new(&sched);
        let bytes = oracle.upid_bytes();
        assert_eq!(bytes[0], 0b10, "SN set, ON clear after setup");
        assert_eq!(bytes[2], UINV);
        assert!(bytes[8..].iter().all(|&b| b == 0));
        oracle.step(&Event::Send { uv: 5 });
        let bytes = oracle.upid_bytes();
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 1 << 5);
        oracle.step(&Event::Schedule { core: 2 });
        let bytes = oracle.upid_bytes();
        assert_eq!(bytes[0], 0, "in context: SN and ON clear");
        assert_eq!(bytes[4], 2, "NDST tracks the core");
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 0, "PIR reposted");
    }

    #[test]
    fn shared_table_events_have_reference_semantics() {
        // ShareUitt delivers like a plain Send; the bookkeeping events
        // leave the descriptor untouched.
        let out = Oracle::run(&base_schedule(vec![
            Event::RegisterUntilEnospc,
            Event::ShareUitt { uv: 4 },
            Event::TeardownShared,
            Event::Schedule { core: 1 },
            Event::Deliver,
        ]));
        assert_eq!(out.delivered, vec![4]);
        assert_eq!(out.pir, 0);
    }

    #[test]
    fn one_shot_timer_takes_absolute_deadline_and_disarms() {
        let out = Oracle::run(&base_schedule(vec![
            Event::Schedule { core: 1 },
            Event::AdvanceTime { dt: 500 },
            Event::SetTimer { cycles: 700, periodic: false },
            Event::AdvanceTime { dt: 100 },
            Event::Deliver, // 600 < 700: nothing
            Event::AdvanceTime { dt: 100 },
            Event::Deliver, // 700: fires
            Event::AdvanceTime { dt: 10_000 },
            Event::Deliver, // disarmed: nothing
        ]));
        assert_eq!(out.delivered, vec![1]);
    }
}
