//! The differential driver: replay one [`Schedule`] through the oracle
//! and through each production model, diff the observable outcomes, and
//! shrink any divergence to a minimal JSON reproducer.
//!
//! Three replay targets exist:
//!
//! - `protocol` — [`xui_core::model::ProtocolModel`], the untimed
//!   architectural model;
//! - `kernel` — [`xui_kernel::UintrKernel`], the OS wrapper (same
//!   protocol plus syscall bookkeeping and teardown);
//! - `sim` — [`xui_sim::System`], the cycle-level pipeline model, which
//!   only supports the sends-only schedule class (see
//!   [`Schedule::is_sim_compatible`]).
//!
//! Replay mirrors the oracle's totality rules: an event that the oracle
//! treats as a no-op is skipped against the model too, so the *legal*
//! transitions are compared and any subsequence of a schedule remains
//! replayable (which keeps shrinking sound). A model error on an event
//! the oracle considers legal is itself a divergence.

use serde::{Deserialize, Serialize};

use xui_core::kb_timer::TimerMode;
use xui_core::model::{CoreId, ProtocolModel, ThreadId};
use xui_core::uitt::UittIndex;
use xui_core::vectors::{UserVector, Vector};
use xui_kernel::{KernelError, UintrKernel};
use xui_uipi_abi as abi;
use xui_sim::config::SystemConfig;
use xui_sim::isa::{AluKind, Inst, Op, Operand, Reg};
use xui_sim::trace::TraceKind;
use xui_sim::{Device, Program, System};

use crate::schedule::{Event, Schedule};
use crate::spec::{Oracle, Outcome};

/// A conventional vector no schedule ever registers for forwarding;
/// probing it must take the legacy path in every model.
const UNREGISTERED_VECTOR: u8 = 250;

/// Sender µcode + APIC transit latency used for the cycle-level replay
/// (the fig2 default).
const SIM_SEND_LATENCY: u64 = 140;

/// Extra spin cycles after the last send so in-flight deliveries land.
const SIM_SLACK: u64 = 50_000;

/// One observed disagreement between the oracle and a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Which model disagreed: `"protocol"`, `"kernel"` or `"sim"`.
    pub model: String,
    /// Human-readable first point of disagreement.
    pub detail: String,
    /// What the oracle says should happen.
    pub oracle: Outcome,
    /// What the model actually did (delivery count only for `sim`).
    pub observed: Outcome,
}

/// A shrunk divergence plus the schedule that triggers it — the JSON
/// artifact the fuzzer emits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Minimal schedule that still diverges.
    pub schedule: Schedule,
    /// The divergence it produces.
    pub divergence: Divergence,
}

/// Knobs for [`check_with`] and [`shrink_with`]. The default is the
/// production differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// Test-only: deliberately mis-pack the oracle's `UintrNc` status
    /// byte (SN rendered at bit 2 instead of bit 1) so the per-step
    /// byte differ provably catches packing bugs. Never set outside
    /// this crate's own tests.
    #[doc(hidden)]
    pub mispack_nc: bool,
}

/// The uniform surface the two protocol-level replays share.
trait ModelUnderTest {
    fn senduipi(&mut self, lane: usize) -> Result<(), String>;
    fn schedule(&mut self, core: u8) -> Result<(), String>;
    fn deschedule(&mut self, core: u8) -> Result<(), String>;
    fn deliver(&mut self) -> Result<(), String>;
    fn clui(&mut self) -> Result<(), String>;
    fn stui(&mut self) -> Result<(), String>;
    fn set_timer(&mut self, cycles: u64, periodic: bool) -> Result<(), String>;
    fn advance_time(&mut self, to: u64);
    fn device_interrupt(&mut self, vector: u8, core: u8) -> Result<(), String>;
    /// A send on `lane` issued through the shared UITT (the kernel
    /// replay drives its real shared table; others alias `senduipi`).
    fn share_send(&mut self, lane: usize) -> Result<(), String>;
    /// Tear down the shared co-sender (kernel-observable; no-op
    /// elsewhere).
    fn teardown_shared(&mut self) -> Result<(), String>;
    /// Fill the sender's table to `ENOSPC`, then free every extra slot
    /// (kernel-observable; no-op elsewhere).
    fn register_until_enospc(&mut self) -> Result<(), String>;
    /// The receiver's UPID as its packed 64-byte ABI image.
    fn upid_bytes(&self) -> Result<[u8; abi::upid::UPID_BYTES], String>;
    fn outcome(&self) -> Result<Outcome, String>;
}

struct ProtocolReplay {
    sys: ProtocolModel,
    sender: ThreadId,
    receiver: ThreadId,
    idx_by_lane: Vec<UittIndex>,
}

impl ProtocolReplay {
    fn new(s: &Schedule) -> Result<Self, String> {
        let mut sys = ProtocolModel::new(usize::from(s.cores));
        let sender = sys.create_thread();
        let receiver = sys.create_thread();
        sys.register_handler(receiver, 0x4000).map_err(|e| format!("{e:?}"))?;
        let mut idx_by_lane = Vec::with_capacity(s.send_vectors.len());
        for &uv in &s.send_vectors {
            let uv = UserVector::new(uv & 63).map_err(|e| format!("{e:?}"))?;
            idx_by_lane
                .push(sys.register_sender(sender, receiver, uv).map_err(|e| format!("{e:?}"))?);
        }
        if let Some(tv) = s.timer_vector {
            let tv = UserVector::new(tv & 63).map_err(|e| format!("{e:?}"))?;
            sys.enable_kb_timer(receiver, tv).map_err(|e| format!("{e:?}"))?;
        }
        for fwd in &s.forwarded {
            let uv = UserVector::new(fwd.uv & 63).map_err(|e| format!("{e:?}"))?;
            for core in 0..s.cores {
                sys.register_forwarding(receiver, CoreId(usize::from(core)), Vector::new(fwd.vector), uv)
                    .map_err(|e| format!("{e:?}"))?;
            }
        }
        sys.schedule(sender, CoreId(0)).map_err(|e| format!("{e:?}"))?;
        Ok(Self { sys, sender, receiver, idx_by_lane })
    }
}

impl ModelUnderTest for ProtocolReplay {
    fn senduipi(&mut self, lane: usize) -> Result<(), String> {
        self.sys.senduipi(self.sender, self.idx_by_lane[lane]).map_err(|e| format!("{e:?}"))
    }

    fn schedule(&mut self, core: u8) -> Result<(), String> {
        self.sys
            .schedule(self.receiver, CoreId(usize::from(core)))
            .map_err(|e| format!("{e:?}"))
    }

    fn deschedule(&mut self, core: u8) -> Result<(), String> {
        self.sys.deschedule(CoreId(usize::from(core))).map(|_| ()).map_err(|e| format!("{e:?}"))
    }

    fn deliver(&mut self) -> Result<(), String> {
        self.sys.run_pending(self.receiver).map(|_| ()).map_err(|e| format!("{e:?}"))
    }

    fn clui(&mut self) -> Result<(), String> {
        self.sys.clui(self.receiver).map_err(|e| format!("{e:?}"))
    }

    fn stui(&mut self) -> Result<(), String> {
        self.sys.stui(self.receiver).map_err(|e| format!("{e:?}"))
    }

    fn set_timer(&mut self, cycles: u64, periodic: bool) -> Result<(), String> {
        let mode = if periodic { TimerMode::Periodic } else { TimerMode::OneShot };
        self.sys.set_timer(self.receiver, cycles, mode).map_err(|e| format!("{e:?}"))
    }

    fn advance_time(&mut self, to: u64) {
        self.sys.advance_time(to);
    }

    fn device_interrupt(&mut self, vector: u8, core: u8) -> Result<(), String> {
        self.sys
            .device_interrupt(CoreId(usize::from(core)), Vector::new(vector))
            .map(|_| ())
            .map_err(|e| format!("{e:?}"))
    }

    fn share_send(&mut self, lane: usize) -> Result<(), String> {
        // The protocol model has no table-sharing layer: a shared-table
        // send is architecturally the same SENDUIPI.
        self.senduipi(lane)
    }

    fn teardown_shared(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn register_until_enospc(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn upid_bytes(&self) -> Result<[u8; abi::upid::UPID_BYTES], String> {
        Ok(self.sys.upid_of(self.receiver).map_err(|e| format!("{e:?}"))?.pack())
    }

    fn outcome(&self) -> Result<Outcome, String> {
        let upid = self.sys.upid_of(self.receiver).map_err(|e| format!("{e:?}"))?;
        let delivered = self
            .sys
            .delivered_log(self.receiver)
            .map_err(|e| format!("{e:?}"))?
            .iter()
            .map(|v| v.index() as u8)
            .collect();
        Ok(Outcome { delivered, on: upid.on(), sn: upid.sn(), pir: upid.pir() })
    }
}

/// Per-table UITT capacity for the kernel replay: small enough that
/// `RegisterUntilEnospc` fills it in a handful of syscalls, large
/// enough for the generator's ≤ 6 send lanes.
const KERNEL_REPLAY_UITT_SLOTS: usize = 16;

struct KernelReplay {
    sys: UintrKernel,
    sender: ThreadId,
    receiver: ThreadId,
    /// Co-sender sharing `sender`'s UITT (clone-on-register at setup).
    sender2: ThreadId,
    /// False once `TeardownShared` has retired the co-sender.
    shared_alive: bool,
    /// Vector used for the throwaway `ENOSPC`-probe routes.
    spare: UserVector,
    idx_by_lane: Vec<UittIndex>,
}

impl KernelReplay {
    fn new(s: &Schedule) -> Result<Self, String> {
        let mut sys = UintrKernel::with_capacities(
            usize::from(s.cores),
            xui_kernel::uintr::DEFAULT_UPID_SLOTS,
            KERNEL_REPLAY_UITT_SLOTS,
        );
        let sender = sys.create_thread();
        let receiver = sys.create_thread();
        sys.register_handler(receiver, 0x4000).map_err(|e| format!("{e:?}"))?;
        let mut idx_by_lane = Vec::with_capacity(s.send_vectors.len());
        let mut spare = UserVector::from_truncated(0);
        for &uv in &s.send_vectors {
            let uv = UserVector::new(uv & 63).map_err(|e| format!("{e:?}"))?;
            spare = uv;
            idx_by_lane
                .push(sys.register_sender(sender, receiver, uv).map_err(|e| format!("{e:?}"))?);
        }
        // The co-sender joins the sender's table *after* the lanes are
        // registered, exercising clone-on-register.
        let sender2 = sys.create_thread();
        sys.share_uitt(sender, sender2).map_err(|e| format!("{e:?}"))?;
        if let Some(tv) = s.timer_vector {
            let tv = UserVector::new(tv & 63).map_err(|e| format!("{e:?}"))?;
            sys.enable_kb_timer(receiver, tv).map_err(|e| format!("{e:?}"))?;
        }
        for fwd in &s.forwarded {
            let uv = UserVector::new(fwd.uv & 63).map_err(|e| format!("{e:?}"))?;
            for core in 0..s.cores {
                sys.register_forwarding(receiver, CoreId(usize::from(core)), Vector::new(fwd.vector), uv)
                    .map_err(|e| format!("{e:?}"))?;
            }
        }
        sys.schedule(sender, CoreId(0)).map_err(|e| format!("{e:?}"))?;
        Ok(Self { sys, sender, receiver, sender2, shared_alive: true, spare, idx_by_lane })
    }
}

impl ModelUnderTest for KernelReplay {
    fn senduipi(&mut self, lane: usize) -> Result<(), String> {
        self.sys.senduipi(self.sender, self.idx_by_lane[lane]).map_err(|e| format!("{e:?}"))
    }

    fn schedule(&mut self, core: u8) -> Result<(), String> {
        self.sys
            .schedule(self.receiver, CoreId(usize::from(core)))
            .map_err(|e| format!("{e:?}"))
    }

    fn deschedule(&mut self, core: u8) -> Result<(), String> {
        self.sys.deschedule(CoreId(usize::from(core))).map(|_| ()).map_err(|e| format!("{e:?}"))
    }

    fn deliver(&mut self) -> Result<(), String> {
        self.sys.run_pending(self.receiver).map(|_| ()).map_err(|e| format!("{e:?}"))
    }

    fn clui(&mut self) -> Result<(), String> {
        self.sys.clui(self.receiver).map_err(|e| format!("{e:?}"))
    }

    fn stui(&mut self) -> Result<(), String> {
        self.sys.stui(self.receiver).map_err(|e| format!("{e:?}"))
    }

    fn set_timer(&mut self, cycles: u64, periodic: bool) -> Result<(), String> {
        let mode = if periodic { TimerMode::Periodic } else { TimerMode::OneShot };
        self.sys.set_timer(self.receiver, cycles, mode).map_err(|e| format!("{e:?}"))
    }

    fn advance_time(&mut self, to: u64) {
        self.sys.advance_time(to);
    }

    fn device_interrupt(&mut self, vector: u8, core: u8) -> Result<(), String> {
        self.sys
            .device_interrupt(CoreId(usize::from(core)), Vector::new(vector))
            .map(|_| ())
            .map_err(|e| format!("{e:?}"))
    }

    fn share_send(&mut self, lane: usize) -> Result<(), String> {
        // While the co-sender lives, the send goes through its view of
        // the shared table; afterwards it falls back to the primary
        // sender — observably identical either way.
        let from = if self.shared_alive { self.sender2 } else { self.sender };
        self.sys.senduipi(from, self.idx_by_lane[lane]).map_err(|e| format!("{e:?}"))
    }

    fn teardown_shared(&mut self) -> Result<(), String> {
        if !self.shared_alive {
            return Ok(());
        }
        self.sys.teardown_thread(self.sender2).map_err(|e| format!("{e:?}"))?;
        self.shared_alive = false;
        Ok(())
    }

    fn register_until_enospc(&mut self) -> Result<(), String> {
        let mut extras = Vec::new();
        let hit = loop {
            match self.sys.register_sender(self.sender, self.receiver, self.spare) {
                Ok(idx) => extras.push(idx),
                Err(KernelError::UittFull { .. }) => break true,
                Err(e) => return Err(format!("{e:?}")),
            }
            if extras.len() > 2 * KERNEL_REPLAY_UITT_SLOTS {
                break false;
            }
        };
        for idx in &extras {
            self.sys.unregister_sender(self.sender, *idx).map_err(|e| format!("{e:?}"))?;
        }
        if !hit {
            return Err(format!(
                "register_sender never reported ENOSPC within {} registrations",
                extras.len()
            ));
        }
        Ok(())
    }

    fn upid_bytes(&self) -> Result<[u8; abi::upid::UPID_BYTES], String> {
        Ok(self.sys.model().upid_of(self.receiver).map_err(|e| format!("{e:?}"))?.pack())
    }

    fn outcome(&self) -> Result<Outcome, String> {
        let upid = self.sys.model().upid_of(self.receiver).map_err(|e| format!("{e:?}"))?;
        let delivered = self
            .sys
            .model()
            .delivered_log(self.receiver)
            .map_err(|e| format!("{e:?}"))?
            .iter()
            .map(|v| v.index() as u8)
            .collect();
        Ok(Outcome { delivered, on: upid.on(), sn: upid.sn(), pir: upid.pir() })
    }
}

/// First byte at which the two packed descriptors disagree, honoring
/// the ON-bit mask for the `SendPreempted` race window.
fn first_byte_diff(
    expect: &[u8; abi::upid::UPID_BYTES],
    got: &[u8; abi::upid::UPID_BYTES],
    mask_on: bool,
) -> Option<usize> {
    (0..abi::upid::UPID_BYTES).find(|&j| {
        let mask = if j == 0 && mask_on { !abi::nc::ON } else { 0xff };
        expect[j] & mask != got[j] & mask
    })
}

/// Replays `schedule` against `model`, mirroring the oracle's totality
/// guards so only transitions the oracle considers meaningful reach the
/// model — and stepping a lockstep [`Oracle`] alongside, comparing the
/// receiver's *serialized ABI bytes* ([`Oracle::upid_bytes`] vs the
/// model's packed descriptor) after every event. The one deliberate
/// mask: after a `SendPreempted` whose stale-snapshot IPI fired, the
/// oracle keeps `ON = 1` while the untimed models' deschedule-then-send
/// rendering leaves `ON = 0`; the bit is masked until the next resume
/// clears it on both sides (see `docs/ORACLE.md`).
///
/// Returns the model's outcome or the first unexpected error /
/// byte-level divergence.
fn replay<M: ModelUnderTest>(
    schedule: &Schedule,
    model: &mut M,
    opts: CheckOptions,
) -> Result<Outcome, String> {
    let mut oracle = Oracle::new(schedule);
    let mut race_on = false;
    let mut running: Option<u8> = None;
    let mut now = 0u64;
    for (i, ev) in schedule.events.iter().enumerate() {
        let step = |e: Result<(), String>| e.map_err(|msg| format!("event {i} {ev:?}: {msg}"));
        match *ev {
            Event::Send { uv } => {
                let lane = lane_of(schedule, uv);
                step(model.senduipi(lane))?;
            }
            Event::SendPreempted { uv } => {
                // The racing window is unreachable through the untimed
                // models' atomic senduipi; deschedule-then-send has the
                // identical observable effect (see docs/ORACLE.md).
                if let Some(core) = running.take() {
                    step(model.deschedule(core))?;
                }
                let lane = lane_of(schedule, uv);
                step(model.senduipi(lane))?;
            }
            Event::Schedule { core } => {
                if running.is_none() && core >= 1 && core < schedule.cores {
                    step(model.schedule(core))?;
                    running = Some(core);
                }
            }
            Event::Deschedule => {
                if let Some(core) = running.take() {
                    step(model.deschedule(core))?;
                }
            }
            Event::Deliver => {
                if running.is_some() {
                    step(model.deliver())?;
                }
            }
            Event::Clui => step(model.clui())?,
            Event::Stui => step(model.stui())?,
            Event::SetTimer { cycles, periodic } => {
                if running.is_some() && schedule.timer_vector.is_some() {
                    step(model.set_timer(u64::from(cycles), periodic))?;
                }
            }
            Event::AdvanceTime { dt } => {
                now += u64::from(dt);
                model.advance_time(now);
            }
            Event::DeviceIrq { line, core } => {
                if core < schedule.cores {
                    let vector = schedule
                        .forwarded
                        .get(usize::from(line))
                        .map_or(UNREGISTERED_VECTOR, |f| f.vector);
                    step(model.device_interrupt(vector, core))?;
                }
            }
            Event::ShareUitt { uv } => {
                let lane = lane_of(schedule, uv);
                step(model.share_send(lane))?;
            }
            Event::TeardownShared => step(model.teardown_shared())?,
            Event::RegisterUntilEnospc => step(model.register_until_enospc())?,
        }
        // Lockstep oracle step and ABI byte compare. The race window
        // opens when a preempted send's stale-snapshot IPI fires (the
        // oracle's pre-step state says it would) and closes as soon as
        // the oracle's ON clears (the next resume).
        if let Event::SendPreempted { .. } = ev {
            if oracle.running_on.is_some() && !oracle.sn && !oracle.on {
                race_on = true;
            }
        }
        oracle.step(ev);
        if !oracle.on {
            race_on = false;
        }
        let mut expect = oracle.upid_bytes();
        if opts.mispack_nc {
            // The deliberately broken packer: SN rendered at bit 2.
            expect[0] = (expect[0] & abi::nc::ON) | (u8::from(oracle.sn) << 2);
        }
        let got = model.upid_bytes().map_err(|e| format!("event {i} {ev:?}: {e}"))?;
        if let Some(j) = first_byte_diff(&expect, &got, race_on) {
            return Err(format!(
                "upid ABI bytes diverge after event {i} ({ev:?}) at byte {j}: \
                 oracle {:#04x} vs model {:#04x}",
                expect[j], got[j]
            ));
        }
    }
    // Quiesce exactly like the oracle: resume, unmask, drain.
    if running.is_none() {
        model.schedule(1).map_err(|e| format!("quiesce schedule: {e}"))?;
    }
    model.stui().map_err(|e| format!("quiesce stui: {e}"))?;
    model.deliver().map_err(|e| format!("quiesce deliver: {e}"))?;
    oracle.quiesce();
    let expect = oracle.upid_bytes();
    let got = model.upid_bytes().map_err(|e| format!("quiesce: {e}"))?;
    if let Some(j) = first_byte_diff(&expect, &got, false) {
        return Err(format!(
            "upid ABI bytes diverge after quiesce at byte {j}: oracle {:#04x} vs model {:#04x}",
            expect[j], got[j]
        ));
    }
    model.outcome()
}

fn lane_of(schedule: &Schedule, uv: u8) -> usize {
    schedule
        .send_vectors
        .iter()
        .position(|&v| v == uv)
        .expect("generator draws send vectors from the registered lanes")
}

/// Cycle-level replay of a sims-compatible schedule: one spinning
/// receiver core, one one-shot `UipiTimer` device per timed send.
/// Returns the number of handler entries.
fn replay_sim(schedule: &Schedule) -> Result<u64, String> {
    let sends = schedule.timed_sends();
    let last_at = sends.iter().map(|&(at, _)| at).max().unwrap_or(0);
    let spin = last_at + SIM_SEND_LATENCY + SIM_SLACK;
    let receiver = Program::new(
        "oracle-spin",
        vec![
            Inst::new(Op::Li { dst: Reg(1), imm: spin }),
            Inst::new(Op::Alu {
                kind: AluKind::Sub,
                dst: Reg(1),
                src: Reg(1),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Bnez { src: Reg(1), target: 1 }),
            Inst::new(Op::Halt),
            Inst::new(Op::Alu {
                kind: AluKind::Add,
                dst: Reg(20),
                src: Reg(20),
                op2: Operand::Imm(1),
            }),
            Inst::new(Op::Uiret),
        ],
    );
    let mut sys = System::new(SystemConfig::uipi(), vec![receiver]);
    sys.register_receiver(0, 4);
    sys.cores[0].trace_enabled = true;
    let upid_addr = sys.cores[0].upid_addr;
    for &(at, uv) in &sends {
        sys.add_device(Device::UipiTimer {
            period: 1 << 40, // effectively one-shot
            next_fire: at,
            upid_addr,
            user_vector: uv,
            send_latency: SIM_SEND_LATENCY,
        });
    }
    sys.run_until_halted(spin.saturating_mul(8).saturating_add(2_000_000));
    let handler_entries = sys
        .trace_events()
        .iter()
        .filter(|e| e.core == 0 && e.kind == TraceKind::HandlerEntered)
        .count() as u64;
    let counted = sys.cores[0].reg(Reg(20));
    if handler_entries != counted {
        return Err(format!(
            "trace shows {handler_entries} handler entries but the handler ran {counted} times"
        ));
    }
    Ok(counted)
}

fn diverge(model: &str, detail: String, oracle: &Outcome, observed: Outcome) -> Divergence {
    Divergence {
        model: model.to_string(),
        detail,
        oracle: oracle.clone(),
        observed,
    }
}

fn compare(model: &str, oracle: &Outcome, observed: Result<Outcome, String>) -> Option<Divergence> {
    match observed {
        Err(detail) => Some(diverge(model, detail, oracle, Outcome::default())),
        Ok(observed) if observed != *oracle => {
            let detail = if observed.delivered == oracle.delivered {
                format!(
                    "descriptor state differs: oracle (on={}, sn={}, pir={:#x}) vs model (on={}, sn={}, pir={:#x})",
                    oracle.on, oracle.sn, oracle.pir, observed.on, observed.sn, observed.pir
                )
            } else {
                format!(
                    "delivery log differs: oracle {:?} vs model {:?}",
                    oracle.delivered, observed.delivered
                )
            };
            Some(diverge(model, detail, oracle, observed))
        }
        Ok(_) => None,
    }
}

/// Checks one schedule against the protocol and kernel models (and the
/// cycle-level simulator when the schedule is sim-compatible). Returns
/// the first divergence found, unshrunk.
#[must_use]
pub fn check(schedule: &Schedule) -> Option<Divergence> {
    check_with(schedule, CheckOptions::default())
}

/// [`check`] with explicit [`CheckOptions`].
#[must_use]
pub fn check_with(schedule: &Schedule, opts: CheckOptions) -> Option<Divergence> {
    let oracle = Oracle::run(schedule);
    let protocol = ProtocolReplay::new(schedule)
        .and_then(|mut m| replay(schedule, &mut m, opts));
    if let Some(d) = compare("protocol", &oracle, protocol) {
        return Some(d);
    }
    let kernel = KernelReplay::new(schedule).and_then(|mut m| replay(schedule, &mut m, opts));
    if let Some(d) = compare("kernel", &oracle, kernel) {
        return Some(d);
    }
    if schedule.is_sim_compatible() {
        match replay_sim(schedule) {
            Err(detail) => {
                return Some(diverge("sim", detail, &oracle, Outcome::default()));
            }
            Ok(count) if count != oracle.delivered.len() as u64 => {
                let detail = format!(
                    "cycle model delivered {count} interrupts, oracle delivered {}",
                    oracle.delivered.len()
                );
                let observed = Outcome { delivered: vec![], on: false, sn: false, pir: count };
                return Some(diverge("sim", detail, &oracle, observed));
            }
            Ok(_) => {}
        }
    }
    None
}

/// Shrinks a diverging schedule with ddmin over its event list: repeated
/// chunk deletion at halving granularity until no single event can be
/// removed without losing the divergence. Totality of the event
/// semantics guarantees every candidate subsequence is replayable, so
/// no re-legalization pass is needed.
#[must_use]
pub fn shrink(schedule: &Schedule) -> Schedule {
    shrink_with(schedule, CheckOptions::default())
}

/// [`shrink`] with explicit [`CheckOptions`] (the predicate must match
/// the one the divergence was found with).
#[must_use]
pub fn shrink_with(schedule: &Schedule, opts: CheckOptions) -> Schedule {
    let mut best = schedule.clone();
    if check_with(&best, opts).is_none() {
        return best;
    }
    let mut chunk = best.events.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.events.len() {
            let end = (start + chunk).min(best.events.len());
            let mut candidate = best.clone();
            candidate.events.drain(start..end);
            if check_with(&candidate, opts).is_some() {
                best = candidate;
                progressed = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            return best;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Generates, checks and (on divergence) shrinks the schedule for
/// `seed`. `sim_class` selects the sends-only generator whose schedules
/// also replay through the cycle-level simulator.
#[must_use]
pub fn fuzz_one(seed: u64, sim_class: bool) -> Option<Reproducer> {
    let schedule = if sim_class { Schedule::generate_sim(seed) } else { Schedule::generate(seed) };
    check(&schedule)?;
    let minimal = shrink(&schedule);
    let divergence = check(&minimal).expect("shrink preserves divergence");
    Some(Reproducer { schedule: minimal, divergence })
}

/// Renders a reproducer as deterministic pretty JSON (byte-identical
/// for the same divergence, regardless of thread count).
///
/// # Panics
///
/// Panics if serialization fails, which cannot happen for these types.
#[must_use]
pub fn reproducer_json(r: &Reproducer) -> String {
    serde_json::to_string_pretty(r).expect("reproducer serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ForwardLine;

    #[test]
    fn seeded_full_schedules_agree_across_models() {
        for seed in 0..200u64 {
            let s = Schedule::generate(seed);
            assert!(check(&s).is_none(), "seed {seed} diverged: {:?}", check(&s));
        }
    }

    #[test]
    fn seeded_sim_schedules_agree_across_all_three() {
        for seed in 0..10u64 {
            let s = Schedule::generate_sim(seed);
            assert!(s.is_sim_compatible());
            assert!(check(&s).is_none(), "seed {seed} diverged: {:?}", check(&s));
        }
    }

    #[test]
    fn a_seeded_divergence_shrinks_to_its_core() {
        // Build a wrong oracle on purpose by mutating a good schedule's
        // expected outcome path: a schedule whose delivery the models
        // agree on, then check that shrink keeps only what matters.
        // Since the real models agree with the oracle, synthesize the
        // divergence by shrinking against a predicate instead: remove
        // the only Send and the divergence disappears.
        let s = Schedule {
            seed: 0,
            cores: 2,
            send_vectors: vec![5],
            timer_vector: None,
            forwarded: vec![ForwardLine { vector: 32, uv: 9 }],
            events: vec![
                Event::Stui,
                Event::AdvanceTime { dt: 500 },
                Event::Send { uv: 5 },
                Event::Schedule { core: 1 },
                Event::Deliver,
                Event::Deschedule,
            ],
        };
        // No real divergence: shrink must be the identity.
        assert!(check(&s).is_none());
        assert_eq!(shrink(&s), s);
    }

    #[test]
    fn shared_table_schedule_agrees_across_models() {
        let s = Schedule {
            seed: 0,
            cores: 2,
            send_vectors: vec![3, 7],
            timer_vector: None,
            forwarded: vec![],
            events: vec![
                Event::RegisterUntilEnospc,
                Event::ShareUitt { uv: 3 },
                Event::Schedule { core: 1 },
                Event::Deliver,
                Event::TeardownShared,
                Event::ShareUitt { uv: 7 },
                Event::RegisterUntilEnospc,
                Event::Deliver,
                Event::TeardownShared,
            ],
        };
        assert!(check(&s).is_none(), "diverged: {:?}", check(&s));
    }

    #[test]
    fn mispacked_nc_is_caught_by_the_byte_differ_and_shrinks() {
        // A deliberately mis-packed UintrNc (SN rendered at bit 2) must
        // be caught by the per-step ABI byte compare on essentially any
        // schedule (the post-setup state has SN set), and ddmin must
        // shrink the reproducer to the bone.
        let opts = CheckOptions { mispack_nc: true };
        let s = Schedule::generate(1);
        let d = check_with(&s, opts).expect("mis-packed NC must diverge");
        assert!(d.detail.contains("ABI bytes"), "unexpected detail: {}", d.detail);
        assert!(d.detail.contains("byte 0"), "SN lives in byte 0: {}", d.detail);
        let minimal = shrink_with(&s, opts);
        assert!(
            minimal.events.len() <= 2,
            "ddmin should shrink to one or two events, got {:?}",
            minimal.events
        );
        let d = check_with(&minimal, opts).expect("shrink preserves the divergence");
        assert!(d.detail.contains("ABI bytes"));
        // The production differ sees nothing wrong with the same
        // schedule: the divergence is the injected mis-pack, not a
        // model bug.
        assert!(check(&minimal).is_none());
    }

    #[test]
    fn reproducer_json_is_deterministic() {
        let r = Reproducer {
            schedule: Schedule::generate(3),
            divergence: Divergence {
                model: "protocol".into(),
                detail: "synthetic".into(),
                oracle: Outcome { delivered: vec![1], on: false, sn: false, pir: 0 },
                observed: Outcome::default(),
            },
        };
        let json = reproducer_json(&r);
        assert_eq!(json, reproducer_json(&r.clone()));
        assert!(json.contains("\"model\": \"protocol\""));
        assert!(json.contains("\"seed\": 3"));
    }
}
