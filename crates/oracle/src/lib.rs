//! `xui-oracle`: an executable, deliberately *flat* reference model of
//! the UIPI/xUI architecture, plus differential schedule fuzzing.
//!
//! The crate has three parts, mirroring the paper's §3 (baseline UIPI),
//! §4.3 (KB_Timer) and §4.5 (interrupt forwarding):
//!
//! - [`spec`] — the oracle itself: a line-for-line transliteration of
//!   SDM-style pseudocode. No caching, no batching, no cleverness; one
//!   big `match` per event. Correctness is meant to be checkable by
//!   reading it next to `docs/ORACLE.md`.
//! - [`schedule`] — seeded generation of randomized event
//!   interleavings (sends, context switches, migrations, masking,
//!   timer programs, forwarded device interrupts), serializable as
//!   JSON so any schedule is its own reproducer.
//! - [`diff`] — the differential driver: replays a schedule through
//!   the oracle and through the `ProtocolModel`, `UintrKernel` and
//!   cycle-level `xui_sim::System`, compares observable outcomes, and
//!   shrinks divergences to minimal reproducers with ddmin.
//!
//! The oracle is the arbiter: when a model disagrees with it, either
//! the model is wrong (fix it, add a regression test) or the oracle is
//! missing a documented fidelity gap (record it in `docs/ORACLE.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod schedule;
pub mod spec;

pub use diff::{
    check, check_with, fuzz_one, reproducer_json, shrink, shrink_with, CheckOptions, Divergence,
    Reproducer,
};
pub use schedule::{Event, ForwardLine, Schedule};
pub use spec::{Oracle, Outcome, TimerState};
