//! Seeded schedule generation: randomized interleavings of sends,
//! context switches, migrations, timer programs, receiver masking and
//! forwarded device interrupts, reproducible from a single `u64` seed.
//!
//! Every event is *total* in both the oracle and the replay drivers: an
//! event that does not apply in the current state (scheduling a thread
//! that is already in context, arming a disabled timer, delivering
//! while out of context) is a no-op everywhere, by construction. That
//! makes any subsequence of a schedule a valid schedule, which is what
//! lets the shrinker delete events freely without a re-legalization
//! pass.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One forwarded device line (§4.5): a conventional vector mapped to a
/// user vector, registered for the receiver on every core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardLine {
    /// Conventional (APIC) vector the device raises.
    pub vector: u8,
    /// User vector it forwards to.
    pub uv: u8,
}

/// One schedule event. See [`crate::spec::Oracle::step`] for the
/// reference semantics of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// The sender executes `senduipi` toward the receiver.
    Send {
        /// User vector.
        uv: u8,
    },
    /// `senduipi` racing a context switch: SN is set between the PIR
    /// post and the notification-IPI issue (the §3.3 window).
    SendPreempted {
        /// User vector.
        uv: u8,
    },
    /// Kernel schedules the receiver onto `core` (1-based; core 0 is
    /// the sender's).
    Schedule {
        /// Destination core.
        core: u8,
    },
    /// Kernel switches the receiver out.
    Deschedule,
    /// The receiver drains every deliverable pending interrupt.
    Deliver,
    /// The receiver masks user interrupts (`clui`).
    Clui,
    /// The receiver unmasks user interrupts (`stui`).
    Stui,
    /// The receiver programs its KB_Timer (§4.3).
    SetTimer {
        /// Period (periodic) or absolute deadline (one-shot), cycles.
        cycles: u32,
        /// Periodic vs one-shot.
        periodic: bool,
    },
    /// Time advances by `dt` cycles (armed timers may fire).
    AdvanceTime {
        /// Cycles to advance.
        dt: u32,
    },
    /// A device interrupt arrives on forwarding line `line` at `core`
    /// (a line index past the registered set probes the legacy path).
    DeviceIrq {
        /// Index into [`Schedule::forwarded`].
        line: u8,
        /// Core where the interrupt arrives.
        core: u8,
    },
    /// A second sender thread sharing the primary sender's UITT sends
    /// `uv`. The kernel replay drives a real refcounted shared table
    /// (clone-on-register); the oracle and protocol replays observe it
    /// as an ordinary [`Event::Send`] — any difference in the
    /// receiver's descriptor bytes is a divergence.
    ShareUitt {
        /// User vector (drawn from the registered send lanes).
        uv: u8,
    },
    /// The shared co-sender is torn down. Kernel-observable only: the
    /// shared table and its routes must survive for the remaining
    /// members, so the oracle and protocol replays treat this as a
    /// no-op. Subsequent [`Event::ShareUitt`] sends fall back to the
    /// primary sender.
    TeardownShared,
    /// The kernel registers throwaway routes until its UITT reports
    /// table-full (`ENOSPC`), then unregisters them all. The allocator
    /// must round-trip (freed slots reusable) and nothing may leak into
    /// the receiver's descriptor; failing to hit `ENOSPC` at all is a
    /// divergence. A no-op in the oracle and protocol replays.
    RegisterUntilEnospc,
}

/// A complete generated scenario: the static setup plus the event
/// interleaving. Serializable as JSON so a failing schedule is its own
/// reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Seed this schedule was generated from (0 for hand-written).
    pub seed: u64,
    /// Core count; core 0 is pinned to the sender.
    pub cores: u8,
    /// User vectors with a registered sender→receiver UITT route.
    pub send_vectors: Vec<u8>,
    /// KB_Timer vector, if the feature is enabled for the receiver.
    pub timer_vector: Option<u8>,
    /// Forwarded device lines, registered on every core.
    pub forwarded: Vec<ForwardLine>,
    /// The event interleaving.
    pub events: Vec<Event>,
}

impl Schedule {
    /// Generates the full-alphabet schedule for `seed`: sends, racing
    /// sends, context switches and migrations, masking, timer programs
    /// and forwarded device interrupts. Replayable through the oracle,
    /// the protocol model and the kernel model.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let cores = rng.gen_range(2u8..=4);
        let lanes = rng.gen_range(1usize..=6);
        let mut send_vectors: Vec<u8> = Vec::with_capacity(lanes);
        while send_vectors.len() < lanes {
            let uv = rng.gen_range(0u8..64);
            if !send_vectors.contains(&uv) {
                send_vectors.push(uv);
            }
        }
        let timer_vector = rng.gen_bool(0.5).then(|| rng.gen_range(0u8..64));
        let fwd_lines = rng.gen_range(0usize..=3);
        let forwarded = (0..fwd_lines)
            .map(|i| ForwardLine {
                vector: 32 + i as u8,
                uv: rng.gen_range(0u8..64),
            })
            .collect::<Vec<_>>();

        let count = rng.gen_range(8usize..=60);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let pick = rng.gen_range(0u32..32);
            events.push(match pick {
                0..=5 => Event::Send {
                    uv: send_vectors[rng.gen_range(0usize..send_vectors.len())],
                },
                6..=7 => Event::SendPreempted {
                    uv: send_vectors[rng.gen_range(0usize..send_vectors.len())],
                },
                8..=10 => Event::Schedule { core: rng.gen_range(1u8..cores) },
                11..=12 => Event::Deschedule,
                13..=17 => Event::Deliver,
                18 => Event::Clui,
                19..=20 => Event::Stui,
                21..=22 => Event::SetTimer {
                    cycles: rng.gen_range(100u32..5_000),
                    periodic: rng.gen_bool(0.5),
                },
                23..=25 => Event::AdvanceTime { dt: rng.gen_range(100u32..5_000) },
                26..=27 => Event::DeviceIrq {
                    line: rng.gen_range(0u8..=forwarded.len() as u8),
                    core: rng.gen_range(0u8..cores),
                },
                28..=29 => Event::ShareUitt {
                    uv: send_vectors[rng.gen_range(0usize..send_vectors.len())],
                },
                30 => Event::TeardownShared,
                _ => Event::RegisterUntilEnospc,
            });
        }
        Self {
            seed,
            cores,
            send_vectors,
            timer_vector,
            forwarded,
            events,
        }
    }

    /// Generates a sends-only schedule suitable for the cycle-level
    /// simulator as well: batches of sends separated by at least
    /// [`Schedule::SIM_MIN_GAP`] cycles, so the sim's real delivery
    /// latency cannot smear one batch into the next (see
    /// `docs/ORACLE.md` on this intentional fidelity gap). The receiver
    /// is scheduled up front and never switched.
    #[must_use]
    pub fn generate_sim(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lanes = rng.gen_range(1usize..=6);
        let mut send_vectors: Vec<u8> = Vec::with_capacity(lanes);
        while send_vectors.len() < lanes {
            let uv = rng.gen_range(0u8..64);
            if !send_vectors.contains(&uv) {
                send_vectors.push(uv);
            }
        }
        let batches = rng.gen_range(1usize..=6);
        let mut events = vec![Event::Schedule { core: 1 }];
        for _ in 0..batches {
            events.push(Event::AdvanceTime {
                dt: rng.gen_range(Self::SIM_MIN_GAP..3 * Self::SIM_MIN_GAP),
            });
            for _ in 0..rng.gen_range(1usize..=3) {
                events.push(Event::Send {
                    uv: send_vectors[rng.gen_range(0usize..send_vectors.len())],
                });
            }
            events.push(Event::Deliver);
        }
        Self {
            seed,
            cores: 2,
            send_vectors,
            timer_vector: None,
            forwarded: Vec::new(),
            events,
        }
    }

    /// Minimum cycle gap between send batches in sim-class schedules:
    /// comfortably larger than the sim's send latency plus its
    /// notification-processing and handler time.
    pub const SIM_MIN_GAP: u32 = 2_000;

    /// True if the schedule satisfies every precondition of the
    /// cycle-level replay harness, which models a receiver that is *in
    /// context and draining eagerly from cycle 0*:
    ///
    /// - events drawn only from the sends-only alphabet (no timers, no
    ///   forwarding, no masking, no deschedule);
    /// - a `Schedule` occurs before the first `Send` (the oracle's
    ///   receiver must be in context, like the sim's);
    /// - send batches (sends sharing a virtual timestamp) are at least
    ///   [`Schedule::SIM_MIN_GAP`] cycles apart, so the sim's real
    ///   delivery latency cannot smear one batch into the next;
    /// - a `Deliver` drains each batch before the next batch starts
    ///   (the sim drains eagerly; the oracle only on `Deliver`), and no
    ///   `Deliver` splits a same-timestamp batch (the sim coalesces
    ///   same-cycle duplicates in PIR; a mid-batch drain would stop the
    ///   oracle from coalescing them).
    ///
    /// These are exactly the documented fidelity gaps of comparing an
    /// untimed oracle to a timed pipeline — see `docs/ORACLE.md`.
    #[must_use]
    pub fn is_sim_compatible(&self) -> bool {
        if self.timer_vector.is_some() || !self.forwarded.is_empty() {
            return false;
        }
        let alphabet_ok = self.events.iter().all(|e| {
            matches!(
                e,
                Event::Send { .. }
                    | Event::AdvanceTime { .. }
                    | Event::Deliver
                    | Event::Schedule { .. }
            )
        });
        if !alphabet_ok {
            return false;
        }
        let mut now = 0u64;
        let mut scheduled = false;
        let mut last_batch: Option<u64> = None;
        let mut drained = true;
        for ev in &self.events {
            match *ev {
                Event::AdvanceTime { dt } => now += u64::from(dt),
                Event::Schedule { .. } => scheduled = true,
                Event::Deliver => drained = true,
                Event::Send { .. } => {
                    if !scheduled {
                        return false;
                    }
                    match last_batch {
                        // A Deliver split a same-timestamp batch.
                        Some(t) if now == t && drained => return false,
                        Some(t) if now == t => {}
                        Some(t) if now < t + u64::from(Self::SIM_MIN_GAP) || !drained => {
                            return false;
                        }
                        _ => {}
                    }
                    last_batch = Some(now);
                    drained = false;
                }
                _ => return false,
            }
        }
        true
    }

    /// The absolute send times implied by the event stream (for the
    /// cycle-level replay): each `Send` stamped with the virtual time
    /// accumulated from `AdvanceTime` events before it.
    #[must_use]
    pub fn timed_sends(&self) -> Vec<(u64, u8)> {
        let mut now = 0u64;
        let mut out = Vec::new();
        for ev in &self.events {
            match *ev {
                Event::AdvanceTime { dt } => now += u64::from(dt),
                Event::Send { uv } | Event::SendPreempted { uv } => out.push((now, uv & 63)),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(Schedule::generate(7), Schedule::generate(7));
        assert_ne!(Schedule::generate(7), Schedule::generate(8));
        assert_eq!(Schedule::generate_sim(7), Schedule::generate_sim(7));
    }

    #[test]
    fn sim_schedules_are_sim_compatible_and_spaced() {
        for seed in 0..50u64 {
            let s = Schedule::generate_sim(seed);
            assert!(s.is_sim_compatible(), "seed {seed}");
            let sends = s.timed_sends();
            let mut times: Vec<u64> = sends.iter().map(|&(at, _)| at).collect();
            times.dedup();
            for w in times.windows(2) {
                assert!(
                    w[1] - w[0] >= u64::from(Schedule::SIM_MIN_GAP),
                    "seed {seed}: batches {w:?} too close"
                );
            }
            assert!(sends.first().map_or(0, |&(at, _)| at) >= u64::from(Schedule::SIM_MIN_GAP));
        }
    }

    #[test]
    fn full_schedules_stay_in_bounds() {
        for seed in 0..50u64 {
            let s = Schedule::generate(seed);
            assert!((2..=4).contains(&s.cores), "seed {seed}");
            assert!(!s.send_vectors.is_empty());
            for ev in &s.events {
                match *ev {
                    Event::Schedule { core } => assert!(core >= 1 && core < s.cores),
                    Event::Send { uv } | Event::SendPreempted { uv } | Event::ShareUitt { uv } => {
                        assert!(s.send_vectors.contains(&uv));
                    }
                    Event::DeviceIrq { line, core } => {
                        assert!(line as usize <= s.forwarded.len());
                        assert!(core < s.cores);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn extended_alphabet_events_are_generated() {
        let (mut share, mut teardown, mut enospc) = (false, false, false);
        for seed in 0..200u64 {
            for ev in &Schedule::generate(seed).events {
                match ev {
                    Event::ShareUitt { .. } => share = true,
                    Event::TeardownShared => teardown = true,
                    Event::RegisterUntilEnospc => enospc = true,
                    _ => {}
                }
            }
        }
        assert!(share && teardown && enospc, "share={share} teardown={teardown} enospc={enospc}");
    }

    #[test]
    fn sim_compatibility_enforces_harness_preconditions() {
        // Regression shape (fuzz seed 15920570541605372142, shrunk):
        // two same-vector sends with no Schedule and no Deliver between
        // them. The oracle's descheduled receiver coalesces both in PIR
        // (one delivery); the sim's always-running receiver delivers
        // each eagerly. Such schedules must not be replayed through the
        // sim at all.
        let base = Schedule {
            seed: 0,
            cores: 3,
            send_vectors: vec![32],
            timer_vector: None,
            forwarded: vec![],
            events: vec![
                Event::Send { uv: 32 },
                Event::AdvanceTime { dt: 1_040 },
                Event::Send { uv: 32 },
            ],
        };
        assert!(!base.is_sim_compatible(), "no Schedule before the first Send");

        let mut scheduled = base.clone();
        scheduled.events.insert(0, Event::Schedule { core: 1 });
        assert!(!scheduled.is_sim_compatible(), "batch gap below SIM_MIN_GAP");

        let mut spaced = scheduled.clone();
        spaced.events[2] = Event::AdvanceTime { dt: Schedule::SIM_MIN_GAP };
        assert!(!spaced.is_sim_compatible(), "previous batch never drained");

        let mut drained = spaced.clone();
        drained.events.insert(2, Event::Deliver);
        assert!(drained.is_sim_compatible());

        let mut split_batch = drained.clone();
        split_batch.events[3] = Event::AdvanceTime { dt: 0 };
        // Now: Schedule, Send, Deliver, AdvanceTime{0}, Send — the
        // Deliver splits a same-timestamp batch.
        assert!(!split_batch.is_sim_compatible());
    }

    #[test]
    fn schedules_serialize_deterministically_and_carry_their_seed() {
        // The vendored serde stack is serialization-only: the JSON is a
        // human/CI artifact, and programmatic replay reconstructs the
        // schedule from the embedded seed instead of parsing.
        let s = Schedule::generate(123);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, serde_json::to_string(&Schedule::generate(123)).unwrap());
        assert!(json.contains("\"seed\":123"));
        assert_eq!(Schedule::generate(s.seed), s);
    }
}
