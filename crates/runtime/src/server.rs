//! The §5.3 / Figure 7 experiment: an Aspen-like runtime serving the
//! bimodal RocksDB workload from an open-loop Poisson load generator,
//! with preemptive scheduling driven by one of the mechanisms in
//! [`PreemptMechanism`].
//!
//! Without preemption, a 580 µs SCAN at the head of the line blocks every
//! queued 1.2 µs GET. With a 5 µs quantum, GETs overtake SCANs at the
//! next timer fire; what differs between UIPI and xUI is the per-fire
//! cost charged to the worker (and whether a separate core must serve as
//! the time source).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use xui_telemetry::{Event, NullRecorder, Recorder};

use xui_core::CostModel;
use xui_des::dist::PoissonProcess;
use xui_des::stats::{Histogram, Summary};
use xui_faults::{DegradeGuard, FaultInjector, FaultPlan, PostAction};
use xui_kernel::{OsCosts, PreemptMechanism};
use xui_workloads::rocksdb::{RequestClass, RocksDbModel};

use crate::stealing::StealQueues;
use crate::uthread::{Uthread, UthreadId};

/// Configuration of a server run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Number of worker cores.
    pub workers: usize,
    /// Preemption quantum in cycles (paper: 10 000 = 5 µs).
    pub quantum: u64,
    /// Preemption mechanism.
    pub mechanism: PreemptMechanism,
    /// Offered load in requests per second (at the 2 GHz clock).
    pub rps: f64,
    /// Simulated duration in cycles.
    pub duration: u64,
    /// RNG seed.
    pub seed: u64,
    /// Service-time model.
    pub model: RocksDbModel,
}

impl ServerConfig {
    /// The paper's single-worker configuration with a 5 µs quantum.
    #[must_use]
    pub fn paper(mechanism: PreemptMechanism, rps: f64) -> Self {
        Self {
            workers: 1,
            quantum: 10_000,
            mechanism,
            rps,
            duration: 600_000_000, // 0.3 s
            seed: 42,
            model: RocksDbModel::paper(),
        }
    }
}

/// Results of a server run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReport {
    /// GET sojourn-time summary (cycles).
    pub get_latency: Summary,
    /// SCAN sojourn-time summary (cycles).
    pub scan_latency: Summary,
    /// Completed GETs.
    pub completed_gets: u64,
    /// Completed SCANs.
    pub completed_scans: u64,
    /// Requests still queued/running when the run ended.
    pub unfinished: u64,
    /// Total preemptions performed.
    pub preemptions: u64,
    /// Timer fires that did not preempt.
    pub fires_without_switch: u64,
    /// Cross-worker steals performed (multi-worker runs).
    pub steals: u64,
    /// Worker busy fraction (work + overhead).
    pub busy_fraction: f64,
    /// Achieved throughput in requests/second.
    pub achieved_rps: f64,
    /// Whether the run kept up with offered load (queue did not blow up).
    pub stable: bool,
    /// Preemption-timer fires lost, delayed or stalled by fault
    /// injection (zero in unfaulted runs).
    pub timer_faults: u64,
    /// True if consecutive timer faults crossed the plan's degrade
    /// threshold and the runtime fell back to safepoint polling for the
    /// rest of the run.
    pub degraded_to_polling: bool,
}

impl ServerReport {
    /// GET p99.9 latency in microseconds.
    #[must_use]
    pub fn get_p999_us(&self) -> f64 {
        self.get_latency.p999 as f64 / 2_000.0
    }

    /// SCAN p99 latency in microseconds.
    #[must_use]
    pub fn scan_p99_us(&self) -> f64 {
        self.scan_latency.p99 as f64 / 2_000.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrival,
    /// Periodic preemption-timer fire on a worker.
    Fire { worker: usize },
    /// The running segment on a worker completes (epoch-guarded).
    SegEnd { worker: usize, epoch: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    tid: usize,
    /// Simulation time after which service accrues (skips overhead
    /// windows).
    progress_from: u64,
    /// Time this thread was (re)dispatched, for quantum accounting.
    started_at: u64,
}

#[derive(Debug, Default)]
struct Worker {
    running: Option<Running>,
    epoch: u64,
    busy: u64,
}

/// Runs the simulation described by `cfg`.
#[must_use]
pub fn run_server(cfg: &ServerConfig) -> ServerReport {
    run_server_traced(cfg, &mut NullRecorder)
}

/// [`run_server`] with telemetry. Per worker (the event actor) this
/// records: an `arrival` instant per request (class argument: 0 = GET,
/// 1 = SCAN), a `run` span from dispatch to completion or preemption, a
/// `preempt` instant per forced switch, a `timer_fire` instant per
/// quantum fire that found work running, a `steal` instant per
/// cross-worker steal, and a `park` instant when a worker goes idle.
/// With [`NullRecorder`] the instrumentation monomorphizes away and the
/// function is the untraced simulation, result-identical by test.
#[must_use]
pub fn run_server_traced<R: Recorder>(cfg: &ServerConfig, rec: &mut R) -> ServerReport {
    run_server_impl(cfg, rec, None)
}

/// Runs the server under a fault plan: preemption-timer fires pass
/// through the plan's drop/delay/stall ops, and once the consecutive
/// fault streak crosses `plan.degrade_threshold` the runtime stops
/// trusting the interrupt path and falls back to safepoint polling
/// (fires keep the quantum cadence but bypass the injector), keeping
/// the run live instead of losing preemption entirely.
#[must_use]
pub fn run_server_faulted(cfg: &ServerConfig, plan: &FaultPlan) -> ServerReport {
    run_server_faulted_traced(cfg, plan, &mut NullRecorder)
}

/// [`run_server_faulted`] with telemetry: adds a `timer_fault` instant
/// per injected fault and a `degrade_to_polling` instant at the moment
/// the fallback engages.
#[must_use]
pub fn run_server_faulted_traced<R: Recorder>(
    cfg: &ServerConfig,
    plan: &FaultPlan,
    rec: &mut R,
) -> ServerReport {
    let mut inj = FaultInjector::new(plan);
    run_server_impl(cfg, rec, Some(&mut inj))
}

#[allow(clippy::too_many_lines)]
fn run_server_impl<R: Recorder>(
    cfg: &ServerConfig,
    rec: &mut R,
    mut faults: Option<&mut FaultInjector>,
) -> ServerReport {
    let hw = CostModel::paper();
    let os = OsCosts::paper();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = PoissonProcess::with_rate(cfg.rps / 2e9);

    let mut threads: Vec<Uthread> = Vec::new();
    // Per-worker run queues with work stealing, as in Aspen (§5.3).
    let mut queue: StealQueues<usize> = StealQueues::new(cfg.workers);
    let mut workers: Vec<Worker> = (0..cfg.workers).map(|_| Worker::default()).collect();

    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, t: u64, ev: Ev| {
        heap.push(Reverse((t, *seq, ev)));
        *seq += 1;
    };

    let mut get_latency = Histogram::new();
    let mut scan_latency = Histogram::new();
    let mut completed_gets = 0u64;
    let mut completed_scans = 0u64;
    let mut preemptions = 0u64;
    let mut fires_without_switch = 0u64;
    let mut timer_faults = 0u64;
    let mut guard = faults
        .as_ref()
        .map(|inj| DegradeGuard::new(inj.plan().degrade_threshold));

    // Prime the event queue.
    let first = arrivals.next_arrival(&mut rng);
    push(&mut heap, &mut seq, first, Ev::Arrival);
    if !matches!(cfg.mechanism, PreemptMechanism::None) {
        for w in 0..cfg.workers {
            push(&mut heap, &mut seq, cfg.quantum, Ev::Fire { worker: w });
        }
    }

    let mut last_time = 0u64;
    while let Some(Reverse((t, _, ev))) = heap.pop() {
        // Stop at the horizon: the backlog present now is the measure of
        // (in)stability, so it must not be drained after arrivals cease.
        if t > cfg.duration {
            break;
        }
        last_time = t;
        match ev {
            Ev::Arrival => {
                let (class, service) = cfg.model.sample(&mut rng);
                let tid = threads.len();
                threads.push(Uthread::new(UthreadId(tid), class, t, service));
                queue.push(tid % cfg.workers, tid);
                if rec.enabled() {
                    rec.record(
                        Event::instant(t, (tid % cfg.workers) as u32, "arrival")
                            .with_arg("class", u64::from(class == RequestClass::Scan)),
                    );
                }
                // Wake an idle worker.
                if let Some(w) = workers.iter().position(|w| w.running.is_none()) {
                    dispatch(w, t, &mut workers, &mut queue, &mut heap, &mut seq, &threads, rec);
                }
                if t < cfg.duration {
                    let next = arrivals.next_arrival(&mut rng).max(t + 1);
                    push(&mut heap, &mut seq, next, Ev::Arrival);
                }
            }
            Ev::SegEnd { worker, epoch } => {
                if workers[worker].epoch != epoch {
                    continue; // stale: the segment was interrupted
                }
                let Some(run) = workers[worker].running.take() else {
                    continue;
                };
                let thread = &mut threads[run.tid];
                workers[worker].busy += t.saturating_sub(run.progress_from.min(t));
                thread.remaining = 0;
                let sojourn = t - thread.arrived_at;
                match thread.class {
                    RequestClass::Get => {
                        get_latency.record(sojourn);
                        completed_gets += 1;
                    }
                    RequestClass::Scan => {
                        scan_latency.record(sojourn);
                        completed_scans += 1;
                    }
                }
                if rec.enabled() {
                    rec.record(
                        Event::end(t, worker as u32, "run")
                            .with_arg("tid", run.tid as u64)
                            .with_arg("sojourn", sojourn),
                    );
                }
                dispatch(worker, t, &mut workers, &mut queue, &mut heap, &mut seq, &threads, rec);
            }
            Ev::Fire { worker } => {
                // Fault injection on the interrupt path: the fire may be
                // stalled (timer core), dropped or delayed (the notify
                // post). Once the consecutive-fault streak crosses the
                // plan threshold the worker degrades to safepoint
                // polling — fires keep their cadence but no longer
                // touch the (faulty) interrupt fabric.
                if let Some(inj) = faults.as_deref_mut() {
                    let degraded = guard.as_ref().is_some_and(DegradeGuard::degraded);
                    if !degraded {
                        let slipped = inj.timer_fire_at(t);
                        let resched = if slipped > t {
                            Some(slipped)
                        } else {
                            match inj.on_post(t) {
                                PostAction::Drop => Some(t + cfg.quantum),
                                PostAction::Delay(by) => Some(t + by.max(1)),
                                // Duplicate fires coalesce in the UIRR:
                                // a second post of the same vector is a
                                // no-op, so both deliver exactly once.
                                PostAction::Deliver | PostAction::Duplicate => None,
                            }
                        };
                        if let Some(mut at) = resched {
                            timer_faults += 1;
                            rec.instant(t, worker as u32, "timer_fault");
                            if guard.as_mut().is_some_and(DegradeGuard::fault) {
                                // Fallback engages now: resume the plain
                                // quantum cadence immediately.
                                rec.instant(t, worker as u32, "degrade_to_polling");
                                at = t + cfg.quantum;
                            }
                            if at < cfg.duration.saturating_add(cfg.quantum * 4) {
                                push(&mut heap, &mut seq, at, Ev::Fire { worker });
                            }
                            continue;
                        }
                        if let Some(g) = guard.as_mut() {
                            g.ok();
                        }
                    }
                }
                // The periodic preemption timer (KB_Timer or SW timer
                // core) fires every quantum of wall-clock time.
                if t < cfg.duration.saturating_add(cfg.quantum * 4) {
                    push(&mut heap, &mut seq, t + cfg.quantum, Ev::Fire { worker });
                }
                let Some(run) = workers[worker].running else {
                    continue; // idle worker: timer masked/parked
                };
                if t <= run.progress_from {
                    continue; // still inside an overhead window
                }
                rec.instant(t, worker as u32, "timer_fire");
                let executed = t - run.progress_from;
                let ran_long_enough = t.saturating_sub(run.started_at) >= cfg.quantum;
                let should_switch = ran_long_enough && !queue.is_empty();
                // (stealing makes any queued thread reachable from here)
                let tid = run.tid;
                if should_switch {
                    // Preempt: charge delivery + scheduler + uthread
                    // switch, requeue at the tail, run the next thread.
                    let cost = cfg.mechanism.preemption_cost(&hw, &os);
                    preemptions += 1;
                    threads[tid].run_for(executed);
                    threads[tid].preemptions += 1;
                    workers[worker].busy += executed + cost;
                    workers[worker].epoch += 1;
                    workers[worker].running = None;
                    queue.push(worker, tid);
                    if rec.enabled() {
                        rec.record(Event::end(t, worker as u32, "run").with_arg("tid", tid as u64));
                        rec.record(
                            Event::instant(t, worker as u32, "preempt")
                                .with_arg("tid", tid as u64)
                                .with_arg("cost", cost),
                        );
                    }
                    dispatch_at(
                        worker,
                        t + cost,
                        &mut workers,
                        &mut queue,
                        &mut heap,
                        &mut seq,
                        &threads,
                        rec,
                    );
                } else {
                    // Fire without a switch: the handler runs, decides to
                    // resume the same thread; only the delivery +
                    // scheduler check are charged.
                    let cost = cfg.mechanism.fire_only_cost(&hw, &os);
                    fires_without_switch += 1;
                    threads[tid].run_for(executed);
                    workers[worker].busy += executed + cost;
                    workers[worker].epoch += 1;
                    let remaining = threads[tid].remaining;
                    let epoch = workers[worker].epoch;
                    workers[worker].running = Some(Running {
                        tid,
                        progress_from: t + cost,
                        started_at: run.started_at,
                    });
                    push(
                        &mut heap,
                        &mut seq,
                        t + cost + remaining,
                        Ev::SegEnd { worker, epoch },
                    );
                }
            }
        }
        if heap.is_empty() {
            break;
        }
    }

    let unfinished = queue.total_len() as u64
        + workers.iter().filter(|w| w.running.is_some()).count() as u64;
    let total_busy: u64 = workers.iter().map(|w| w.busy).sum();
    let span = last_time.max(1) * cfg.workers as u64;
    let completed = completed_gets + completed_scans;
    let achieved_rps = completed as f64 / (last_time.max(1) as f64 / 2e9);
    // Stability heuristic: nearly everything offered got served.
    let stable = unfinished <= 2 + completed / 500;

    ServerReport {
        get_latency: get_latency.summary(),
        scan_latency: scan_latency.summary(),
        completed_gets,
        completed_scans,
        unfinished,
        preemptions,
        fires_without_switch,
        steals: queue.steals,
        busy_fraction: (total_busy as f64 / span as f64).min(1.0),
        achieved_rps,
        stable,
        timer_faults,
        degraded_to_polling: guard.as_ref().is_some_and(DegradeGuard::degraded),
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch<R: Recorder>(
    worker: usize,
    t: u64,
    workers: &mut [Worker],
    queue: &mut StealQueues<usize>,
    heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: &mut u64,
    threads: &[Uthread],
    rec: &mut R,
) {
    dispatch_at(worker, t, workers, queue, heap, seq, threads, rec);
}

#[allow(clippy::too_many_arguments)]
fn dispatch_at<R: Recorder>(
    worker: usize,
    t: u64,
    workers: &mut [Worker],
    queue: &mut StealQueues<usize>,
    heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: &mut u64,
    threads: &[Uthread],
    rec: &mut R,
) {
    // FIFO from the worker's own queue for fairness; steal the oldest
    // work from the most loaded peer when idle.
    let steals_before = queue.steals;
    let Some(tid) = queue.pop_fifo_or_steal(worker) else {
        rec.instant(t, worker as u32, "park");
        return;
    };
    if rec.enabled() {
        if queue.steals > steals_before {
            rec.instant(t, worker as u32, "steal");
        }
        rec.record(Event::begin(t, worker as u32, "run").with_arg("tid", tid as u64));
    }
    workers[worker].epoch += 1;
    let epoch = workers[worker].epoch;
    workers[worker].running = Some(Running {
        tid,
        progress_from: t,
        started_at: t,
    });
    let remaining = threads[tid].remaining;
    heap.push(Reverse((t + remaining, *seq, Ev::SegEnd { worker, epoch })));
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mechanism: PreemptMechanism, rps: f64) -> ServerReport {
        let mut cfg = ServerConfig::paper(mechanism, rps);
        cfg.duration = 120_000_000; // 60 ms
        run_server(&cfg)
    }

    #[test]
    fn low_load_everything_completes() {
        let r = quick(PreemptMechanism::None, 20_000.0);
        assert!(r.stable);
        assert!(r.completed_gets > 500);
        assert!(r.get_latency.p50 >= 2_400, "at least the service time");
    }

    #[test]
    fn no_preemption_suffers_head_of_line_blocking() {
        // Even at low load, GETs stuck behind a 580 µs SCAN see huge
        // tails (paper: "hundreds of microseconds, even under very low
        // load").
        let none = quick(PreemptMechanism::None, 50_000.0);
        let xui = quick(PreemptMechanism::XuiKbTimer, 50_000.0);
        assert!(
            none.get_latency.p999 > 200_000,
            "no-preempt GET p999 should exceed 100 µs: {}",
            none.get_latency.p999
        );
        assert!(
            xui.get_latency.p999 < none.get_latency.p999 / 4,
            "preemption mitigates HoL blocking: {} vs {}",
            xui.get_latency.p999,
            none.get_latency.p999
        );
        assert!(xui.preemptions > 0);
    }

    #[test]
    fn xui_has_lower_overhead_than_uipi() {
        // Same load, same quantum: xUI charges less per fire, so the
        // worker is less busy.
        let uipi = quick(PreemptMechanism::UipiSwTimer, 100_000.0);
        let xui = quick(PreemptMechanism::XuiKbTimer, 100_000.0);
        assert!(uipi.stable && xui.stable);
        assert!(
            xui.busy_fraction < uipi.busy_fraction,
            "xUI {} < UIPI {}",
            xui.busy_fraction,
            uipi.busy_fraction
        );
    }

    #[test]
    fn overload_is_reported_unstable() {
        // Saturation is ≈245 k rps; 400 k cannot keep up.
        let r = quick(PreemptMechanism::XuiKbTimer, 400_000.0);
        assert!(!r.stable);
        assert!(r.unfinished > 0);
    }

    #[test]
    fn scans_are_preempted_many_times() {
        let r = quick(PreemptMechanism::XuiKbTimer, 120_000.0);
        assert!(r.completed_scans > 0);
        // A 580 µs scan at a 5 µs quantum with queued GETs gets sliced.
        assert!(
            r.preemptions >= r.completed_scans * 10,
            "preemptions={} scans={}",
            r.preemptions,
            r.completed_scans
        );
    }

    #[test]
    fn traced_run_is_result_identical_and_balanced() {
        let mut cfg = ServerConfig::paper(PreemptMechanism::XuiKbTimer, 80_000.0);
        cfg.duration = 20_000_000; // 10 ms
        let untraced = run_server(&cfg);
        let mut rec = xui_telemetry::RingRecorder::new(1 << 20);
        let traced = run_server_traced(&cfg, &mut rec);
        assert_eq!(traced.completed_gets, untraced.completed_gets);
        assert_eq!(traced.preemptions, untraced.preemptions);
        assert_eq!(traced.get_latency.p999, untraced.get_latency.p999);

        let events = rec.events();
        assert_eq!(rec.dropped(), 0, "ring must hold the whole short run");
        let count = |name: &str| events.iter().filter(|e| e.name == name).count() as u64;
        assert_eq!(
            count("arrival"),
            untraced.completed_gets + untraced.completed_scans + untraced.unfinished
        );
        assert_eq!(count("preempt"), untraced.preemptions);
        assert!(count("run") >= 2, "begin+end run spans present");
        // Export balances (auto-closing any span still open at horizon).
        let doc = xui_telemetry::chrome::trace_json(&events);
        let check = xui_telemetry::chrome::validate(&doc).expect("valid server trace");
        assert!(check.span_pairs > 0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = quick(PreemptMechanism::XuiKbTimer, 80_000.0);
        let b = quick(PreemptMechanism::XuiKbTimer, 80_000.0);
        assert_eq!(a.completed_gets, b.completed_gets);
        assert_eq!(a.get_latency.p999, b.get_latency.p999);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn two_workers_halve_the_load_per_worker() {
        let mut cfg = ServerConfig::paper(PreemptMechanism::XuiKbTimer, 150_000.0);
        cfg.duration = 120_000_000;
        let one = run_server(&cfg);
        cfg.workers = 2;
        let two = run_server(&cfg);
        assert!(two.busy_fraction < one.busy_fraction);
        assert!(two.stable);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    fn cfg(rps: f64) -> ServerConfig {
        let mut cfg = ServerConfig::paper(PreemptMechanism::XuiKbTimer, rps);
        cfg.duration = 60_000_000; // 30 ms
        cfg
    }

    #[test]
    fn empty_plan_is_result_identical_to_unfaulted() {
        let cfg = cfg(80_000.0);
        let clean = run_server(&cfg);
        let faulted = run_server_faulted(&cfg, &FaultPlan::named("empty"));
        assert_eq!(faulted.completed_gets, clean.completed_gets);
        assert_eq!(faulted.preemptions, clean.preemptions);
        assert_eq!(faulted.get_latency.p999, clean.get_latency.p999);
        assert_eq!(faulted.timer_faults, 0);
        assert!(!faulted.degraded_to_polling);
    }

    #[test]
    fn dropped_fires_hurt_tails_but_do_not_panic() {
        let cfg = cfg(100_000.0);
        let clean = run_server(&cfg);
        // Drop two of every three timer fires; threshold never trips.
        let plan = FaultPlan::named("drop-fires").drop_every(3, 1).drop_every(3, 2);
        let r = run_server_faulted(&cfg, &plan);
        assert!(r.timer_faults > 100, "faults counted: {}", r.timer_faults);
        assert!(!r.degraded_to_polling, "threshold u32::MAX never trips");
        assert!(
            r.preemptions < clean.preemptions,
            "lost fires preempt less: {} vs {}",
            r.preemptions,
            clean.preemptions
        );
        assert!(r.completed_gets > 0, "run stays live");
    }

    #[test]
    fn persistent_faults_degrade_to_polling_and_stay_live() {
        let cfg = cfg(100_000.0);
        // Every fire faults: without fallback there would be no
        // preemption at all. The guard trips after 8 consecutive faults
        // and safepoint polling restores the quantum cadence.
        let plan = FaultPlan::named("dead-timer").drop_every(1, 1).degrade_after(8);
        let r = run_server_faulted(&cfg, &plan);
        assert!(r.degraded_to_polling, "guard must trip");
        assert_eq!(r.timer_faults, 8, "exactly the streak before the trip");
        assert!(r.preemptions > 100, "polling fallback still preempts");
        assert!(r.stable, "fallback keeps the server ahead of load");
    }

    #[test]
    fn stalled_timer_slips_fires_deterministically() {
        let cfg = cfg(80_000.0);
        let plan = FaultPlan::named("stall").stall_timer(5_000_000, 15_000_000);
        let a = run_server_faulted(&cfg, &plan);
        let b = run_server_faulted(&cfg, &plan);
        assert!(a.timer_faults > 0, "in-window fires stall");
        assert_eq!(a.timer_faults, b.timer_faults);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.get_latency.p999, b.get_latency.p999);
    }

    #[test]
    fn faulted_trace_records_fault_instants() {
        let mut c = cfg(80_000.0);
        c.duration = 10_000_000;
        let plan = FaultPlan::named("dead-timer").drop_every(1, 1).degrade_after(4);
        let mut rec = xui_telemetry::RingRecorder::new(1 << 20);
        let r = run_server_faulted_traced(&c, &plan, &mut rec);
        let events = rec.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count() as u64;
        assert_eq!(count("timer_fault"), r.timer_faults);
        assert_eq!(count("degrade_to_polling"), 1);
    }
}

#[cfg(test)]
mod stealing_tests {
    use super::*;

    #[test]
    fn multi_worker_steals_balance_load() {
        // Two workers, all arrivals land round-robin; stealing keeps both
        // busy even when one queue empties first.
        let mut cfg = ServerConfig::paper(PreemptMechanism::XuiKbTimer, 300_000.0);
        cfg.workers = 2;
        cfg.duration = 120_000_000;
        let r = run_server(&cfg);
        assert!(r.stable, "two workers absorb 300k rps");
        assert!(r.steals > 0, "idle workers steal queued requests");
        assert!(r.completed_gets > 10_000);
    }

    #[test]
    fn stealing_preserves_tail_latency_benefits() {
        let mut one = ServerConfig::paper(PreemptMechanism::XuiKbTimer, 200_000.0);
        one.duration = 120_000_000;
        let mut two = one.clone();
        two.workers = 2;
        let r1 = run_server(&one);
        let r2 = run_server(&two);
        assert!(
            r2.get_latency.p999 <= r1.get_latency.p999,
            "a second worker cannot hurt tails: {} vs {}",
            r2.get_latency.p999,
            r1.get_latency.p999
        );
    }
}
