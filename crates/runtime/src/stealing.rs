//! A work-stealing run-queue set, modelling Aspen's load balancing
//! ("balances threads across cores using work stealing", §5.3).
//!
//! Owners push/pop at the back of their own deque (LIFO for locality);
//! thieves steal from the front of the victim's deque (FIFO — oldest
//! work first).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A set of per-worker deques with stealing.
///
/// # Examples
///
/// ```
/// use xui_runtime::stealing::StealQueues;
///
/// let mut q: StealQueues<u32> = StealQueues::new(2);
/// q.push(0, 1);
/// q.push(0, 2);
/// assert_eq!(q.pop(0), Some(2), "owner pops LIFO");
/// assert_eq!(q.steal(1), Some(1), "thief steals the oldest");
/// assert_eq!(q.pop(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealQueues<T> {
    queues: Vec<VecDeque<T>>,
    /// Steals performed (diagnostics).
    pub steals: u64,
}

impl<T> StealQueues<T> {
    /// Creates `workers` empty queues.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            queues: (0..workers).map(|_| VecDeque::new()).collect(),
            steals: 0,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pushes work onto `worker`'s own queue.
    pub fn push(&mut self, worker: usize, item: T) {
        self.queues[worker].push_back(item);
    }

    /// Owner pop: newest-first from the worker's own queue (locality).
    pub fn pop(&mut self, worker: usize) -> Option<T> {
        self.queues[worker].pop_back()
    }

    /// Owner pop, oldest-first — what a fairness-oriented request
    /// scheduler wants.
    pub fn pop_fifo(&mut self, worker: usize) -> Option<T> {
        self.queues[worker].pop_front()
    }

    /// Steals the oldest item from the most-loaded other queue.
    pub fn steal(&mut self, thief: usize) -> Option<T> {
        let victim = (0..self.queues.len())
            .filter(|&w| w != thief && !self.queues[w].is_empty())
            .max_by_key(|&w| self.queues[w].len())?;
        self.steals += 1;
        self.queues[victim].pop_front()
    }

    /// Owner pop, falling back to stealing when the local queue is empty.
    pub fn pop_or_steal(&mut self, worker: usize) -> Option<T> {
        self.pop(worker).or_else(|| self.steal(worker))
    }

    /// FIFO owner pop, falling back to stealing.
    pub fn pop_fifo_or_steal(&mut self, worker: usize) -> Option<T> {
        self.pop_fifo(worker).or_else(|| self.steal(worker))
    }

    /// Items queued at `worker`.
    #[must_use]
    pub fn len(&self, worker: usize) -> usize {
        self.queues[worker].len()
    }

    /// Total queued items.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True if every queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_targets_the_most_loaded_victim() {
        let mut q: StealQueues<u32> = StealQueues::new(3);
        q.push(0, 1);
        q.push(2, 10);
        q.push(2, 11);
        q.push(2, 12);
        assert_eq!(q.steal(1), Some(10), "steals oldest from worker 2");
        assert_eq!(q.len(2), 2);
        assert_eq!(q.steals, 1);
    }

    #[test]
    fn thief_never_steals_from_itself() {
        let mut q: StealQueues<u32> = StealQueues::new(2);
        q.push(1, 5);
        assert_eq!(q.steal(1), None);
        assert_eq!(q.pop(1), Some(5));
    }

    #[test]
    fn pop_or_steal_drains_everything() {
        let mut q: StealQueues<u32> = StealQueues::new(4);
        for w in 0..4 {
            for i in 0..5 {
                q.push(w, (w * 10 + i) as u32);
            }
        }
        let mut seen = Vec::new();
        // Worker 3 drains the whole system.
        while let Some(v) = q.pop_or_steal(3) {
            seen.push(v);
        }
        assert_eq!(seen.len(), 20);
        assert!(q.is_empty());
        assert_eq!(q.total_len(), 0);
        assert!(q.steals >= 15, "most items were stolen");
    }

    #[test]
    fn empty_set_behaves() {
        let mut q: StealQueues<u32> = StealQueues::new(1);
        assert!(q.is_empty());
        assert_eq!(q.pop(0), None);
        assert_eq!(q.steal(0), None);
        assert_eq!(q.pop_or_steal(0), None);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Work conservation: everything pushed is popped exactly once,
        /// regardless of the interleaving of pops and steals.
        #[test]
        fn work_is_conserved(
            pushes in proptest::collection::vec((0usize..4, 0u32..1000), 0..100),
            drain_order in proptest::collection::vec(0usize..4, 0..400),
        ) {
            let mut q: StealQueues<u32> = StealQueues::new(4);
            let mut pushed = Vec::new();
            for (w, v) in pushes {
                q.push(w, v);
                pushed.push(v);
            }
            let mut drained = Vec::new();
            for w in drain_order {
                if let Some(v) = q.pop_or_steal(w) {
                    drained.push(v);
                }
            }
            while let Some(v) = q.pop_or_steal(0) {
                drained.push(v);
            }
            pushed.sort_unstable();
            drained.sort_unstable();
            prop_assert_eq!(pushed, drained);
        }
    }
}
