//! User-level threads (uthreads) as scheduled entities: one per in-flight
//! request in the Aspen-like runtime model.

use serde::{Deserialize, Serialize};

use xui_workloads::rocksdb::RequestClass;

/// Identifier of a user-level thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UthreadId(pub usize);

/// A user-level thread serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uthread {
    /// Thread id.
    pub id: UthreadId,
    /// Request class (GET or SCAN).
    pub class: RequestClass,
    /// Arrival time in cycles.
    pub arrived_at: u64,
    /// Total service demand in cycles.
    pub service: u64,
    /// Remaining service demand in cycles.
    pub remaining: u64,
    /// Number of times this thread has been preempted.
    pub preemptions: u32,
}

impl Uthread {
    /// Creates a thread for a freshly arrived request.
    #[must_use]
    pub fn new(id: UthreadId, class: RequestClass, arrived_at: u64, service: u64) -> Self {
        Self {
            id,
            class,
            arrived_at,
            service,
            remaining: service,
            preemptions: 0,
        }
    }

    /// True once the request has been fully served.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Consumes up to `cycles` of service; returns how much was consumed.
    pub fn run_for(&mut self, cycles: u64) -> u64 {
        let used = cycles.min(self.remaining);
        self.remaining -= used;
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_consumes_and_clamps() {
        let mut t = Uthread::new(UthreadId(0), RequestClass::Get, 100, 2_400);
        assert!(!t.is_done());
        assert_eq!(t.run_for(1_000), 1_000);
        assert_eq!(t.remaining, 1_400);
        assert_eq!(t.run_for(5_000), 1_400, "clamped to remaining");
        assert!(t.is_done());
        assert_eq!(t.run_for(10), 0);
    }
}
