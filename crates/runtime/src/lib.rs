//! # xui-runtime
//!
//! An Aspen-like user-level runtime model (§5.3): user threads
//! ([`uthread`]), work-stealing run queues ([`stealing`]), and the
//! preemptive request server of Figure 7 ([`server`]), which compares
//! no-preemption, UIPI-software-timer, and xUI-KB_Timer scheduling of
//! the paper's bimodal RocksDB workload under open-loop Poisson load.
//! [`tenants`] scales the model out: N tenant runtimes multiplexed
//! onto shared cores (KB_Timer multiplexing, §4.3), driven by
//! batch-drawn million-client arrival streams on the DES engine.
//! [`worstcase`] stresses the latency envelope: mixed-criticality
//! senders sharing a receiver with bulk interferer tenants, verdicted
//! through the fault checker's bounded-latency obligations.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod stealing;
pub mod tenants;
pub mod uthread;
pub mod worstcase;

pub use server::{run_server, run_server_faulted, ServerConfig, ServerReport};
pub use stealing::StealQueues;
pub use tenants::{
    run_multi_tenant, run_multi_tenant_metrics, MultiTenantConfig, MultiTenantReport,
    TenantSummary,
};
pub use uthread::{Uthread, UthreadId};
pub use worstcase::{
    run_worst_case, CriticalityMix, InterferenceKind, WorstCaseConfig, WorstCaseReport,
    HIGH_VECTOR,
};
