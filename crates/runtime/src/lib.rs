//! # xui-runtime
//!
//! An Aspen-like user-level runtime model (§5.3): user threads
//! ([`uthread`]), work-stealing run queues ([`stealing`]), and the
//! preemptive request server of Figure 7 ([`server`]), which compares
//! no-preemption, UIPI-software-timer, and xUI-KB_Timer scheduling of
//! the paper's bimodal RocksDB workload under open-loop Poisson load.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod stealing;
pub mod uthread;

pub use server::{run_server, run_server_faulted, ServerConfig, ServerReport};
pub use stealing::StealQueues;
pub use uthread::{Uthread, UthreadId};
