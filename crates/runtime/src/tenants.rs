//! A datacenter-scale extension of the §5.3 runtime model: N tenant
//! runtimes multiplexed onto shared cores, each driven by the
//! aggregated open-loop stream of a large modeled client population.
//!
//! Two things distinguish this from the single-tenant server of
//! [`crate::server`]:
//!
//! - **KB_Timer multiplexing (§4.3).** Every core carries *one*
//!   preemption time source shared by all tenants resident on it — for
//!   xUI that is the core's own KB_Timer, which the kernel already
//!   multiplexes across contexts, so tenancy adds no timer hardware and
//!   no timer cores; for UIPI it is the dedicated software-timer core
//!   posting to whichever tenant currently runs. The per-fire cost
//!   charged to the running tenant is the mechanism's, once per fire,
//!   regardless of how many tenants share the core.
//! - **Batched arrival generation.** Each tenant's million-client
//!   stream is pre-drawn in chunks ([`ArrivalBatcher`]); one engine
//!   event loads a whole batch into the tenant's arrival buffer and
//!   matured arrivals are admitted at dispatch points, so the event
//!   engine pays one schedule per *batch*, not one per packet. Idle
//!   cores arm a single cancellable wake event at the next buffered
//!   arrival — cancellations exercise the engine's tombstone path.
//!
//! Unlike the server model's inline event heap, this model runs on
//! [`xui_des::Engine`] — it is the first consumer of the tiered
//! calendar queue at workload scale, and its reports expose the
//! engine's executed-event and queue-tier diagnostics.
//!
//! Per-tenant accounting flows through the telemetry metrics registry:
//! every tenant owns a scoped [`MetricsShard`] (counters `arrivals`,
//! `completed`, `preemptions`; histogram `sojourn_cycles`), merged
//! deterministically into one [`Registry`] snapshot after the run.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use xui_core::CostModel;
use xui_des::stats::Summary;
use xui_des::{Engine, EventId};
use xui_kernel::{OsCosts, PreemptMechanism};
use xui_telemetry::{MetricsShard, MetricsSnapshot, Registry};
use xui_workloads::openloop::{ArrivalBatcher, ClientPopulation};
use xui_workloads::rocksdb::RocksDbModel;

use crate::uthread::{Uthread, UthreadId};

/// Configuration of a multi-tenant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantConfig {
    /// Number of tenant runtimes (round-robin over `cores`).
    pub tenants: usize,
    /// Number of shared application cores.
    pub cores: usize,
    /// Per-tenant client population (aggregated into one Poisson
    /// stream per tenant).
    pub population: ClientPopulation,
    /// Preemption mechanism shared by every core.
    pub mechanism: PreemptMechanism,
    /// Preemption quantum in cycles (paper: 10 000 = 5 µs).
    pub quantum: u64,
    /// Simulated duration in cycles.
    pub duration: u64,
    /// Arrivals pre-drawn per batch event.
    pub arrival_batch: usize,
    /// RNG seed (tenant streams are derived sub-seeds).
    pub seed: u64,
    /// Service-time model.
    pub model: RocksDbModel,
}

impl MultiTenantConfig {
    /// Paper-flavoured defaults: 5 µs quantum, bimodal RocksDB service,
    /// 1024-arrival batches, 50 ms horizon.
    #[must_use]
    pub fn paper(
        tenants: usize,
        cores: usize,
        population: ClientPopulation,
        mechanism: PreemptMechanism,
    ) -> Self {
        Self {
            tenants,
            cores,
            population,
            mechanism,
            quantum: 10_000,
            duration: 100_000_000, // 50 ms
            arrival_batch: 1024,
            seed: 42,
            model: RocksDbModel::paper(),
        }
    }
}

/// Per-tenant results (derived from the tenant's metrics shard).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Requests admitted within the horizon.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Preemptions suffered by this tenant's requests.
    pub preemptions: u64,
    /// Sojourn-time summary in cycles (all request classes).
    pub sojourn: Summary,
}

/// Results of a multi-tenant run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiTenantReport {
    /// Per-tenant summaries, tenant-index order.
    pub tenants: Vec<TenantSummary>,
    /// Total completed requests.
    pub completed: u64,
    /// Requests still queued/running at the horizon.
    pub unfinished: u64,
    /// Total preemptions.
    pub preemptions: u64,
    /// Timer fires that did not switch.
    pub fires_without_switch: u64,
    /// Arrival batches loaded (engine events spent on arrivals).
    pub arrival_batches: u64,
    /// Idle-core wake events armed.
    pub idle_wakes: u64,
    /// Timer fire events executed (quantum ticks across all cores).
    pub timer_fires: u64,
    /// Events the DES engine executed end to end.
    pub engine_events: u64,
    /// Peak pending events observed in the engine.
    pub peak_pending: usize,
    /// Queue tier the engine finished in (`"heap"` or `"calendar"`).
    pub queue_tier: String,
    /// Mean core busy fraction (service + mechanism overhead).
    pub busy_fraction: f64,
    /// Achieved throughput in requests/second.
    pub achieved_rps: f64,
    /// Max/min ratio of per-tenant p99 sojourn (1.0 = perfectly fair).
    pub fairness_p99: f64,
    /// Whether every tenant kept up with its offered load.
    pub stable: bool,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    tid: usize,
    /// Service accrues after this time (skips overhead windows).
    progress_from: u64,
    /// Dispatch time, for quantum accounting.
    started_at: u64,
}

struct Tenant {
    batcher: ArrivalBatcher,
    rng: StdRng,
    /// Pre-drawn arrival times not yet admitted (ascending).
    future: VecDeque<u64>,
    /// Scoped metrics shard: the tenant's system of record.
    metrics: MetricsShard,
    more_batches: bool,
}

struct Core {
    /// Tenant indices resident on this core.
    tenants: Vec<usize>,
    /// FIFO run queue of thread ids.
    queue: VecDeque<usize>,
    running: Option<Running>,
    epoch: u64,
    busy: u64,
    wake: Option<EventId>,
}

struct World {
    cfg: MultiTenantConfig,
    hw: CostModel,
    os: OsCosts,
    tenants: Vec<Tenant>,
    cores: Vec<Core>,
    threads: Vec<Uthread>,
    thread_tenant: Vec<u32>,
    preemptions: u64,
    fires_without_switch: u64,
    arrival_batches: u64,
    idle_wakes: u64,
    timer_fires: u64,
    peak_pending: usize,
}

/// SplitMix64: derives independent per-tenant sub-seeds.
fn sub_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the multi-tenant simulation; drops the metrics snapshot.
#[must_use]
pub fn run_multi_tenant(cfg: &MultiTenantConfig) -> MultiTenantReport {
    run_multi_tenant_metrics(cfg).0
}

/// Runs the multi-tenant simulation and returns the merged metrics
/// registry snapshot alongside the report (one scoped shard per tenant,
/// merged in tenant order — deterministic for any worker count).
///
/// # Panics
///
/// Panics if the configuration has zero tenants, cores, or batch size.
#[must_use]
pub fn run_multi_tenant_metrics(cfg: &MultiTenantConfig) -> (MultiTenantReport, MetricsSnapshot) {
    assert!(cfg.tenants > 0, "at least one tenant");
    assert!(cfg.cores > 0, "at least one core");

    let mut world = World {
        cfg: cfg.clone(),
        hw: CostModel::paper(),
        os: OsCosts::paper(),
        tenants: (0..cfg.tenants)
            .map(|i| Tenant {
                batcher: ArrivalBatcher::new(cfg.population, cfg.arrival_batch),
                rng: StdRng::seed_from_u64(sub_seed(cfg.seed, i as u64 + 1)),
                future: VecDeque::new(),
                metrics: MetricsShard::scoped(&format!("tenant{i}")),
                more_batches: true,
            })
            .collect(),
        cores: (0..cfg.cores)
            .map(|c| Core {
                tenants: (0..cfg.tenants).filter(|t| t % cfg.cores == c).collect(),
                queue: VecDeque::new(),
                running: None,
                epoch: 0,
                busy: 0,
                wake: None,
            })
            .collect(),
        threads: Vec::new(),
        thread_tenant: Vec::new(),
        preemptions: 0,
        fires_without_switch: 0,
        arrival_batches: 0,
        idle_wakes: 0,
        timer_fires: 0,
        peak_pending: 0,
    };

    let mut engine: Engine<World> = Engine::new();
    for t in 0..cfg.tenants {
        engine.schedule_at(0, move |w: &mut World, eng: &mut Engine<World>| {
            load_batch(t, w, eng);
        });
    }
    if !matches!(cfg.mechanism, PreemptMechanism::None) {
        for c in 0..cfg.cores {
            engine.schedule_at(cfg.quantum, move |w: &mut World, eng: &mut Engine<World>| {
                timer_fire(c, w, eng);
            });
        }
    }
    engine.run_until(&mut world, cfg.duration);

    let unfinished = world.cores.iter().map(|c| c.queue.len()).sum::<usize>() as u64
        + world.cores.iter().filter(|c| c.running.is_some()).count() as u64;
    let tenants: Vec<TenantSummary> = world
        .tenants
        .iter()
        .map(|t| TenantSummary {
            arrivals: t.metrics.counter_value("arrivals"),
            completed: t.metrics.counter_value("completed"),
            preemptions: t.metrics.counter_value("preemptions"),
            sojourn: t
                .metrics
                .histogram("sojourn_cycles")
                .map(xui_des::stats::Histogram::summary)
                .unwrap_or_else(|| xui_des::stats::Histogram::new().summary()),
        })
        .collect();
    let completed: u64 = tenants.iter().map(|t| t.completed).sum();
    let total_busy: u64 = world.cores.iter().map(|c| c.busy).sum();
    let span = cfg.duration.max(1) * cfg.cores as u64;
    let p99s: Vec<u64> = tenants
        .iter()
        .filter(|t| t.completed > 0)
        .map(|t| t.sojourn.p99.max(1))
        .collect();
    let fairness_p99 = match (p99s.iter().max(), p99s.iter().min()) {
        (Some(&max), Some(&min)) => max as f64 / min as f64,
        _ => 1.0,
    };

    let mut registry = Registry::new();
    for t in world.tenants {
        registry.push_shard(t.metrics);
    }
    let snapshot = registry.snapshot();

    let report = MultiTenantReport {
        tenants,
        completed,
        unfinished,
        preemptions: world.preemptions,
        fires_without_switch: world.fires_without_switch,
        arrival_batches: world.arrival_batches,
        idle_wakes: world.idle_wakes,
        timer_fires: world.timer_fires,
        engine_events: engine.executed(),
        peak_pending: world.peak_pending,
        queue_tier: engine.queue_tier().to_string(),
        busy_fraction: (total_busy as f64 / span as f64).min(1.0),
        achieved_rps: completed as f64 / (cfg.duration.max(1) as f64 / 2e9),
        fairness_p99,
        stable: unfinished <= 2 + completed / 500,
    };
    (report, snapshot)
}

/// Loads the tenant's next pre-drawn batch into its arrival buffer and
/// schedules the following load at this batch's last arrival — one
/// engine event per `arrival_batch` arrivals.
fn load_batch(t: usize, w: &mut World, eng: &mut Engine<World>) {
    w.arrival_batches += 1;
    w.peak_pending = w.peak_pending.max(eng.pending());
    let tenant = &mut w.tenants[t];
    let times = tenant.batcher.draw(&mut tenant.rng);
    let last = times.last().copied().unwrap_or(0);
    tenant.future.extend(times.iter().copied());
    if last < w.cfg.duration {
        eng.schedule_at(last.max(eng.now() + 1), move |w: &mut World, eng: &mut Engine<World>| {
            load_batch(t, w, eng);
        });
    } else {
        tenant.more_batches = false;
    }
    let core = t % w.cfg.cores;
    if w.cores[core].running.is_none() {
        dispatch(core, eng.now(), w, eng);
    }
}

/// Admits every buffered arrival that has matured on this core's
/// resident tenants: samples service, creates the uthread, queues it.
fn admit_matured(core: usize, now: u64, w: &mut World) {
    for i in 0..w.cores[core].tenants.len() {
        let t = w.cores[core].tenants[i];
        let tenant = &mut w.tenants[t];
        while tenant.future.front().is_some_and(|&at| at <= now) {
            let arrived = tenant.future.pop_front().unwrap_or(now);
            let (class, service) = w.cfg.model.sample(&mut tenant.rng);
            tenant.metrics.inc("arrivals", 1);
            let tid = w.threads.len();
            w.threads.push(Uthread::new(UthreadId(tid), class, arrived, service));
            w.thread_tenant.push(t as u32);
            w.cores[core].queue.push_back(tid);
        }
    }
}

/// Runs the next queued request on an idle core, or arms a wake at the
/// next buffered arrival when nothing has matured yet.
fn dispatch(core: usize, t: u64, w: &mut World, eng: &mut Engine<World>) {
    admit_matured(core, t, w);
    if let Some(id) = w.cores[core].wake.take() {
        eng.cancel(id); // the wake is stale whatever happens next
    }
    let Some(tid) = w.cores[core].queue.pop_front() else {
        // Idle: arm one cancellable wake at the earliest buffered
        // arrival across resident tenants (if any batch is loaded).
        let next = w.cores[core]
            .tenants
            .iter()
            .filter_map(|&ti| w.tenants[ti].future.front().copied())
            .min();
        if let Some(at) = next {
            w.idle_wakes += 1;
            let id = eng.schedule_at(at.max(t), move |w: &mut World, eng: &mut Engine<World>| {
                w.cores[core].wake = None;
                if w.cores[core].running.is_none() {
                    dispatch(core, eng.now(), w, eng);
                }
            });
            w.cores[core].wake = Some(id);
        }
        return;
    };
    w.cores[core].epoch += 1;
    let epoch = w.cores[core].epoch;
    w.cores[core].running = Some(Running { tid, progress_from: t, started_at: t });
    let remaining = w.threads[tid].remaining;
    eng.schedule_at(t + remaining, move |w: &mut World, eng: &mut Engine<World>| {
        seg_end(core, epoch, w, eng);
    });
}

/// The running segment completed (epoch-guarded against preemption).
fn seg_end(core: usize, epoch: u64, w: &mut World, eng: &mut Engine<World>) {
    if w.cores[core].epoch != epoch {
        return; // stale: the segment was preempted
    }
    let Some(run) = w.cores[core].running.take() else {
        return;
    };
    let t = eng.now();
    let thread = &mut w.threads[run.tid];
    w.cores[core].busy += t.saturating_sub(run.progress_from.min(t));
    thread.remaining = 0;
    let sojourn = t - thread.arrived_at;
    let tenant = &mut w.tenants[w.thread_tenant[run.tid] as usize];
    tenant.metrics.inc("completed", 1);
    tenant.metrics.observe("sojourn_cycles", sojourn);
    dispatch(core, t, w, eng);
}

/// The core's shared preemption time source fires: one KB_Timer (or
/// software-timer UIPI) per core, multiplexed across its tenants.
fn timer_fire(core: usize, w: &mut World, eng: &mut Engine<World>) {
    let t = eng.now();
    w.timer_fires += 1;
    if t + w.cfg.quantum <= w.cfg.duration {
        eng.schedule_at(t + w.cfg.quantum, move |w: &mut World, eng: &mut Engine<World>| {
            timer_fire(core, w, eng);
        });
    }
    let Some(run) = w.cores[core].running else {
        // Idle core: admit anything matured and restart the pipeline.
        dispatch(core, t, w, eng);
        return;
    };
    if t <= run.progress_from {
        return; // still inside an overhead window
    }
    admit_matured(core, t, w);
    let executed = t - run.progress_from;
    let ran_long_enough = t.saturating_sub(run.started_at) >= w.cfg.quantum;
    let should_switch = ran_long_enough && !w.cores[core].queue.is_empty();
    let tid = run.tid;
    if should_switch {
        let cost = w.cfg.mechanism.preemption_cost(&w.hw, &w.os);
        w.preemptions += 1;
        w.threads[tid].run_for(executed);
        w.threads[tid].preemptions += 1;
        w.tenants[w.thread_tenant[tid] as usize].metrics.inc("preemptions", 1);
        w.cores[core].busy += executed + cost;
        w.cores[core].epoch += 1;
        w.cores[core].running = None;
        w.cores[core].queue.push_back(tid);
        dispatch(core, t + cost, w, eng);
    } else {
        let cost = w.cfg.mechanism.fire_only_cost(&w.hw, &w.os);
        w.fires_without_switch += 1;
        w.threads[tid].run_for(executed);
        w.cores[core].busy += executed + cost;
        w.cores[core].epoch += 1;
        let epoch = w.cores[core].epoch;
        let remaining = w.threads[tid].remaining;
        w.cores[core].running =
            Some(Running { tid, progress_from: t + cost, started_at: run.started_at });
        eng.schedule_at(t + cost + remaining, move |w: &mut World, eng: &mut Engine<World>| {
            seg_end(core, epoch, w, eng);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(clients: u64, rps_per_client: f64) -> ClientPopulation {
        ClientPopulation { clients, rps_per_client }
    }

    fn quick(tenants: usize, cores: usize, mechanism: PreemptMechanism) -> MultiTenantConfig {
        let mut cfg =
            MultiTenantConfig::paper(tenants, cores, pop(10_000, 10.0), mechanism);
        cfg.duration = 40_000_000; // 20 ms
        cfg
    }

    #[test]
    fn low_load_serves_every_tenant() {
        // 4 × 50 k rps on two cores: ~0.4 utilization against the
        // ~8.4 k-cycle mean (scan-inflated) service time.
        let mut cfg = quick(4, 2, PreemptMechanism::XuiKbTimer);
        cfg.population = pop(10_000, 5.0);
        let r = run_multi_tenant(&cfg);
        assert_eq!(r.tenants.len(), 4);
        let arrivals: u64 = r.tenants.iter().map(|t| t.arrivals).sum();
        assert!(
            r.completed * 100 >= arrivals * 95,
            "completed {} of {arrivals}",
            r.completed
        );
        for (i, t) in r.tenants.iter().enumerate() {
            assert!(t.completed > 100, "tenant {i} completed {}", t.completed);
            assert!(t.sojourn.p50 >= 2_400, "at least one GET service time");
        }
        assert_eq!(r.completed, r.tenants.iter().map(|t| t.completed).sum::<u64>());
    }

    #[test]
    fn batching_amortizes_engine_events() {
        // Arrival *generation* must not appear per-packet in the event
        // engine. Every executed event is attributable: batch loads,
        // timer fires, segment ends (one live per completion, one stale
        // per fire-without-switch and per preemption), and idle wakes.
        // No term scales with arrivals except completions themselves.
        let mut cfg = quick(2, 2, PreemptMechanism::XuiKbTimer);
        cfg.population = pop(100_000, 2.0); // 200 k rps/tenant
        let r = run_multi_tenant(&cfg);
        let arrivals: u64 = r.tenants.iter().map(|t| t.arrivals).sum();
        assert!(arrivals > 5_000, "arrivals={arrivals}");
        // One load event per batch (a few extra covers the per-tenant
        // partial batch straddling the horizon).
        assert!(
            r.arrival_batches <= arrivals / cfg.arrival_batch as u64 + 2 * cfg.tenants as u64 + 2,
            "batches {} for {arrivals} arrivals",
            r.arrival_batches
        );
        let inflight = cfg.cores as u64; // at most one live seg-end per core at the horizon
        let accounted = r.arrival_batches
            + r.timer_fires
            + r.completed
            + 2 * (r.preemptions + r.fires_without_switch)
            + r.idle_wakes
            + inflight;
        assert!(
            r.engine_events <= accounted,
            "unattributed events: {} executed vs {accounted} accounted",
            r.engine_events
        );
    }

    #[test]
    fn deterministic_under_fixed_seed_and_metrics_match_report() {
        let cfg = quick(3, 2, PreemptMechanism::XuiKbTimer);
        let (a, snap_a) = run_multi_tenant_metrics(&cfg);
        let (b, snap_b) = run_multi_tenant_metrics(&cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.tenants[1].sojourn.p999, b.tenants[1].sojourn.p999);
        assert_eq!(snap_a, snap_b);
        // The registry is the system of record: per-tenant counters in
        // the merged snapshot equal the report rows.
        for (i, t) in a.tenants.iter().enumerate() {
            assert_eq!(snap_a.counters[&format!("tenant{i}.completed")], t.completed);
            assert_eq!(
                snap_a.histograms[&format!("tenant{i}.sojourn_cycles")].p99,
                t.sojourn.p99
            );
        }
    }

    #[test]
    fn xui_beats_uipi_on_shared_cores() {
        // Same tenancy, same load: xUI's cheaper fires leave the cores
        // less busy (and UIPI additionally burns a timer core, not
        // modeled as one of `cores`).
        let mut uipi_cfg = quick(4, 2, PreemptMechanism::UipiSwTimer);
        uipi_cfg.population = pop(10_000, 10.0); // 400 k rps aggregate
        let mut xui_cfg = uipi_cfg.clone();
        xui_cfg.mechanism = PreemptMechanism::XuiKbTimer;
        let uipi = run_multi_tenant(&uipi_cfg);
        let xui = run_multi_tenant(&xui_cfg);
        assert!(
            xui.busy_fraction < uipi.busy_fraction,
            "xUI {} < UIPI {}",
            xui.busy_fraction,
            uipi.busy_fraction
        );
    }

    #[test]
    fn preemption_protects_tenants_from_scan_hol_blocking() {
        // ~0.84 utilization, run-to-completion vs 5 µs quantum slicing:
        // GETs stop queueing behind 600 µs scans, so the mean sojourn
        // (99.5 % GETs) collapses even though scans themselves stretch.
        let mut none_cfg = quick(4, 2, PreemptMechanism::None);
        none_cfg.population = pop(10_000, 10.0); // 400 k rps aggregate
        let mut xui_cfg = none_cfg.clone();
        xui_cfg.mechanism = PreemptMechanism::XuiKbTimer;
        let none = run_multi_tenant(&none_cfg);
        let xui = run_multi_tenant(&xui_cfg);
        assert!(xui.preemptions > 0);
        assert_eq!(none.preemptions, 0);
        let mean = |r: &MultiTenantReport| {
            let n: u64 = r.tenants.iter().map(|t| t.sojourn.count).sum();
            let sum: f64 = r.tenants.iter().map(|t| t.sojourn.mean * t.sojourn.count as f64).sum();
            sum / n.max(1) as f64
        };
        let (none_mean, xui_mean) = (mean(&none), mean(&xui));
        assert!(
            xui_mean * 2.0 < none_mean,
            "quantum slicing cuts mean sojourn: {xui_mean:.0} vs {none_mean:.0}"
        );
    }

    #[test]
    fn million_clients_run_in_bounded_events() {
        // The headline configuration: 1 M modeled clients across 8
        // tenants. Event count stays within a small multiple of served
        // requests — arrival generation is batch-amortized.
        let mut cfg = MultiTenantConfig::paper(
            8,
            8,
            pop(125_000, 1.5), // 1.5 M rps aggregate over 8 cores
            PreemptMechanism::XuiKbTimer,
        );
        cfg.duration = 20_000_000; // 10 ms
        let r = run_multi_tenant(&cfg);
        let arrivals: u64 = r.tenants.iter().map(|t| t.arrivals).sum();
        assert!(arrivals > 10_000);
        assert!(r.engine_events < 4 * arrivals + 20_000);
        assert!(r.completed > 0);
        assert!(r.fairness_p99 >= 1.0);
    }
}
