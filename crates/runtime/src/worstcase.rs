//! Worst-case delivery-latency model: a mixed-criticality receiver
//! sharing its core with bulk interferer tenants, driven on the DES
//! engine and checked against a *bounded-latency-once-unblocked*
//! obligation.
//!
//! The §6.1 experiment measures worst-case latency for a single sender
//! against an idle receiver. This model stresses the other end of the
//! envelope (ROADMAP "worst-case-latency scenario band"):
//!
//! - **Mixed criticality.** One high-criticality sender posts the
//!   highest vector (63) while a configurable flood of low-criticality
//!   senders posts low vectors at the same receiver. Delivery is
//!   highest-vector-first but *non-preemptive*: a low delivery already
//!   in flight finishes first, which is exactly the priority-inversion
//!   window the report counts.
//! - **Interference.** Co-located bulk tenants inflate the delivery
//!   cost by an [`InterferenceKind`]-dependent percentage (calibrated
//!   against the cycle simulator's `InterferenceConfig` knobs by the
//!   scenario layer's probe phase) and occupy the receiver's core in
//!   short bursts. A [`FaultPlan`] adds replayable
//!   `InterferenceBurst` windows on top, so the whole interference
//!   schedule derives from `(seed, plan)` alone.
//! - **Isolation.** With [`WorstCaseConfig::isolate`] set, delivery is
//!   pinned to a dedicated core: interference multipliers and occupancy
//!   bursts vanish, replaced by a fixed cross-core steering cost.
//! - **Blocking.** Periodic `SN`-style block windows exercise the
//!   once-unblocked clock: the obligation deadline restarts at the
//!   receiver's unblock, mirroring the invariant checker.
//!
//! The run emits a checker-grade telemetry stream (`uintr_post`,
//! `uintr_deliver`, `uintr_block`, `uintr_unblock`, `idle`) and feeds
//! it to [`xui_faults::check_with_obligations`], so the deadline verdict
//! comes from the same code path the fault suites trust, not from the
//! model's own bookkeeping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use xui_des::Engine;
use xui_faults::invariants::{EV_BLOCK, EV_DELIVER, EV_IDLE, EV_POST, EV_UNBLOCK};
use xui_faults::{
    check_with_obligations, FaultInjector, FaultPlan, InvariantConfig, InvariantKind, JitterCdf,
    LatencyObligation, LatencySamples, PostAction, CDF_GRID,
};
use xui_telemetry::Event;

/// The highest user vector — the high-criticality lane.
pub const HIGH_VECTOR: u64 = 63;

/// The architectural SN (suppress notification) bit of the packed
/// notification-control word, widened to the model's word size.
const SN: u64 = xui_uipi_abi::nc::SN as u64;

/// What kind of co-located interference the bulk tenants generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceKind {
    /// No interference (the baseline arm).
    None,
    /// Cache-polluting tenants: delivery pays refill costs.
    Cache,
    /// Front-end-heavy tenants: microcode entry and redirects contend.
    Pipeline,
    /// Memory-bandwidth hogs: both effects, plus the worst occupancy.
    MemBw,
}

impl InterferenceKind {
    /// The cycle-simulator interference knobs `(cache_pct,
    /// pipeline_pct)` this kind maps to with `n` co-located interferer
    /// tenants. The scenario layer installs these on
    /// `xui_sim::InterferenceConfig` for the probe arm; the DES model
    /// applies their sum to its abstract delivery cost.
    #[must_use]
    pub fn knobs(self, n: u32) -> (u64, u64) {
        let n = u64::from(n);
        match self {
            Self::None => (0, 0),
            Self::Cache => (12 * n, 0),
            Self::Pipeline => (0, 8 * n),
            Self::MemBw => (10 * n, 8 * n),
        }
    }

    /// Total delivery-cost inflation percentage for the DES model.
    #[must_use]
    pub fn static_pct(self, n: u32) -> u64 {
        let (c, p) = self.knobs(n);
        c + p
    }

    /// Short label for tables and artifact rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Cache => "cache",
            Self::Pipeline => "pipeline",
            Self::MemBw => "membw",
        }
    }
}

/// The criticality mix: how many low senders flood the receiver, and
/// how often each lane posts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalityMix {
    /// Mix label for tables and artifact rows.
    pub label: String,
    /// Low-criticality senders (vectors 1, 2, … assigned round-robin).
    pub low_senders: u32,
    /// Mean inter-post gap of each low sender, in virtual ticks.
    pub low_period: u64,
    /// Mean inter-post gap of the single high sender (vector 63).
    pub high_period: u64,
}

impl CriticalityMix {
    /// The default mix: six low senders at a moderate rate.
    #[must_use]
    pub fn standard() -> Self {
        Self { label: "std-6".into(), low_senders: 6, low_period: 3_000, high_period: 40_000 }
    }

    /// A light mix: two slow low senders.
    #[must_use]
    pub fn light() -> Self {
        Self { label: "light-2".into(), low_senders: 2, low_period: 6_000, high_period: 40_000 }
    }

    /// A flood: twelve fast low senders saturating the receiver.
    #[must_use]
    pub fn flood() -> Self {
        Self { label: "flood-12".into(), low_senders: 12, low_period: 1_500, high_period: 40_000 }
    }
}

/// Configuration of one worst-case run (one sweep point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseConfig {
    /// RNG seed; sender streams are derived sub-seeds.
    pub seed: u64,
    /// Horizon in virtual ticks (senders stop posting at the horizon;
    /// the run then drains).
    pub duration: u64,
    /// Interference kind generated by the co-located tenants.
    pub kind: InterferenceKind,
    /// Co-located interferer tenant count.
    pub interferers: u32,
    /// Criticality mix of the senders.
    pub mix: CriticalityMix,
    /// Pin delivery to a dedicated core: interference vanishes, a fixed
    /// steering cost is paid instead.
    pub isolate: bool,
    /// Uninterfered delivery cost in ticks (calibrated from the cycle
    /// simulator's clean probe by the scenario layer).
    pub base_delivery_cost: u64,
    /// Cross-core steering cost paid per delivery when isolated.
    pub steering_cost: u64,
    /// Period of the receiver's block windows (0 disables blocking).
    pub block_period: u64,
    /// Length of each block window.
    pub block_len: u64,
    /// Mean gap between one interferer tenant's occupancy bursts.
    pub interferer_period: u64,
    /// Receiver-core ticks one occupancy burst steals.
    pub interferer_occupancy: u64,
    /// Deadline (ticks once deliverable) for the high vector's
    /// bounded-latency obligation.
    pub deadline: u64,
    /// Replayable fault plan layered on top (interference bursts, drops,
    /// delays, duplicates).
    pub plan: Option<FaultPlan>,
}

impl WorstCaseConfig {
    /// Paper-flavoured defaults for one sweep point: base delivery cost
    /// near the simulator's uninterfered flush-path delivery, 10 k-tick
    /// deadline (the checker's default latency bound).
    #[must_use]
    pub fn paper(kind: InterferenceKind, interferers: u32, mix: CriticalityMix, isolate: bool) -> Self {
        Self {
            seed: 42,
            duration: 240_000,
            kind,
            interferers,
            mix,
            isolate,
            base_delivery_cost: 640,
            steering_cost: 120,
            block_period: 60_000,
            block_len: 2_500,
            interferer_period: 4_000,
            interferer_occupancy: 150,
            deadline: 10_000,
            plan: None,
        }
    }
}

/// Results of one worst-case run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseReport {
    /// Novel posts that landed (UPID bit 0→1).
    pub posts: u64,
    /// Deliveries completed.
    pub deliveries: u64,
    /// Exact worst-case delivery latency over every vector, in ticks.
    pub worst_case: u64,
    /// Jitter CDF of the high-criticality lane (vector 63).
    pub high: JitterCdf,
    /// Jitter CDF of the low-criticality lanes.
    pub low: JitterCdf,
    /// Priority inversions: the high vector landed while a lower
    /// delivery was in flight (non-preemptive window).
    pub inversions: u64,
    /// Deadline-obligation violations found by the invariant checker.
    pub deadline_violations: u64,
    /// Detail line of the first violation, when any (names the offending
    /// event and the observed latency).
    pub first_violation: Option<String>,
    /// Interference-burst windows consulted from the fault plan.
    pub interference_hits: u64,
    /// True when every checker invariant (including the obligation)
    /// held.
    pub pass: bool,
}

/// `base` inflated by `pct` percent (integer arithmetic; identity at 0).
fn inflate(base: u64, pct: u64) -> u64 {
    base + base * pct / 100
}

/// SplitMix64 sub-seed derivation (same scheme as [`crate::tenants`]).
fn sub_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The receiver actor id in the telemetry stream.
const RECEIVER: u32 = 0;

struct World {
    cfg: WorstCaseConfig,
    injector: FaultInjector,
    /// Pending user vectors (the UPID PIR bitmap).
    pir: u64,
    /// Landing time of each pending bit's novel post.
    pending_since: [u64; 64],
    /// Vector currently being delivered (non-preemptive).
    in_delivery: Option<u64>,
    /// Receiver core occupied (delivery microcode or interferer burst)
    /// until this tick.
    busy_until: u64,
    /// An idempotent delivery retry is armed for this tick (0 = none).
    retry_at: u64,
    /// Packed UPID notification-control low word. The receiver is
    /// blocked exactly while the architectural [`SN`] bit is set —
    /// there is no shadow flag; block windows and `FlipSn` fault
    /// windows both act on this word.
    nc: u64,
    last_unblock: u64,
    /// Static interference percentage (kind × interferer count).
    static_pct: u64,
    events: Vec<Event>,
    high_samples: LatencySamples,
    low_samples: LatencySamples,
    posts: u64,
    deliveries: u64,
    inversions: u64,
    rngs: Vec<StdRng>,
}

impl World {
    /// A matching post landed on the UPID: set the bit, count novel
    /// posts, count inversions, and kick delivery.
    fn land(&mut self, uv: u64, now: u64, eng: &mut Engine<World>) {
        let bit = 1u64 << uv;
        if self.pir & bit == 0 {
            self.pir |= bit;
            self.pending_since[uv as usize] = now;
            self.posts += 1;
            self.events.push(Event::instant(now, RECEIVER, EV_POST).with_arg("uv", uv));
            if uv == HIGH_VECTOR {
                if let Some(active) = self.in_delivery {
                    if active < HIGH_VECTOR {
                        self.inversions += 1;
                    }
                }
            }
        }
        self.try_deliver(now, eng);
    }

    /// Starts the highest pending delivery if the receiver can take it.
    fn try_deliver(&mut self, now: u64, eng: &mut Engine<World>) {
        // The fault DSL's FlipSn windows flip bit 1 of the real packed
        // word; what gates delivery is the effective SN, not who set it.
        let nc = self.injector.apply_sn(now, self.nc);
        if nc & SN != 0 {
            if self.nc & SN == 0 {
                // Forced by a fault window: the world emits no unblock
                // of its own, so arm one retry at the window end and
                // surface the window to the invariant checker.
                if let Some(end) = self.injector.sn_window_end(now) {
                    if self.retry_at != end {
                        self.retry_at = end;
                        self.events.push(Event::instant(now, RECEIVER, EV_BLOCK));
                        eng.schedule_at(end, |w: &mut World, eng: &mut Engine<World>| {
                            let t = eng.now();
                            w.retry_at = 0;
                            w.last_unblock = t;
                            w.events.push(Event::instant(t, RECEIVER, EV_UNBLOCK));
                            w.try_deliver(t, eng);
                        });
                    }
                }
            }
            return;
        }
        if self.in_delivery.is_some() || self.pir == 0 {
            return;
        }
        if now < self.busy_until {
            // Core occupied by an interferer burst: retry when it ends
            // (idempotent — one armed retry per deadline).
            if self.retry_at != self.busy_until {
                self.retry_at = self.busy_until;
                eng.schedule_at(self.busy_until, |w: &mut World, eng: &mut Engine<World>| {
                    let t = eng.now();
                    w.retry_at = 0;
                    w.try_deliver(t, eng);
                });
            }
            return;
        }
        let uv = 63 - u64::from(self.pir.leading_zeros());
        let pct = if self.cfg.isolate {
            0
        } else {
            self.static_pct + self.injector.interference_pct(now)
        };
        let steer = if self.cfg.isolate { self.cfg.steering_cost } else { 0 };
        let cost = inflate(self.cfg.base_delivery_cost, pct) + steer;
        self.in_delivery = Some(uv);
        self.busy_until = now + cost;
        eng.schedule_at(now + cost, move |w: &mut World, eng: &mut Engine<World>| {
            let t = eng.now();
            w.complete(uv, t, eng);
        });
    }

    /// Delivery microcode retired: emit the delivery, record the
    /// latency sample against the once-unblocked clock, and chain.
    fn complete(&mut self, uv: u64, now: u64, eng: &mut Engine<World>) {
        self.pir &= !(1u64 << uv);
        self.in_delivery = None;
        self.deliveries += 1;
        self.events.push(Event::instant(now, RECEIVER, EV_DELIVER).with_arg("uv", uv));
        let deliverable = self.pending_since[uv as usize].max(self.last_unblock);
        let latency = now.saturating_sub(deliverable);
        if uv == HIGH_VECTOR {
            self.high_samples.record(latency);
        } else {
            self.low_samples.record(latency);
        }
        self.try_deliver(now, eng);
    }
}

/// One sender's next inter-post gap: `period/2 + U[0, period)`, so the
/// mean is the configured period with deterministic seeded jitter.
fn next_gap(rng: &mut StdRng, period: u64) -> u64 {
    period / 2 + rng.gen_range(0..period.max(1))
}

fn arm_sender(eng: &mut Engine<World>, at: u64, idx: usize, uv: u64) {
    eng.schedule_at(at, move |w: &mut World, eng: &mut Engine<World>| {
        let now = eng.now();
        match w.injector.on_post(now) {
            PostAction::Drop => {}
            PostAction::Deliver => w.land(uv, now, eng),
            PostAction::Delay(by) => {
                eng.schedule_at(now + by, move |w: &mut World, eng: &mut Engine<World>| {
                    let t = eng.now();
                    w.land(uv, t, eng);
                });
            }
            PostAction::Duplicate => {
                w.land(uv, now, eng);
                eng.schedule_at(now + 1, move |w: &mut World, eng: &mut Engine<World>| {
                    let t = eng.now();
                    w.land(uv, t, eng);
                });
            }
        }
        let period = w.sender_period(idx);
        let gap = next_gap(&mut w.rngs[idx], period);
        let next = now + gap;
        if next < w.cfg.duration {
            arm_sender(eng, next, idx, uv);
        }
    });
}

impl World {
    fn sender_period(&self, idx: usize) -> u64 {
        if idx == 0 {
            self.cfg.mix.high_period
        } else {
            self.cfg.mix.low_period
        }
    }
}

/// Interferer tenant `k` bursts onto the receiver's core, extending its
/// occupancy; deliveries wanting to start meanwhile are deferred.
fn arm_interferer(eng: &mut Engine<World>, at: u64, rng_idx: usize) {
    eng.schedule_at(at, move |w: &mut World, eng: &mut Engine<World>| {
        let now = eng.now();
        w.busy_until = w.busy_until.max(now) + w.cfg.interferer_occupancy;
        let gap = next_gap(&mut w.rngs[rng_idx], w.cfg.interferer_period);
        let next = now + gap;
        if next < w.cfg.duration {
            arm_interferer(eng, next, rng_idx);
        }
    });
}

/// Receiver block window starting at `at` for `len` ticks; re-arms the
/// next window while inside the horizon.
fn arm_block(eng: &mut Engine<World>, at: u64) {
    eng.schedule_at(at, move |w: &mut World, eng: &mut Engine<World>| {
        let now = eng.now();
        w.nc |= SN;
        w.events.push(Event::instant(now, RECEIVER, EV_BLOCK));
        let len = w.cfg.block_len;
        eng.schedule_at(now + len, |w: &mut World, eng: &mut Engine<World>| {
            let t = eng.now();
            w.nc &= !SN;
            w.last_unblock = t;
            w.events.push(Event::instant(t, RECEIVER, EV_UNBLOCK));
            w.try_deliver(t, eng);
        });
        let next = now + w.cfg.block_period;
        if next < w.cfg.duration {
            arm_block(eng, next);
        }
    });
}

/// Runs one worst-case point: builds the DES world, drains it, then
/// verdicts the emitted telemetry through the invariant checker with
/// the high-vector deadline obligation attached.
#[must_use]
pub fn run_worst_case(cfg: &WorstCaseConfig) -> WorstCaseReport {
    let plan = cfg.plan.clone().unwrap_or_else(|| FaultPlan::named("none"));
    let senders = 1 + cfg.mix.low_senders as usize;
    let interferer_lanes = if cfg.isolate { 0 } else { cfg.interferers as usize };
    let rngs = (0..senders + interferer_lanes)
        .map(|i| StdRng::seed_from_u64(sub_seed(cfg.seed, i as u64 + 1)))
        .collect();
    let mut world = World {
        static_pct: cfg.kind.static_pct(cfg.interferers),
        cfg: cfg.clone(),
        injector: FaultInjector::new(&plan),
        pir: 0,
        pending_since: [0; 64],
        in_delivery: None,
        busy_until: 0,
        retry_at: 0,
        nc: 0,
        last_unblock: 0,
        events: Vec::new(),
        high_samples: LatencySamples::new(),
        low_samples: LatencySamples::new(),
        posts: 0,
        deliveries: 0,
        inversions: 0,
        rngs,
    };

    let mut engine: Engine<World> = Engine::new();
    // Sender 0 is the high lane (vector 63); low senders take vectors
    // 1, 2, … round-robin below the high vector.
    arm_sender(&mut engine, 1, 0, HIGH_VECTOR);
    for s in 0..cfg.mix.low_senders as usize {
        let uv = 1 + (s as u64 % (HIGH_VECTOR - 1));
        arm_sender(&mut engine, 1 + (s as u64 + 1) * 97, s + 1, uv);
    }
    for k in 0..interferer_lanes {
        arm_interferer(&mut engine, 3 + (k as u64) * 131, senders + k);
    }
    if cfg.block_period > 0 && cfg.block_len > 0 {
        arm_block(&mut engine, cfg.block_period);
    }
    engine.run(&mut world);

    let idle_at = engine.now();
    world.events.push(Event::instant(idle_at, RECEIVER, EV_IDLE));

    let obligation = LatencyObligation {
        name: "high-deliverable-deadline".into(),
        min_vector: HIGH_VECTOR,
        deadline: cfg.deadline,
    };
    // The generic latency bound is disabled: the parameterized
    // obligation is the only deadline in force.
    let checker_cfg = InvariantConfig { latency_bound: u64::MAX };
    let verdict = check_with_obligations(&world.events, &checker_cfg, &[obligation]);

    let high = world.high_samples.reduce(CDF_GRID);
    let low = world.low_samples.reduce(CDF_GRID);
    WorstCaseReport {
        posts: world.posts,
        deliveries: world.deliveries,
        worst_case: high.max.max(low.max),
        high,
        low,
        inversions: world.inversions,
        deadline_violations: verdict.count_of(InvariantKind::DeadlineMissed) as u64,
        first_violation: verdict.violations.first().map(|v| v.detail.clone()),
        interference_hits: world.injector.log().interference_hits,
        pass: verdict.pass(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorstCaseConfig {
        WorstCaseConfig::paper(InterferenceKind::Cache, 4, CriticalityMix::standard(), false)
    }

    #[test]
    fn replay_is_deterministic_from_seed_and_plan() {
        let mut cfg = base();
        cfg.plan = Some(
            FaultPlan::named("wc-bursts")
                .seed(9)
                .interference_burst(20_000, 60_000, 40)
                .delay_every(13, 5, 700)
                .drop_every(31, 7),
        );
        let a = run_worst_case(&cfg);
        let b = run_worst_case(&cfg);
        assert_eq!(a, b);
        assert!(a.deliveries > 0);
        assert!(a.interference_hits > 0);
    }

    #[test]
    fn baseline_meets_the_deadline_and_floods_invert() {
        let calm = run_worst_case(&base());
        assert!(calm.pass, "{:?}", calm.first_violation);
        assert_eq!(calm.deadline_violations, 0);
        assert_eq!(calm.high.count + calm.low.count, calm.deliveries);

        let mut flood = base();
        flood.mix = CriticalityMix::flood();
        let r = run_worst_case(&flood);
        assert!(r.inversions > 0, "non-preemptive flood must show inversions");
        assert!(r.pass, "{:?}", r.first_violation);
    }

    #[test]
    fn isolation_tightens_the_high_lane_tail() {
        let mut interfered = base();
        interfered.kind = InterferenceKind::MemBw;
        interfered.interferers = 8;
        let shared = run_worst_case(&interfered);

        let mut pinned = interfered.clone();
        pinned.isolate = true;
        let isolated = run_worst_case(&pinned);

        assert!(
            isolated.high.max < shared.high.max,
            "isolated max {} must beat shared max {}",
            isolated.high.max,
            shared.high.max
        );
        assert!(isolated.worst_case < shared.worst_case);
    }

    #[test]
    fn flip_sn_window_suppresses_delivery_and_restarts_the_clock() {
        // A fault-forced SN window 5x the deadline: posts landing inside
        // it must sit in the PIR (merging, so fewer novel posts than a
        // clean run) and still meet the deadline, because the window is
        // surfaced to the checker as a block/unblock pair that restarts
        // the once-unblocked clock.
        let mut clean = base();
        clean.block_period = 0; // isolate the fault window from real blocks
        let mut forced = clean.clone();
        forced.plan = Some(FaultPlan::named("sn-window").flip_sn(0, 50_000, true));

        let c = run_worst_case(&clean);
        let f = run_worst_case(&forced);
        assert!(f.pass, "{:?}", f.first_violation);
        assert_eq!(f.deadline_violations, 0);
        assert!(
            f.posts < c.posts,
            "posts must merge while SN is forced ({} vs clean {})",
            f.posts,
            c.posts
        );
        assert!(f.deliveries > 0, "delivery must resume at the window end");
        assert!(
            f.high.max < 50_000,
            "latency counts from the unblock, not the post: {}",
            f.high.max
        );
        assert_eq!(run_worst_case(&forced), f, "forced run must stay deterministic");
    }

    #[test]
    fn impossible_deadline_is_reported_with_event_and_latency() {
        let mut cfg = base();
        cfg.interferers = 8;
        cfg.deadline = 300; // below even the uninterfered delivery cost
        let r = run_worst_case(&cfg);
        assert!(!r.pass);
        assert!(r.deadline_violations > 0);
        let detail = r.first_violation.expect("violation detail");
        assert!(detail.contains("uintr_deliver"), "{detail}");
        assert!(detail.contains("observed latency"), "{detail}");
        assert!(detail.contains("high-deliverable-deadline"), "{detail}");
    }
}
