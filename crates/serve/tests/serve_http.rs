//! End-to-end exercise of the `xui serve` control plane over real
//! sockets: registry browsing, run submission, concurrent SSE
//! streaming with a deliberately slow subscriber, and the tee
//! invariant — artifacts fetched over HTTP are byte-identical to the
//! offline runner's output no matter how many clients watched, with
//! loss visible only in the explicit `dropped_events` accounting.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use xui_scenario::{registry, runner, RunOptions};
use xui_serve::{consume_stream, http_request, ServeConfig, Server};

const SCENARIO: &str = "fig2_timeline";

fn start() -> Server {
    Server::start(&ServeConfig::default()).expect("server starts on an ephemeral port")
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None).expect("request completes")
}

fn field_u64(json: &str, name: &str) -> u64 {
    let v = serde_json::value_from_str(json).expect("valid JSON");
    serde::field(&v, "response", name).expect("field present")
}

fn field_str(json: &str, name: &str) -> String {
    let v = serde_json::value_from_str(json).expect("valid JSON");
    serde::field(&v, "response", name).expect("field present")
}

fn artifact_ids(status_json: &str) -> Vec<String> {
    let v = serde_json::value_from_str(status_json).expect("valid JSON");
    let serde::Value::Object(entries) = &v else { panic!("status is not an object") };
    let arts = entries
        .iter()
        .find(|(k, _)| k == "artifacts")
        .map(|(_, v)| v)
        .expect("status carries `artifacts`");
    let serde::Value::Array(items) = arts else { panic!("`artifacts` is not an array") };
    items
        .iter()
        .map(|it| {
            let serde::Value::Str(s) = it else { panic!("artifact id is not a string") };
            s.clone()
        })
        .collect()
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = get(addr, &format!("/api/runs/{id}"));
        assert_eq!(status, 200, "{body}");
        match field_str(&body, "state").as_str() {
            "done" => return body,
            "failed" => panic!("run failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "run did not finish in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `DELETE /api/runs/<id>` cancels exactly the still-queued runs:
/// unknown ids are 404, malformed ids 400, running and terminal runs
/// 409, and a queued run becomes `failed` with a cancellation error
/// without disturbing the run occupying the worker.
#[test]
fn delete_cancels_queued_runs_only() {
    let server = Server::start(&ServeConfig { run_workers: 1, ..ServeConfig::default() })
        .expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    let submit = |hold: u64| {
        let (status, body) = http_request(
            addr,
            "POST",
            "/api/runs",
            Some(&format!("{{\"scenario\":{SCENARIO:?},\"hold_ms\":{hold}}}")),
        )
        .expect("request completes");
        assert_eq!(status, 202, "{body}");
        field_u64(&body, "id")
    };
    let delete = |id: &str| {
        http_request(addr, "DELETE", &format!("/api/runs/{id}"), None).expect("request completes")
    };

    // One worker: the held run occupies it, the second stays queued.
    let running = submit(2_000);
    let queued = submit(0);
    let deadline = Instant::now() + Duration::from_secs(30);
    while field_str(&get(addr, &format!("/api/runs/{running}")).1, "state") != "running" {
        assert!(Instant::now() < deadline, "held run never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, _) = delete("999");
    assert_eq!(status, 404, "unknown run ids are not found");
    let (status, _) = delete("not-a-number");
    assert_eq!(status, 400, "malformed run ids are bad requests");

    let (status, body) = delete(&queued.to_string());
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_str(&body, "state"), "failed");
    assert!(field_str(&body, "error").contains("cancelled"), "{body}");

    // A second delete finds it terminal; the running run is busy.
    let (status, body) = delete(&queued.to_string());
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("failed"), "{body}");
    let (status, body) = delete(&running.to_string());
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("running"), "{body}");

    // The occupied worker finishes its run untouched.
    let done = wait_done(addr, running);
    assert_eq!(field_str(&done, "state"), "done");
    server.shutdown();
}

#[test]
fn registry_browsing_and_error_statuses() {
    let server = start();
    let addr = server.local_addr();

    let (status, body) = get(addr, "/api/healthz");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    let (status, body) = get(addr, "/api/scenarios");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(SCENARIO), "registry listing misses {SCENARIO}: {body}");

    let (status, body) = get(addr, &format!("/api/scenarios/{SCENARIO}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_str(&body, "name"), SCENARIO);

    let (status, _) = get(addr, "/api/scenarios/no_such_preset");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/api/nope");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/api/runs/not-a-number");
    assert_eq!(status, 400, "malformed run id is a bad request");
    let (status, _) =
        http_request(addr, "DELETE", "/api/healthz", None).expect("request completes");
    assert_eq!(status, 405);
    let (status, body) =
        http_request(addr, "POST", "/api/runs", Some("{\"scenario\":123}")).expect("completes");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http_request(addr, "POST", "/api/runs", Some("not json")).expect("ok");
    assert_eq!(status, 400, "{body}");

    server.shutdown();
}

#[test]
fn nine_subscribers_one_slow_artifacts_stay_byte_identical() {
    let server = start();
    let addr = server.local_addr();

    // Hold the run at its start so every subscriber attaches first.
    let (status, body) = http_request(
        addr,
        "POST",
        "/api/runs",
        Some(&format!("{{\"scenario\":{:?},\"hold_ms\":1500}}", SCENARIO)),
    )
    .expect("submit completes");
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id");
    let events_path = field_str(&body, "events");

    // Nine concurrent live streams; the last one gets a one-slot queue
    // and a 200 ms consumer pause per write round — guaranteed to fall
    // behind the post-hold burst of events and snapshots.
    let subs: Vec<std::thread::JoinHandle<xui_serve::SubscriberReport>> = (0..9)
        .map(|i| {
            let path = events_path.clone();
            let (cap, drain_ms) = if i == 8 { (1, 200) } else { (4096, 0) };
            std::thread::spawn(move || {
                consume_stream(addr, &path, cap, drain_ms).expect("stream completes")
            })
        })
        .collect();

    let status_body = wait_done(addr, id);
    let reports: Vec<xui_serve::SubscriberReport> =
        subs.into_iter().map(|h| h.join().expect("subscriber thread")).collect();

    // Loss shows up only in the slow subscriber's explicit counter.
    let slow = &reports[8];
    assert!(slow.dropped_events > 0, "slow subscriber never fell behind: {slow:?}");
    for fast in &reports[..8] {
        assert_eq!(fast.dropped_events, 0, "fast subscriber dropped: {fast:?}");
        assert!(fast.frames > 0, "fast subscriber saw nothing: {fast:?}");
    }

    // The run itself was untouched: the ring kept everything and the
    // artifacts served over HTTP are byte-identical to an offline run.
    assert_eq!(field_u64(&status_body, "ring_dropped_events"), 0);
    let ids = artifact_ids(&status_body);
    assert!(!ids.is_empty(), "run produced no artifacts: {status_body}");
    let offline =
        runner::run(&registry::find(SCENARIO).expect("preset"), &RunOptions::default())
            .expect("offline run");
    assert_eq!(ids.len(), offline.artifacts.len());
    for aid in &ids {
        let (status, body) = get(addr, &format!("/api/runs/{id}/artifacts/{aid}"));
        assert_eq!(status, 200, "{body}");
        let golden = offline.artifact(aid).expect("offline artifact");
        assert_eq!(body, golden, "streamed artifact `{aid}` differs from offline bytes");
    }

    // A subscriber arriving after the terminal state replays the ring.
    let late = consume_stream(addr, &events_path, 4096, 0).expect("replay completes");
    assert!(late.frames > 0, "late subscriber got an empty replay: {late:?}");
    assert_eq!(late.dropped_events, 0, "ring replay reported loss: {late:?}");

    let (status, _) = get(addr, &format!("/api/runs/{id}/artifacts/no_such_artifact"));
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn shutdown_endpoint_drains_cleanly() {
    let server = start();
    let addr = server.local_addr();
    let (status, body) =
        http_request(addr, "POST", "/api/shutdown", None).expect("request completes");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"shutting_down\":true"), "{body}");
    server.join();
}

#[test]
fn sweep_api_expands_runs_and_streams_per_point_progress() {
    let server = start();
    let addr = server.local_addr();

    // Malformed bodies and bad grids are 400s, not queued garbage.
    let (status, body) =
        http_request(addr, "POST", "/api/sweeps", Some("{ nope")).expect("request completes");
    assert_eq!(status, 400, "{body}");
    let bad_grid = r#"{"sweep":{"name":"bad","scenario":"fig2_timeline","grid":{"sender_countdown":{"from":9,"to":1,"step":1}}}}"#;
    let (status, body) =
        http_request(addr, "POST", "/api/sweeps", Some(bad_grid)).expect("request completes");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("empty range"), "{body}");

    // A fast inline 4-point grid over the cycle sim.
    let spec = r#"{"sweep":{
        "name": "http_grid",
        "scenario": "fig2_timeline",
        "grid": {
            "sender_countdown": [500, 600],
            "receiver_countdown": [20000, 30000]
        }
    }}"#;
    let (status, body) =
        http_request(addr, "POST", "/api/sweeps", Some(spec)).expect("request completes");
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id");
    assert_eq!(field_u64(&body, "points"), 4, "{body}");

    // Poll status until every point is terminal.
    let deadline = Instant::now() + Duration::from_secs(120);
    let final_body = loop {
        let (status, body) = get(addr, &format!("/api/sweeps/{id}"));
        assert_eq!(status, 200, "{body}");
        if field_u64(&body, "done") == 4 {
            break body;
        }
        assert!(Instant::now() < deadline, "sweep did not finish in time: {body}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(final_body.contains("\"passed\":true"), "{final_body}");
    assert!(
        final_body.contains("fig2_timeline@sender_countdown=500,receiver_countdown=20000"),
        "{final_body}"
    );

    // The listing shows it, an unknown id is a 404.
    let (status, body) = get(addr, "/api/sweeps");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"http_grid\""), "{body}");
    let (status, _) = get(addr, &format!("/api/sweeps/{}", id + 999));
    assert_eq!(status, 404);

    // A late subscriber replays every point plus the summary frame.
    let report = consume_stream(addr, &format!("/api/sweeps/{id}/events"), 64, 0)
        .expect("stream completes");
    assert!(report.delivered_events >= 5, "{report:?}");

    server.shutdown();
}

#[test]
fn sweep_stream_watches_points_live() {
    let server = start();
    let addr = server.local_addr();
    let spec = r#"{"sweep":{
        "name": "http_live",
        "scenario": "fig2_timeline",
        "grid": { "sender_countdown": [500, 600, 700] }
    }}"#;
    let (status, body) =
        http_request(addr, "POST", "/api/sweeps", Some(spec)).expect("request completes");
    assert_eq!(status, 202, "{body}");
    let id = field_u64(&body, "id");

    // Attach immediately: the stream ends when the sweep's hub closes,
    // having delivered per-point `queued`/terminal snapshots.
    let report = consume_stream(addr, &format!("/api/sweeps/{id}/events"), 1024, 0)
        .expect("stream completes");
    assert!(
        report.delivered_events + report.dropped_events >= 3,
        "expected at least one snapshot per point: {report:?}"
    );

    let (status, body) = get(addr, &format!("/api/sweeps/{id}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_u64(&body, "done"), 3, "{body}");
    server.shutdown();
}
