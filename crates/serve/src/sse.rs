//! Server-sent-event encoding for the live run stream.
//!
//! Each [`StreamItem`] becomes one SSE frame:
//!
//! - a telemetry [`Event`](xui_telemetry::Event) renders as
//!   `event: telemetry` with the exact single-line JSON the JSONL
//!   recorder would have written for it, so a streaming client and an
//!   offline trace agree on the representation;
//! - a [`StreamItem::Snapshot`] renders as `event: <kind>` (`metrics`,
//!   `state`, `artifact`) with its pre-serialized compact JSON payload;
//! - the stream ends with one `event: end` frame carrying the
//!   subscriber's final delivery/loss accounting, so a client always
//!   learns exactly how many items it lost.
//!
//! Snapshot payloads are compact (single-line) JSON by construction;
//! [`encode_item`] still splits on newlines into multiple `data:` lines
//! as the SSE spec requires, so a multi-line payload would survive.

use std::fmt::Write as _;

use xui_telemetry::{event_json_line, StreamItem};

/// The response head that opens an SSE stream (no `Content-Length`; the
/// connection closes when the stream ends).
pub const STREAM_HEAD: &str = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";

/// Encodes one SSE frame with the given event name and data payload.
#[must_use]
pub fn encode_frame(event: &str, data: &str) -> String {
    let mut out = String::with_capacity(event.len() + data.len() + 16);
    let _ = writeln!(out, "event: {event}");
    for line in data.split('\n') {
        let _ = writeln!(out, "data: {line}");
    }
    out.push('\n');
    out
}

/// Encodes one broadcast item as an SSE frame.
#[must_use]
pub fn encode_item(item: &StreamItem) -> String {
    match item {
        StreamItem::Event(ev) => encode_frame("telemetry", &event_json_line(ev)),
        StreamItem::Snapshot { kind, json } => encode_frame(kind, json),
    }
}

/// Encodes the terminal `end` frame with the subscriber's accounting.
#[must_use]
pub fn encode_end(delivered: u64, dropped: u64) -> String {
    encode_frame(
        "end",
        &format!("{{\"delivered_events\":{delivered},\"dropped_events\":{dropped}}}"),
    )
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use xui_telemetry::Event;

    use super::*;

    #[test]
    fn telemetry_frames_reuse_the_jsonl_line() {
        let ev = Event::instant(7, 1, "artifact_emitted").with_arg("index", 0);
        let frame = encode_item(&StreamItem::Event(ev));
        assert_eq!(
            frame,
            format!("event: telemetry\ndata: {}\n\n", event_json_line(&ev))
        );
    }

    #[test]
    fn snapshot_frames_carry_kind_and_payload() {
        let item = StreamItem::Snapshot {
            kind: Arc::from("metrics"),
            json: Arc::from("{\"counters\":{}}"),
        };
        assert_eq!(encode_item(&item), "event: metrics\ndata: {\"counters\":{}}\n\n");
    }

    #[test]
    fn multi_line_data_becomes_multiple_data_lines() {
        let frame = encode_frame("state", "{\n}");
        assert_eq!(frame, "event: state\ndata: {\ndata: }\n\n");
    }

    #[test]
    fn end_frame_reports_the_loss_accounting() {
        assert_eq!(
            encode_end(12, 3),
            "event: end\ndata: {\"delivered_events\":12,\"dropped_events\":3}\n\n"
        );
    }
}
