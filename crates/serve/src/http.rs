//! A deliberately small HTTP/1.1 implementation on `std::net`.
//!
//! The workspace builds offline from vendored stubs, so there is no
//! tokio/hyper to lean on; the control plane needs exactly this much
//! HTTP: parse one request (line + headers + `Content-Length` body),
//! write one response, or hold the socket open for a server-sent-event
//! stream. Connections are `Connection: close` — every request gets a
//! fresh socket, which keeps the server loop trivial and is plenty for
//! a control plane (the load benchmark measures this path as-is).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Largest accepted request body (a scenario JSON is well under this).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request line or header line, newline included. A
/// client streaming an endless line is cut off here instead of growing
/// a `String` without bound while it occupies a worker.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// Most header lines accepted in one request.
pub const MAX_HEADERS: usize = 100;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (uppercase, e.g. `GET`).
    pub method: String,
    /// Decoded path without the query string (e.g. `/api/runs/3`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header names (lowercased) to values.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// The last value of query parameter `name`, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Query parameter `name` parsed as an integer, when present and
    /// well-formed.
    #[must_use]
    pub fn query_u64(&self, name: &str) -> Option<u64> {
        self.query_param(name).and_then(|v| v.parse().ok())
    }

    /// The path split into non-empty segments (`/api/runs/3` →
    /// `["api", "runs", "3"]`).
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be parsed. The server maps every variant to
/// a `400 Bad Request` (or closes the socket for an empty read).
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed before sending a request line.
    Eof,
    /// The request line or a header was malformed.
    Malformed(String),
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// Transport error while reading.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Eof => f.write_str("connection closed before a request line"),
            Self::Malformed(what) => write!(f, "malformed request: {what}"),
            Self::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds the {MAX_BODY_BYTES} byte limit")
            }
            Self::Io(e) => write!(f, "read error: {e}"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Decodes `%XX` escapes and `+` in a query component. Invalid escapes
/// pass through literally — a control plane should never 500 on a weird
/// query string.
fn percent_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    // Work on bytes throughout: slicing the &str by byte offsets would
    // panic when a `%` is followed by a multibyte UTF-8 character.
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                    out.push((hi << 4) | lo);
                    i += 2;
                } else {
                    out.push(b'%');
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`] bytes
/// (lossily decoded); `Ok(None)` on immediate EOF, `Malformed` when the
/// limit is hit before a newline.
fn read_line_capped<R: BufRead>(reader: &mut R) -> Result<Option<String>, ParseError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            break;
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos + 1 > MAX_LINE_BYTES {
                return Err(ParseError::Malformed(format!(
                    "line exceeds the {MAX_LINE_BYTES} byte limit"
                )));
            }
            buf.extend_from_slice(&chunk[..=pos]);
            reader.consume(pos + 1);
            break;
        }
        if buf.len() + chunk.len() > MAX_LINE_BYTES {
            return Err(ParseError::Malformed(format!(
                "line exceeds the {MAX_LINE_BYTES} byte limit"
            )));
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        reader.consume(n);
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Reads and parses one request from `reader`, with per-line and
/// header-count bounds so a hostile peer cannot grow memory unboundedly.
///
/// # Errors
///
/// See [`ParseError`]; an immediate EOF is [`ParseError::Eof`] so the
/// server can distinguish an idle probe (a port scanner, a
/// health-check TCP connect) from a malformed request.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, ParseError> {
    let Some(line) = read_line_capped(reader)? else {
        return Err(ParseError::Eof);
    };
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m, t),
        _ => return Err(ParseError::Malformed(format!("bad request line `{line}`"))),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = BTreeMap::new();
    let mut header_lines = 0usize;
    loop {
        let Some(hline) = read_line_capped(reader)? else {
            return Err(ParseError::Malformed("EOF inside headers".to_string()));
        };
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        header_lines += 1;
        if header_lines > MAX_HEADERS {
            return Err(ParseError::Malformed(format!(
                "more than {MAX_HEADERS} header lines"
            )));
        }
        let Some((name, value)) = hline.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{hline}`")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length = headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body_bytes = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(reader, &mut body_bytes)?;
    }
    let body = String::from_utf8_lossy(&body_bytes).into_owned();

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    })
}

/// One response ready to write: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self { status, content_type: "application/json", body: body.into() }
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn ok_json(body: impl Into<String>) -> Self {
        Self::json(200, body)
    }

    /// A JSON error envelope (`{"error": "..."}`) with the given status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    /// The standard `404` envelope.
    #[must_use]
    pub fn not_found(what: &str) -> Self {
        Self::error(404, &format!("not found: {what}"))
    }

    /// Writes the response (status line, headers, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the handful of status codes the server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Escapes a string as a JSON string literal (shared with the SSE
/// encoder; identical rules to the telemetry JSONL writer).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use std::io::BufReader;

    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let req = parse(
            "POST /api/runs?cap=4&x=a%20b HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/runs");
        assert_eq!(req.segments(), vec!["api", "runs"]);
        assert_eq!(req.query_u64("cap"), Some(4));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert_eq!(req.body, "{\"a\": 1}\n");
    }

    #[test]
    fn empty_connection_is_eof_not_malformed() {
        assert!(matches!(parse(""), Err(ParseError::Eof)));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        assert!(matches!(parse("nonsense\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse("GET /x\r\n\r\n"), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn percent_escape_followed_by_multibyte_utf8_does_not_panic() {
        // `%a` then `é`: i+3 would land inside the 2-byte char if the
        // decoder sliced the &str by byte index.
        let req = parse("GET /x?a=%aé&b=%e9&c=%%41 HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.query_param("a"), Some("%aé"));
        assert_eq!(req.query_param("b"), Some("\u{fffd}")); // lone 0xe9 byte, lossily replaced
        assert_eq!(req.query_param("c"), Some("%A"));
    }

    #[test]
    fn endless_header_line_is_rejected_not_buffered() {
        let raw = format!("GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("X-H-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(ParseError::BodyTooLarge(_))));
    }

    #[test]
    fn response_renders_headers_and_body() {
        let mut out = Vec::new();
        Response::ok_json("{}").write_to(&mut out).expect("write");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let r = Response::error(400, "bad \"name\"");
        assert_eq!(r.body, "{\"error\":\"bad \\\"name\\\"\"}");
    }
}
