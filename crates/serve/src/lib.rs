//! # xui-serve
//!
//! The live control plane of the reproduction: `xui serve` exposes the
//! declarative scenario layer over HTTP — browse the registry, enqueue
//! runs, watch a run's telemetry stream over server-sent events, and
//! fetch artifacts byte-identical to what the offline `xui run` path
//! writes.
//!
//! Everything is hand-rolled on `std::net` (the workspace builds
//! offline from vendored stubs; there is no async runtime to import):
//! a [`ThreadPool`]-fed accept loop ([`Server`]), a one-request
//! HTTP/1.1 parser ([`http`]), and an SSE encoder ([`sse`]) over the
//! telemetry crate's `BroadcastHub`. The core invariant is inherited
//! from the broadcast layer and tested end-to-end here: **streaming
//! never perturbs the run** — a slow subscriber loses events into an
//! explicit `dropped_events` counter, and on-disk/streamed artifacts
//! stay byte-identical whether zero or fifty clients watch.
//!
//! The [`load`] module turns the server on itself: an open-loop client
//! population (the same arrival model as the DES experiments) drives
//! request churn plus live SSE subscribers against an in-process
//! server, and the measured throughput/latency/loss lands in
//! `results/BENCH_sweep.json` under the `serve_load` key.
//!
//! See `docs/SERVE.md` for the endpoint reference and curl examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod load;
pub mod pool;
pub mod runs;
pub mod server;
pub mod sse;
pub mod sweeps;

pub use load::{consume_stream, http_request, run_load, LoadConfig, LoadReport, SubscriberReport};
pub use pool::{PoolSaturated, ThreadPool};
pub use runs::{RunManager, RunShared, MAX_HOLD_MS};
pub use server::{Server, ServeConfig};
pub use sweeps::{SweepManager, SweepShared};
