//! Run lifecycle management for the control plane: every submitted run
//! gets a [`BroadcastHub`] for live subscribers, a [`RingRecorder`]
//! holding the latest window of its lifecycle telemetry, and a metrics
//! shard — all fed from the scenario runner's progress hook through a
//! [`BroadcastRecorder`], so the artifacts stay byte-identical to an
//! offline `xui run` while any number of clients watch.
//!
//! Loss accounting is layered exactly like the rest of the telemetry
//! stack: the ring's overflow shows up as `telemetry.ring_dropped_events`
//! in every metrics snapshot and in the run status document, and each
//! SSE subscriber's own loss is tracked per-queue by the hub.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Serialize, Value};
use xui_scenario::{
    CancelError, ProgressHook, RunId, RunOptions, RunProgress, RunQueue, RunStatus, Scenario,
    SubmitError,
};
use xui_telemetry::{
    BroadcastHub, BroadcastRecorder, BroadcastSubscriber, Event, MetricsShard, Recorder,
    RingRecorder,
};

use crate::http::json_string;

/// Upper bound on the pre-run hold a submission may request (the hold
/// exists so stream clients can attach before a fast run finishes; it
/// must never become a way to park a worker forever).
pub const MAX_HOLD_MS: u64 = 10_000;

/// Lifecycle telemetry ring capacity per run.
const RUN_RING_CAP: usize = 4096;

/// Per-run live state shared between the executing worker (producer)
/// and the HTTP handlers (consumers).
#[derive(Debug)]
pub struct RunShared {
    hub: BroadcastHub,
    rec: Mutex<BroadcastRecorder<RingRecorder>>,
    metrics: Mutex<MetricsShard>,
    /// Monotonic sequence used as the virtual timestamp of lifecycle
    /// events (a control plane has no simulation clock to borrow).
    seq: AtomicU64,
}

impl RunShared {
    fn new() -> Self {
        let hub = BroadcastHub::new();
        Self {
            rec: Mutex::new(BroadcastRecorder::new(
                RingRecorder::new(RUN_RING_CAP),
                hub.clone(),
            )),
            hub,
            metrics: Mutex::new(MetricsShard::scoped("serve")),
            seq: AtomicU64::new(0),
        }
    }

    /// The hub a stream handler subscribes through.
    #[must_use]
    pub fn hub(&self) -> &BroadcastHub {
        &self.hub
    }

    /// Attaches a live subscriber with the given queue capacity.
    #[must_use]
    pub fn subscribe(&self, cap: usize) -> BroadcastSubscriber {
        self.hub.subscribe(cap)
    }

    /// The retained lifecycle events (latest window, oldest first).
    #[must_use]
    pub fn ring_events(&self) -> Vec<Event> {
        self.rec.lock().expect("run recorder poisoned").inner().events()
    }

    /// Lifecycle events overwritten because the ring filled.
    #[must_use]
    pub fn ring_dropped_events(&self) -> u64 {
        self.rec
            .lock()
            .expect("run recorder poisoned")
            .inner()
            .dropped_events()
    }

    /// Records one lifecycle event: into the ring and out to every
    /// subscriber.
    fn record(&self, name: &'static str, args: &[(&'static str, u64)]) {
        let ts = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ev = Event::instant(ts, 0, name);
        for &(k, v) in args {
            ev = ev.with_arg(k, v);
        }
        self.rec.lock().expect("run recorder poisoned").record(ev);
    }

    /// The current metrics snapshot as compact JSON, with the ring's
    /// overflow counter spliced in as `telemetry.ring_dropped_events`.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut snap = self.metrics.lock().expect("run metrics poisoned").snapshot();
        snap.counters
            .insert("telemetry.ring_dropped_events".to_string(), self.ring_dropped_events());
        serde_json::to_string(&snap).unwrap_or_else(|_| "{}".to_string())
    }

    /// Publishes the current metrics snapshot to every subscriber.
    fn publish_metrics(&self) {
        let json = self.metrics_json();
        self.hub.publish_snapshot("metrics", &json);
    }

    fn bump(&self, name: &str, n: u64) {
        self.metrics.lock().expect("run metrics poisoned").inc(name, n);
    }
}

/// Renders a run status (plus live telemetry accounting when the run is
/// tracked) as the `/api/runs/<id>` JSON document.
fn status_with_live(status: &RunStatus, shared: Option<&Arc<RunShared>>) -> Value {
    let mut v = status.to_value();
    if let Value::Object(entries) = &mut v {
        if let Some(s) = shared {
            entries.push((
                "ring_dropped_events".to_string(),
                Value::UInt(u128::from(s.ring_dropped_events())),
            ));
            entries.push((
                "live_events".to_string(),
                Value::UInt(s.ring_events().len() as u128),
            ));
            let subs: Vec<Value> = s
                .hub()
                .subscriber_stats()
                .iter()
                .map(|st| {
                    Value::Object(vec![
                        (
                            "delivered_events".to_string(),
                            Value::UInt(u128::from(st.delivered_events())),
                        ),
                        (
                            "dropped_events".to_string(),
                            Value::UInt(u128::from(st.dropped_events())),
                        ),
                        ("detached".to_string(), Value::Bool(st.is_detached())),
                    ])
                })
                .collect();
            entries.push(("subscribers".to_string(), Value::Array(subs)));
        }
    }
    v
}

/// The run manager: a [`RunQueue`] plus the per-run live state the HTTP
/// layer serves from.
pub struct RunManager {
    queue: RunQueue,
    shared: Arc<Mutex<BTreeMap<RunId, Arc<RunShared>>>>,
}

impl std::fmt::Debug for RunManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunManager").field("queue", &self.queue).finish()
    }
}

impl RunManager {
    /// Creates a manager whose queue has `workers` workers and at most
    /// `depth` waiting runs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `depth == 0`.
    #[must_use]
    pub fn new(workers: usize, depth: usize) -> Self {
        let shared: Arc<Mutex<BTreeMap<RunId, Arc<RunShared>>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let observed = Arc::clone(&shared);
        let queue = RunQueue::with_observer(
            workers,
            depth,
            Some(Arc::new(move |id, state| {
                // The submit path inserts the shared entry after the
                // queue assigns the id, so the `Queued` transition can
                // race the insert; every later transition sees it.
                let entry = observed.lock().expect("run shared map poisoned").get(&id).cloned();
                if let Some(s) = entry {
                    s.hub.publish_snapshot(
                        "state",
                        &format!(
                            "{{\"id\":{id},\"state\":{}}}",
                            json_string(state.name())
                        ),
                    );
                    if state.is_terminal() {
                        s.publish_metrics();
                        s.hub.close();
                    }
                }
            })),
        );
        Self { queue, shared }
    }

    /// Validates and enqueues `scenario`. `hold_ms` delays the start of
    /// execution (capped at [`MAX_HOLD_MS`]) so stream clients can
    /// attach before a fast run finishes; `save` additionally writes
    /// artifacts under `results/` exactly like `xui run` does.
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitError`] from the queue.
    pub fn submit(
        &self,
        scenario: Scenario,
        hold_ms: u64,
        save: bool,
    ) -> Result<RunId, SubmitError> {
        let shared = Arc::new(RunShared::new());
        let hook_shared = Arc::clone(&shared);
        let hold = Duration::from_millis(hold_ms.min(MAX_HOLD_MS));
        let progress = ProgressHook::new(move |p| {
            let s = &hook_shared;
            match p {
                RunProgress::Started { .. } => {
                    s.record("run_started", &[]);
                    s.bump("runs_started", 1);
                    s.publish_metrics();
                    if !hold.is_zero() {
                        std::thread::sleep(hold);
                    }
                }
                RunProgress::Artifact { id, bytes, index } => {
                    s.record(
                        "artifact_emitted",
                        &[("index", *index as u64), ("bytes", *bytes as u64)],
                    );
                    s.hub.publish_snapshot(
                        "artifact",
                        &format!(
                            "{{\"id\":{},\"index\":{index},\"bytes\":{bytes}}}",
                            json_string(id)
                        ),
                    );
                    s.bump("artifacts_emitted", 1);
                    s.bump("artifact_bytes", *bytes as u64);
                    s.publish_metrics();
                }
                RunProgress::Finished { passed, artifacts } => {
                    s.record(
                        "run_finished",
                        &[("passed", u64::from(*passed)), ("artifacts", *artifacts as u64)],
                    );
                    s.bump("runs_finished", 1);
                    s.publish_metrics();
                }
            }
        });
        let opts = RunOptions { save, progress, ..RunOptions::default() };
        let id = self.queue.submit(scenario, opts)?;
        self.shared
            .lock()
            .expect("run shared map poisoned")
            .insert(id, shared);
        Ok(id)
    }

    /// The live state of run `id`, if tracked.
    #[must_use]
    pub fn run_shared(&self, id: RunId) -> Option<Arc<RunShared>> {
        self.shared.lock().expect("run shared map poisoned").get(&id).cloned()
    }

    /// The queue's status snapshot for run `id`.
    #[must_use]
    pub fn status(&self, id: RunId) -> Option<RunStatus> {
        self.queue.status(id)
    }

    /// True once run `id` is `done` or `failed`.
    #[must_use]
    pub fn is_terminal(&self, id: RunId) -> bool {
        self.status(id)
            .is_some_and(|s| matches!(s.state.as_str(), "done" | "failed"))
    }

    /// The `/api/runs/<id>` JSON document: the queue status extended
    /// with ring overflow and per-subscriber loss accounting.
    #[must_use]
    pub fn status_value(&self, id: RunId) -> Option<Value> {
        let status = self.queue.status(id)?;
        Some(status_with_live(&status, self.run_shared(id).as_ref()))
    }

    /// The `/api/runs` JSON document: every run, oldest first.
    #[must_use]
    pub fn list_value(&self) -> Value {
        Value::Array(
            self.queue
                .list()
                .iter()
                .map(|st| status_with_live(st, self.run_shared(st.id).as_ref()))
                .collect(),
        )
    }

    /// The artifact body for `(run, artifact-id)`, byte-identical to
    /// what the offline runner produced, once the run finished.
    #[must_use]
    pub fn artifact(&self, id: RunId, artifact: &str) -> Option<String> {
        self.queue
            .report(id)
            .and_then(|r| r.artifact(artifact).map(str::to_string))
    }

    /// Cancels a still-queued run (the `DELETE /api/runs/<id>` verb).
    /// The queue pulls the job before any worker can claim it and marks
    /// the run `failed` with a cancellation error; the terminal
    /// transition flows through the usual observer, so stream clients
    /// see the state snapshot and the hub closes. Running and terminal
    /// runs are refused — the status history stays queryable.
    ///
    /// # Errors
    ///
    /// Propagates [`CancelError`] from the queue.
    pub fn delete(&self, id: RunId) -> Result<RunStatus, CancelError> {
        self.queue.cancel(id)
    }

    /// Blocks until run `id` is terminal or `timeout` passes.
    #[must_use]
    pub fn wait_terminal(&self, id: RunId, timeout: Duration) -> Option<RunStatus> {
        self.queue.wait_terminal(id, timeout)
    }

    /// Shuts the queue down (cancelling queued runs) and joins its
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        self.queue.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use xui_scenario::registry;
    use xui_telemetry::StreamItem;

    use super::*;

    fn fast_scenario() -> Scenario {
        registry::find("fig2_timeline").expect("preset exists")
    }

    #[test]
    fn lifecycle_events_reach_ring_and_subscriber() {
        let mgr = RunManager::new(1, 4);
        // Hold long enough to attach a subscriber before execution.
        let id = mgr.submit(fast_scenario(), 300, false).expect("submitted");
        let shared = mgr.run_shared(id).expect("tracked");
        let sub = shared.subscribe(1024);
        let status = mgr.wait_terminal(id, Duration::from_secs(120)).expect("known");
        assert_eq!(status.state, "done");

        let ring = shared.ring_events();
        assert_eq!(ring.first().map(|e| e.name), Some("run_started"));
        assert_eq!(ring.last().map(|e| e.name), Some("run_finished"));
        assert!(ring.iter().any(|e| e.name == "artifact_emitted"));
        assert_eq!(shared.ring_dropped_events(), 0);

        // The subscriber saw artifacts, metrics and the terminal state.
        let items = sub.drain();
        let mut kinds: Vec<String> = Vec::new();
        for item in &items {
            match item {
                StreamItem::Event(e) => kinds.push(format!("ev:{}", e.name)),
                StreamItem::Snapshot { kind, .. } => kinds.push(format!("snap:{kind}")),
            }
        }
        assert!(kinds.iter().any(|k| k == "ev:artifact_emitted"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k == "snap:metrics"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k == "snap:state"), "{kinds:?}");
        assert!(sub.is_closed(), "hub closes when the run ends");
        mgr.shutdown();
    }

    #[test]
    fn status_value_surfaces_ring_and_subscriber_accounting() {
        let mgr = RunManager::new(1, 4);
        let id = mgr.submit(fast_scenario(), 0, false).expect("submitted");
        let _ = mgr.wait_terminal(id, Duration::from_secs(120));
        let v = mgr.status_value(id).expect("status");
        let Value::Object(entries) = &v else { panic!("expected object") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        for key in ["id", "state", "artifacts", "ring_dropped_events", "subscribers"] {
            assert!(keys.contains(&key), "missing `{key}` in {keys:?}");
        }
        mgr.shutdown();
    }

    #[test]
    fn metrics_json_always_carries_the_ring_counter() {
        let shared = RunShared::new();
        let json = shared.metrics_json();
        assert!(
            json.contains("\"telemetry.ring_dropped_events\":0"),
            "{json}"
        );
    }
}
