//! Sweep orchestration for the control plane: `POST /api/sweeps`
//! expands a [`SweepSpec`] grid and drives every point through the
//! shared [`RunManager`], while a sweep-level `BroadcastHub` streams
//! per-point progress (`point` snapshots as each point is queued and as
//! it finishes, a final `sweep` summary) over the same SSE machinery the
//! per-run streams use.
//!
//! Each submitted sweep gets one monitor thread: it feeds points into
//! the run queue in expansion order (backing off while the queue is
//! full, so a grid larger than the queue depth still drains the whole
//! pool without over-committing it), then watches each run to a
//! terminal state. Server teardown shuts the run manager down first —
//! cancelling queued points — so monitors always terminate, and
//! [`SweepManager::shutdown`] joins them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;
use xui_scenario::sweep::SweepPoint;
use xui_scenario::{SubmitError, SweepSpec};
use xui_telemetry::{BroadcastHub, BroadcastSubscriber};

use crate::http::json_string;
use crate::runs::RunManager;

/// How long the monitor backs off when the run queue is full.
const FULL_BACKOFF: Duration = Duration::from_millis(25);

/// How long each terminal-wait slice blocks before re-checking; bounded
/// so monitors notice manager shutdown promptly.
const WAIT_SLICE: Duration = Duration::from_millis(200);

/// One point's lifecycle as the sweep sees it.
#[derive(Debug, Clone)]
pub struct PointState {
    /// Point name (`<base>@k=v,...`).
    pub name: String,
    /// The run id once the point entered the queue.
    pub run_id: Option<u64>,
    /// `pending` → `queued` → `done`/`failed`/`cancelled`.
    pub state: String,
    /// The experiment's pass criterion, once terminal.
    pub passed: Option<bool>,
}

impl PointState {
    fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "run_id".to_string(),
                self.run_id.map_or(Value::Null, |id| Value::UInt(u128::from(id))),
            ),
            ("state".to_string(), Value::Str(self.state.clone())),
            ("passed".to_string(), self.passed.map_or(Value::Null, Value::Bool)),
        ])
    }

    fn snapshot_json(&self) -> String {
        serde_json::to_string(&self.to_value()).unwrap_or_default()
    }
}

/// Per-sweep live state shared between the monitor thread (producer)
/// and the HTTP handlers (consumers).
#[derive(Debug)]
pub struct SweepShared {
    id: u64,
    name: String,
    hub: BroadcastHub,
    points: Mutex<Vec<PointState>>,
}

impl SweepShared {
    fn new(id: u64, name: String, points: &[SweepPoint]) -> Self {
        Self {
            id,
            name,
            hub: BroadcastHub::new(),
            points: Mutex::new(
                points
                    .iter()
                    .map(|p| PointState {
                        name: p.name.clone(),
                        run_id: None,
                        state: "pending".to_string(),
                        passed: None,
                    })
                    .collect(),
            ),
        }
    }

    /// Attaches a live subscriber with the given queue capacity.
    #[must_use]
    pub fn subscribe(&self, cap: usize) -> BroadcastSubscriber {
        self.hub.subscribe(cap)
    }

    /// Whether every point reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.points().iter().all(PointState::is_terminal)
    }

    /// The current per-point states, in expansion order.
    #[must_use]
    pub fn points(&self) -> Vec<PointState> {
        self.points.lock().expect("sweep points poisoned").clone()
    }

    /// The `/api/sweeps/<id>` JSON document.
    #[must_use]
    pub fn status_value(&self) -> Value {
        let points = self.points();
        let done = points.iter().filter(|p| p.is_terminal()).count();
        let passed = if done == points.len() {
            Value::Bool(points.iter().all(|p| p.passed == Some(true)))
        } else {
            Value::Null
        };
        Value::Object(vec![
            ("id".to_string(), Value::UInt(u128::from(self.id))),
            ("sweep".to_string(), Value::Str(self.name.clone())),
            ("total".to_string(), Value::UInt(points.len() as u128)),
            ("done".to_string(), Value::UInt(done as u128)),
            ("passed".to_string(), passed),
            ("points".to_string(), Value::Array(points.iter().map(PointState::to_value).collect())),
        ])
    }

    fn update_point(&self, index: usize, f: impl FnOnce(&mut PointState)) {
        let json = {
            let mut points = self.points.lock().expect("sweep points poisoned");
            f(&mut points[index]);
            points[index].snapshot_json()
        };
        self.hub.publish_snapshot("point", &json);
    }

    fn finish(&self) {
        let points = self.points();
        let summary = Value::Object(vec![
            ("id".to_string(), Value::UInt(u128::from(self.id))),
            ("done".to_string(), Value::UInt(points.len() as u128)),
            (
                "passed".to_string(),
                Value::Bool(points.iter().all(|p| p.passed == Some(true))),
            ),
        ]);
        self.hub
            .publish_snapshot("sweep", &serde_json::to_string(&summary).unwrap_or_default());
        self.hub.close();
    }
}

/// The sweep manager: expanded sweeps, their monitor threads, and the
/// per-sweep live state the HTTP layer serves from.
#[derive(Debug, Default)]
pub struct SweepManager {
    next_id: AtomicU64,
    sweeps: Mutex<BTreeMap<u64, Arc<SweepShared>>>,
    monitors: Mutex<Vec<JoinHandle<()>>>,
}

impl SweepManager {
    /// Expands `spec` and starts a monitor thread driving every point
    /// through `manager`; returns the sweep id and point count.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors (bad grids, unknown presets) without
    /// submitting anything.
    pub fn submit(
        &self,
        manager: &Arc<RunManager>,
        shutting_down: &Arc<AtomicBool>,
        spec: &SweepSpec,
        save: bool,
    ) -> Result<(u64, usize), String> {
        let points = spec.expand()?;
        let total = points.len();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let shared = Arc::new(SweepShared::new(id, spec.name.clone(), &points));
        self.sweeps
            .lock()
            .expect("sweep map poisoned")
            .insert(id, Arc::clone(&shared));

        let mgr = Arc::clone(manager);
        let stop = Arc::clone(shutting_down);
        let monitor = std::thread::Builder::new()
            .name(format!("xui-sweep-monitor-{id}"))
            .spawn(move || drive_sweep(&mgr, &stop, &shared, points, save))
            .map_err(|e| format!("cannot spawn sweep monitor: {e}"))?;
        self.monitors.lock().expect("sweep monitors poisoned").push(monitor);
        Ok((id, total))
    }

    /// The live state of sweep `id`, if tracked.
    #[must_use]
    pub fn shared(&self, id: u64) -> Option<Arc<SweepShared>> {
        self.sweeps.lock().expect("sweep map poisoned").get(&id).cloned()
    }

    /// The `/api/sweeps` JSON document: every sweep, oldest first.
    #[must_use]
    pub fn list_value(&self) -> Value {
        Value::Array(
            self.sweeps
                .lock()
                .expect("sweep map poisoned")
                .values()
                .map(|s| s.status_value())
                .collect(),
        )
    }

    /// Joins every monitor thread. Call *after* the run manager shut
    /// down (which cancels queued points), or monitors may still be
    /// waiting on live runs.
    pub fn shutdown(&self) {
        let monitors: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.monitors.lock().expect("sweep monitors poisoned"));
        for m in monitors {
            let _ = m.join();
        }
    }
}

/// The monitor body: submit every point (backing off while the queue is
/// full), then watch each to a terminal state, publishing progress.
fn drive_sweep(
    mgr: &Arc<RunManager>,
    stop: &Arc<AtomicBool>,
    shared: &Arc<SweepShared>,
    points: Vec<SweepPoint>,
    save: bool,
) {
    let mut submitted: Vec<(usize, u64)> = Vec::with_capacity(points.len());
    'submit: for (i, point) in points.into_iter().enumerate() {
        loop {
            if stop.load(Ordering::Relaxed) {
                cancel_rest(shared, i);
                break 'submit;
            }
            match mgr.submit(point.scenario.clone(), 0, save) {
                Ok(run_id) => {
                    shared.update_point(i, |p| {
                        p.run_id = Some(run_id);
                        p.state = "queued".to_string();
                    });
                    submitted.push((i, run_id));
                    break;
                }
                Err(SubmitError::Full { .. }) => std::thread::sleep(FULL_BACKOFF),
                Err(SubmitError::ShuttingDown) => {
                    cancel_rest(shared, i);
                    break 'submit;
                }
                Err(SubmitError::Invalid(msg)) => {
                    // Expansion validated every point, so this is a
                    // runner-level regression; record it and move on.
                    let _ = msg;
                    shared.update_point(i, |p| {
                        p.state = "failed".to_string();
                        p.passed = Some(false);
                    });
                    break;
                }
            }
        }
    }

    for (i, run_id) in submitted {
        loop {
            let Some(status) = mgr.wait_terminal(run_id, WAIT_SLICE) else {
                // Unknown id: the manager was torn down under us.
                shared.update_point(i, |p| {
                    p.state = "cancelled".to_string();
                });
                break;
            };
            if matches!(status.state.as_str(), "done" | "failed") {
                shared.update_point(i, |p| {
                    p.state = status.state.clone();
                    p.passed = Some(status.passed.unwrap_or(false));
                });
                break;
            }
        }
    }
    shared.finish();
}

/// Marks every not-yet-submitted point from `from` on as cancelled.
fn cancel_rest(shared: &Arc<SweepShared>, from: usize) {
    let total = shared.points().len();
    for i in from..total {
        shared.update_point(i, |p| {
            if p.run_id.is_none() {
                p.state = "cancelled".to_string();
            }
        });
    }
}

/// Parses the `POST /api/sweeps` body: `{"sweep": <preset name or spec
/// object>, "save": bool}`.
///
/// # Errors
///
/// Returns a user-facing message for malformed bodies.
pub fn parse_sweep_submission(body: &str) -> Result<(SweepSpec, bool), String> {
    use serde::Deserialize;
    let v = serde_json::value_from_str(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Value::Object(entries) = &v else {
        return Err("the body must be a JSON object".to_string());
    };
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let spec = match field("sweep") {
        Some(Value::Str(name)) => xui_scenario::sweep::find_preset(name)
            .ok_or_else(|| format!("unknown sweep `{name}` (see `xui list`)"))?,
        Some(spec @ Value::Object(_)) => {
            SweepSpec::from_value(spec).map_err(|e| format!("invalid sweep spec: {e}"))?
        }
        Some(other) => {
            return Err(format!("`sweep` must be a preset name or a spec object, got {other:?}"))
        }
        None => return Err("the body needs a `sweep` field".to_string()),
    };
    let save = match field("save") {
        Some(Value::Bool(b)) => *b,
        None | Some(Value::Null) => false,
        Some(other) => return Err(format!("`save` must be a boolean, got {other:?}")),
    };
    Ok((spec, save))
}

/// The `202` body for an accepted sweep.
#[must_use]
pub fn accepted_json(id: u64, name: &str, total: usize) -> String {
    format!(
        "{{\"id\":{id},\"sweep\":{},\"points\":{total},\"status\":\"/api/sweeps/{id}\",\"events\":\"/api/sweeps/{id}/events\"}}",
        json_string(name)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_parsing_accepts_presets_and_inline_specs() {
        let (spec, save) =
            parse_sweep_submission("{\"sweep\":\"sweep_fig2_grid\",\"save\":true}").expect("parses");
        assert_eq!(spec.name, "sweep_fig2_grid");
        assert!(save);

        let inline = xui_scenario::sweep::find_preset("sweep_fig2_grid").unwrap().to_json();
        let (spec, save) =
            parse_sweep_submission(&format!("{{\"sweep\":{inline}}}")).expect("inline parses");
        assert_eq!(spec.name, "sweep_fig2_grid");
        assert!(!save);
    }

    #[test]
    fn submission_parsing_rejects_garbage() {
        assert!(parse_sweep_submission("not json").is_err());
        assert!(parse_sweep_submission("{}").is_err());
        assert!(parse_sweep_submission("{\"sweep\":\"no_such_sweep\"}").is_err());
        assert!(parse_sweep_submission("{\"sweep\":3}").is_err());
        assert!(parse_sweep_submission("{\"sweep\":\"sweep_fig2_grid\",\"save\":3}").is_err());
    }

    #[test]
    fn a_sweep_drives_every_point_to_terminal_and_closes_its_hub() {
        let mgr = Arc::new(RunManager::new(2, 4));
        let stop = Arc::new(AtomicBool::new(false));
        let sweeps = SweepManager::default();
        // A 4-point grid through a depth-4 queue exercises the
        // backoff-on-full path without slowing the test down.
        let spec = SweepSpec::from_json(
            r#"{
                "name": "serve_test",
                "scenario": "fig2_timeline",
                "grid": {
                    "sender_countdown": [500, 600],
                    "receiver_countdown": [20000, 30000]
                }
            }"#,
        )
        .expect("spec parses");
        let (id, total) = sweeps.submit(&mgr, &stop, &spec, false).expect("submitted");
        assert_eq!(total, 4);
        let shared = sweeps.shared(id).expect("tracked");
        let sub = shared.subscribe(1024);

        sweeps.shutdown(); // joins the monitor: the sweep is over
        assert!(shared.is_terminal());
        let points = shared.points();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.state == "done" && p.passed == Some(true)), "{points:?}");

        let items = sub.drain();
        assert!(sub.is_closed(), "hub closes when the sweep ends");
        let kinds: Vec<String> = items
            .iter()
            .filter_map(|i| match i {
                xui_telemetry::StreamItem::Snapshot { kind, .. } => Some(kind.to_string()),
                xui_telemetry::StreamItem::Event(_) => None,
            })
            .collect();
        assert!(kinds.iter().filter(|k| *k == "point").count() >= 8, "{kinds:?}");
        assert_eq!(kinds.last().map(String::as_str), Some("sweep"), "{kinds:?}");

        let v = shared.status_value();
        let Value::Object(entries) = &v else { panic!("expected object") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        for key in ["id", "sweep", "total", "done", "passed", "points"] {
            assert!(keys.contains(&key), "missing `{key}` in {keys:?}");
        }
        mgr.shutdown();
    }

    #[test]
    fn shutdown_mid_sweep_cancels_pending_points() {
        let mgr = Arc::new(RunManager::new(1, 2));
        let stop = Arc::new(AtomicBool::new(true)); // already shutting down
        let sweeps = SweepManager::default();
        let spec = SweepSpec::from_json(
            r#"{
                "name": "serve_cancel",
                "scenario": "fig2_timeline",
                "grid": { "sender_countdown": [500, 600] }
            }"#,
        )
        .expect("spec parses");
        let (id, _) = sweeps.submit(&mgr, &stop, &spec, false).expect("submitted");
        sweeps.shutdown();
        let shared = sweeps.shared(id).expect("tracked");
        assert!(shared.is_terminal());
        assert!(
            shared.points().iter().all(|p| p.state == "cancelled"),
            "{:?}",
            shared.points()
        );
        mgr.shutdown();
    }
}
