//! A bounded thread pool for connection handling.
//!
//! The accept loop hands each socket to this pool; when every worker is
//! busy *and* the backlog is full, [`ThreadPool::execute`] refuses the
//! job and the server answers `503` instead of queueing unboundedly —
//! the same drop-over-stall policy the telemetry broadcast layer uses.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    backlog: usize,
    busy: AtomicUsize,
    shutting_down: AtomicBool,
}

/// The pool. Dropping it without [`ThreadPool::shutdown`] detaches the
/// workers; call `shutdown` for a clean join.
pub struct ThreadPool {
    inner: Arc<Inner>,
    /// Behind a mutex so [`ThreadPool::shutdown`] can join through a
    /// shared reference (the server tears down via `Arc<Ctx>`).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The pool refused a job: workers busy and the backlog full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSaturated;

impl std::fmt::Display for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all workers busy and the backlog is full")
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.lock().map_or(0, |w| w.len()))
            .field("backlog", &self.inner.backlog)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `workers` threads and room for `backlog`
    /// jobs waiting beyond the ones being executed.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `backlog == 0`.
    #[must_use]
    pub fn new(workers: usize, backlog: usize) -> Self {
        assert!(workers > 0, "the pool needs at least one worker");
        assert!(backlog > 0, "the pool needs a positive backlog");
        let inner = Arc::new(Inner {
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            backlog,
            busy: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("xui-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { inner, workers: Mutex::new(handles) }
    }

    /// Runs `job` on a pool worker.
    ///
    /// # Errors
    ///
    /// [`PoolSaturated`] when the backlog is full (the caller should
    /// shed load, e.g. with a `503`).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolSaturated> {
        let mut jobs = self.inner.jobs.lock().expect("pool jobs poisoned");
        if jobs.len() >= self.inner.backlog {
            return Err(PoolSaturated);
        }
        jobs.push_back(Box::new(job));
        drop(jobs);
        self.inner.job_ready.notify_one();
        Ok(())
    }

    /// Workers currently executing a job.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// True when [`ThreadPool::execute`] would accept a job right now.
    /// Single-submitter callers (the accept loop) can use this to shed
    /// load *before* constructing the job, race-free.
    #[must_use]
    pub fn has_capacity(&self) -> bool {
        self.inner.jobs.lock().expect("pool jobs poisoned").len() < self.inner.backlog
    }

    /// Stops accepting work, discards the waiting backlog, and joins the
    /// workers after their current jobs finish. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::Relaxed);
        self.inner.jobs.lock().expect("pool jobs poisoned").clear();
        self.inner.job_ready.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("pool workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut jobs = inner.jobs.lock().expect("pool jobs poisoned");
            loop {
                if inner.shutting_down.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = inner.job_ready.wait(jobs).expect("pool jobs poisoned");
            }
        };
        // Contain handler panics: an unwinding job must neither kill
        // the worker thread (a handful of malformed requests would
        // otherwise drain the whole pool) nor leak the busy counter —
        // the decrement rides a drop guard so it survives the unwind.
        struct BusyGuard<'a>(&'a AtomicUsize);
        impl Drop for BusyGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        inner.busy.fetch_add(1, Ordering::Relaxed);
        let _busy = BusyGuard(&inner.busy);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            let name = std::thread::current().name().unwrap_or("?").to_string();
            eprintln!("[xui-serve] a connection handler panicked on {name}; worker continues");
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn jobs_run_and_shutdown_joins() {
        let pool = ThreadPool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..6u32 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap()).expect("accepted");
        }
        let mut got: Vec<u32> = (0..6)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).expect("job ran"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        pool.shutdown();
        pool.shutdown(); // idempotent
    }

    #[test]
    fn panicking_job_neither_kills_the_worker_nor_leaks_busy() {
        let pool = ThreadPool::new(1, 8);
        // With one worker, every panic landing on it must leave it alive.
        for _ in 0..4 {
            pool.execute(|| panic!("handler bug")).expect("accepted");
        }
        let (tx, rx) = mpsc::channel();
        pool.execute(move || tx.send(42u32).unwrap()).expect("accepted");
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(42), "worker survived panics");
        pool.shutdown(); // joins the worker, so the last decrement has landed
        assert_eq!(pool.busy(), 0, "busy counter survived the unwinds");
    }

    #[test]
    fn saturated_pool_refuses_instead_of_queueing() {
        let pool = ThreadPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().ok();
        })
        .expect("first job accepted");
        started_rx.recv_timeout(Duration::from_secs(30)).expect("worker started");
        // Worker busy: one backlog slot, then refusal.
        pool.execute(|| {}).expect("backlog slot accepted");
        assert_eq!(pool.execute(|| {}), Err(PoolSaturated));
        block_tx.send(()).unwrap();
        pool.shutdown();
    }
}
