//! `serve_load` — benchmark the `xui serve` control plane against
//! itself: an in-process server, a watched scenario run, N live SSE
//! subscribers (one deliberately slow), and open-loop request churn
//! from the same client-population model the DES experiments use.
//!
//! The report lands under the `serve_load` key of
//! `results/BENCH_sweep.json` (merged, like every other section of
//! that shared file).

use xui_bench::{banner, record_bench_section, CliSpec, Table};
use xui_serve::{run_load, LoadConfig};

fn main() {
    let spec = CliSpec::new("serve_load", "open-loop load benchmark of the xui serve control plane")
        .option("--scenario", "NAME", "scenario preset the watched run executes (default fig2_timeline)")
        .option("--subscribers", "N", "concurrent SSE subscribers, last one slow (default 8)")
        .option("--requests", "N", "total churn requests (default 240)")
        .option("--clients", "N", "modeled open-loop clients (default 100000)")
        .option("--rps", "R", "per-client request rate (default 0.006)")
        .option("--seed", "S", "arrival RNG seed (default 7)");
    let parsed = spec.parse_or_exit();

    let mut cfg = LoadConfig::default();
    let overrides = (|| -> Result<(), xui_bench::CliError> {
        if let Some(s) = parsed.opt("--scenario") {
            cfg.scenario = s.to_string();
        }
        if let Some(n) = parsed.opt_usize("--subscribers")? {
            cfg.subscribers = n.max(1);
        }
        if let Some(n) = parsed.opt_u64("--requests")? {
            cfg.requests = n;
        }
        if let Some(n) = parsed.opt_u64("--clients")? {
            cfg.clients = n.max(1);
        }
        if let Some(r) = parsed.opt("--rps") {
            cfg.rps_per_client = r.parse().map_err(|_| xui_bench::CliError::InvalidValue {
                option: "--rps".to_string(),
                value: r.to_string(),
                want: "a positive number".to_string(),
            })?;
        }
        if let Some(s) = parsed.opt_u64("--seed")? {
            cfg.seed = s;
        }
        Ok(())
    })();
    if let Err(e) = overrides {
        eprintln!("error: {e}\n\n{}", spec.usage());
        std::process::exit(2);
    }

    banner(
        "serve_load",
        "control-plane throughput, latency, and streaming loss under open-loop churn",
        "extension: the xui serve layer measured by the paper's own client model",
    );

    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["run state".to_string(), report.run_state.clone()]);
    t.row(vec!["run artifacts".to_string(), report.run_artifacts.to_string()]);
    t.row(vec![
        "requests (ok/sent)".to_string(),
        format!("{}/{}", report.requests_ok, report.requests_sent),
    ]);
    t.row(vec!["offered rps".to_string(), format!("{:.0}", report.offered_rps)]);
    t.row(vec!["achieved rps".to_string(), format!("{:.0}", report.achieved_rps)]);
    t.row(vec!["p50 response".to_string(), format!("{}µs", report.p50_us)]);
    t.row(vec!["p99 response".to_string(), format!("{}µs", report.p99_us)]);
    for (i, sub) in report.subscribers.iter().enumerate() {
        t.row(vec![
            format!("subscriber {i} (cap {})", sub.cap),
            format!("{} delivered, {} dropped", sub.delivered_events, sub.dropped_events),
        ]);
    }
    t.print();

    record_bench_section("serve_load", &report);
    println!("\n    [results/BENCH_sweep.json section `serve_load`]");

    let ok = report.run_state == "done" && report.requests_ok == report.requests_sent;
    std::process::exit(i32::from(!ok));
}
