//! The self-load benchmark behind the `serve_load` binary: start an
//! in-process [`Server`](crate::Server), submit a run, attach a
//! population of live SSE subscribers (one deliberately slow), and
//! drive open-loop request churn against the status endpoints — the
//! same [`ClientPopulation`] arrival model the DES experiments use,
//! with its 2 GHz tick timeline mapped onto wall-clock microseconds.
//!
//! The report records achieved request throughput, response latency
//! percentiles, and every subscriber's delivery/loss accounting; the
//! `serve_load` binary lands it in `results/BENCH_sweep.json` so the
//! control plane's capacity is tracked next to the DES and telemetry
//! numbers.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use xui_des::stats::{Histogram, Summary};
use xui_workloads::openloop::{ArrivalBatcher, ClientPopulation};

use crate::server::{ServeConfig, Server};

/// How to shape the load run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadConfig {
    /// Scenario preset the watched run executes.
    pub scenario: String,
    /// Concurrent SSE subscribers attached to the run (the last one is
    /// deliberately slow: queue capacity 1, paced drains).
    pub subscribers: usize,
    /// Total churn requests to issue across the churn threads.
    pub requests: u64,
    /// Modeled open-loop clients generating the churn arrivals.
    pub clients: u64,
    /// Per-client request rate (requests/second).
    pub rps_per_client: f64,
    /// Churn threads sharing the arrival stream.
    pub churn_threads: usize,
    /// RNG seed for the arrival draws.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            scenario: "fig2_timeline".to_string(),
            subscribers: 8,
            requests: 240,
            clients: 100_000,
            rps_per_client: 0.006, // 600 req/s aggregate
            churn_threads: 4,
            seed: 7,
        }
    }
}

/// One subscriber's outcome, as parsed from its stream's `end` frame.
#[derive(Debug, Clone, Serialize)]
pub struct SubscriberReport {
    /// Queue capacity the subscriber asked for (`?cap=`).
    pub cap: u64,
    /// Consumer pacing it asked for (`?drain_ms=`).
    pub drain_ms: u64,
    /// SSE frames received (telemetry + snapshots, excluding `end`).
    pub frames: u64,
    /// `delivered_events` from the `end` frame.
    pub delivered_events: u64,
    /// `dropped_events` from the `end` frame.
    pub dropped_events: u64,
}

/// Everything the load run measured.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Final state of the watched run (`done` expected).
    pub run_state: String,
    /// Artifacts the watched run produced.
    pub run_artifacts: u64,
    /// Churn requests issued.
    pub requests_sent: u64,
    /// Churn requests answered `2xx`.
    pub requests_ok: u64,
    /// Wall-clock of the churn phase, milliseconds.
    pub wall_ms: f64,
    /// Achieved churn throughput, requests/second.
    pub achieved_rps: f64,
    /// Offered (configured) aggregate load, requests/second.
    pub offered_rps: f64,
    /// Response-latency distribution, microseconds.
    pub latency_us: Summary,
    /// p50 response latency, microseconds.
    pub p50_us: u64,
    /// p99 response latency, microseconds.
    pub p99_us: u64,
    /// Per-subscriber outcome; the last entry is the slow one.
    pub subscribers: Vec<SubscriberReport>,
}

/// A minimal one-shot HTTP client (connect, one request, read to EOF),
/// shared by the load driver, the CI smoke script, and the integration
/// tests. Returns `(status, body)`.
///
/// # Errors
///
/// Propagates transport errors; a malformed response is an
/// `InvalidData` error.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: xui\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &str) -> io::Result<(u16, String)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response without header/body separator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("response without a status code"))?;
    Ok((status, body.to_string()))
}

/// Reads one SSE stream to EOF and parses it into a
/// [`SubscriberReport`]: `cap` bounds the server-side subscriber
/// queue, `drain_ms` paces the server's write loop to model a slow
/// consumer.
///
/// # Errors
///
/// Propagates transport errors; a non-200 answer is `InvalidData`.
pub fn consume_stream(
    addr: SocketAddr,
    path: &str,
    cap: u64,
    drain_ms: u64,
) -> io::Result<SubscriberReport> {
    let (status, body) =
        http_request(addr, "GET", &format!("{path}?cap={cap}&drain_ms={drain_ms}"), None)?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("stream request answered {status}"),
        ));
    }
    let mut frames = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut in_end = false;
    for line in body.lines() {
        if let Some(name) = line.strip_prefix("event: ") {
            in_end = name == "end";
            if !in_end {
                frames += 1;
            }
        } else if in_end {
            if let Some(data) = line.strip_prefix("data: ") {
                if let Ok(v) = serde_json::value_from_str(data) {
                    delivered = serde::field(&v, "end frame", "delivered_events").unwrap_or(0);
                    dropped = serde::field(&v, "end frame", "dropped_events").unwrap_or(0);
                }
            }
        }
    }
    Ok(SubscriberReport { cap, drain_ms, frames, delivered_events: delivered, dropped_events: dropped })
}

/// The churn request mix: cheap reads against the three status
/// endpoints, round-robin.
fn churn_path(i: u64, run_id: u64) -> String {
    match i % 3 {
        0 => "/api/healthz".to_string(),
        1 => "/api/scenarios".to_string(),
        _ => format!("/api/runs/{run_id}"),
    }
}

/// Runs the whole benchmark against an in-process server and returns
/// the report. Artifacts are *not* saved (the watched run streams
/// in-memory); the caller records the report itself.
///
/// # Errors
///
/// Returns a message when the server cannot start or the HTTP
/// choreography fails.
///
/// # Panics
///
/// Panics if internal thread joins fail (a poisoned test run).
#[allow(clippy::too_many_lines)]
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let server = Server::start(&ServeConfig {
        // Every live stream parks one handler; churn needs headroom.
        handler_workers: cfg.subscribers + cfg.churn_threads + 4,
        handler_backlog: 256,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr();

    // Submit the watched run with a hold long enough for the
    // subscribers to attach before execution starts.
    let submit_body = format!("{{\"scenario\":{},\"hold_ms\":800}}", crate::http::json_string(&cfg.scenario));
    let (status, body) = http_request(addr, "POST", "/api/runs", Some(&submit_body))
        .map_err(|e| format!("submit failed: {e}"))?;
    if status != 202 {
        return Err(format!("submit answered {status}: {body}"));
    }
    let run_id: u64 = serde_json::value_from_str(&body)
        .ok()
        .and_then(|v| serde::field(&v, "submit response", "id").ok())
        .ok_or_else(|| format!("submit response without an id: {body}"))?;

    // Subscribers: all fast except the last (cap 1, paced drains).
    let mut sub_handles = Vec::new();
    for i in 0..cfg.subscribers {
        let slow = i + 1 == cfg.subscribers;
        let (cap, drain_ms) = if slow { (1, 200) } else { (4096, 0) };
        let path = format!("/api/runs/{run_id}/events");
        sub_handles.push(
            std::thread::Builder::new()
                .name(format!("serve-load-sub-{i}"))
                .spawn(move || consume_stream(addr, &path, cap, drain_ms))
                .expect("spawn subscriber"),
        );
    }

    // Churn: open-loop arrivals from the shared population, split
    // across the churn threads; each request's latency is recorded
    // from its actual send (the achieved-vs-offered gap shows up in
    // `achieved_rps`, not hidden inside the percentiles).
    let per_thread_requests = cfg.requests / cfg.churn_threads as u64;
    let population = ClientPopulation {
        clients: cfg.clients / cfg.churn_threads as u64,
        rps_per_client: cfg.rps_per_client,
    };
    let churn_started = Instant::now();
    let mut churn_handles = Vec::new();
    for t in 0..cfg.churn_threads {
        let seed = cfg.seed ^ (0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(t as u64 + 1));
        churn_handles.push(
            std::thread::Builder::new()
                .name(format!("serve-load-churn-{t}"))
                .spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut batcher = ArrivalBatcher::new(population, 64);
                    let mut hist = Histogram::new();
                    let mut sent = 0u64;
                    let mut ok = 0u64;
                    let start = Instant::now();
                    'outer: loop {
                        let arrivals: Vec<u64> = batcher.draw(&mut rng).to_vec();
                        for ticks in arrivals {
                            if sent >= per_thread_requests {
                                break 'outer;
                            }
                            // 2 GHz ticks → µs on the wall clock.
                            let due = Duration::from_micros(ticks / 2_000);
                            if let Some(wait) = due.checked_sub(start.elapsed()) {
                                std::thread::sleep(wait);
                            }
                            let sent_at = Instant::now();
                            let path = churn_path(sent, run_id);
                            sent += 1;
                            if let Ok((status, _)) = http_request(addr, "GET", &path, None) {
                                if (200..300).contains(&status) {
                                    ok += 1;
                                }
                            }
                            let us = u64::try_from(sent_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                            hist.record(us);
                        }
                    }
                    (hist, sent, ok)
                })
                .expect("spawn churn thread"),
        );
    }

    let mut latency = Histogram::new();
    let mut requests_sent = 0u64;
    let mut requests_ok = 0u64;
    for h in churn_handles {
        let (hist, sent, ok) = h.join().expect("churn thread panicked");
        latency.merge(&hist);
        requests_sent += sent;
        requests_ok += ok;
    }
    let wall_ms = churn_started.elapsed().as_secs_f64() * 1e3;

    // The streams end when the run does (the hub closes at the
    // terminal transition), so joining the subscribers is also the
    // wait-for-terminal barrier; only then is the status final.
    let mut subscribers = Vec::new();
    for h in sub_handles {
        match h.join().expect("subscriber thread panicked") {
            Ok(report) => subscribers.push(report),
            Err(e) => return Err(format!("subscriber stream failed: {e}")),
        }
    }

    let (_, status_body) = http_request(addr, "GET", &format!("/api/runs/{run_id}"), None)
        .map_err(|e| format!("final status failed: {e}"))?;
    let status_v = serde_json::value_from_str(&status_body)
        .map_err(|e| format!("final status is not JSON: {e}"))?;
    let run_state: String =
        serde::field(&status_v, "run status", "state").unwrap_or_else(|_| "unknown".to_string());
    let artifacts: Vec<String> =
        serde::field(&status_v, "run status", "artifacts").unwrap_or_default();

    // Clean shutdown through the public endpoint, like CI does.
    let _ = http_request(addr, "POST", "/api/shutdown", None);
    server.join();

    let summary = latency.summary();
    Ok(LoadReport {
        config: cfg.clone(),
        run_state,
        run_artifacts: artifacts.len() as u64,
        requests_sent,
        requests_ok,
        wall_ms,
        achieved_rps: if wall_ms > 0.0 { requests_sent as f64 / (wall_ms / 1e3) } else { 0.0 },
        offered_rps: cfg.clients as f64 * cfg.rps_per_client,
        latency_us: summary,
        p50_us: latency.percentile(50.0),
        p99_us: latency.percentile(99.0),
        subscribers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_extracts_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{}");
        assert!(parse_response("garbage").is_err());
    }

    #[test]
    fn churn_mix_cycles_the_cheap_endpoints() {
        assert_eq!(churn_path(0, 3), "/api/healthz");
        assert_eq!(churn_path(1, 3), "/api/scenarios");
        assert_eq!(churn_path(2, 3), "/api/runs/3");
        assert_eq!(churn_path(3, 3), "/api/healthz");
    }
}
