//! The HTTP server: a `TcpListener` accept loop feeding a bounded
//! [`ThreadPool`], routing onto the scenario registry, the
//! [`RunManager`], and the `results/` artifact store.
//!
//! # Endpoints
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | GET  | `/api/healthz` | liveness probe |
//! | GET  | `/api/scenarios` | registry listing (name/backend/title) |
//! | GET  | `/api/scenarios/<name>` | one preset as scenario JSON |
//! | POST | `/api/runs` | validate + enqueue a run |
//! | GET  | `/api/runs` | every run's status |
//! | GET  | `/api/runs/<id>` | one run's status + loss accounting |
//! | DELETE | `/api/runs/<id>` | cancel a still-queued run (409 otherwise) |
//! | GET  | `/api/runs/<id>/events` | live SSE stream of the run |
//! | GET  | `/api/runs/<id>/artifacts/<artifact>` | one artifact's bytes |
//! | POST | `/api/sweeps` | expand a sweep grid + enqueue every point |
//! | GET  | `/api/sweeps` | every sweep's status |
//! | GET  | `/api/sweeps/<id>` | one sweep's per-point status |
//! | GET  | `/api/sweeps/<id>/events` | live SSE stream of per-point progress |
//! | GET  | `/api/artifacts` | `results/*.json` listing |
//! | GET  | `/api/artifacts/<name>` | one `results/<name>.json`, verbatim |
//! | POST | `/api/shutdown` | drain and stop the server |
//!
//! `POST /api/runs` takes `{"scenario": <preset-name or full spec>,
//! "hold_ms": N, "save": bool}`; `hold_ms` (capped) delays execution so
//! stream clients can attach before a fast run finishes. The SSE
//! endpoint takes `?cap=N` (subscriber queue capacity — small caps make
//! a slow client lose events *visibly*, never stall the run) and
//! `?drain_ms=N` (consumer pacing, for testing slow clients).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Value};
use xui_scenario::{registry, CancelError, Scenario, SubmitError};

use crate::http::{self, json_string, Request, Response};
use crate::pool::ThreadPool;
use crate::runs::{RunManager, RunShared};
use crate::sse;
use crate::sweeps::{self, SweepManager, SweepShared};

/// How the server is shaped. The defaults suit an interactive session;
/// the load benchmark and CI override the knobs they care about.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection-handler threads (each live SSE stream holds one).
    pub handler_workers: usize,
    /// Accepted-but-unhandled connections beyond the busy workers.
    pub handler_backlog: usize,
    /// Scenario-executing worker threads.
    pub run_workers: usize,
    /// Maximum queued (not yet running) run submissions.
    pub run_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            handler_workers: 16,
            handler_backlog: 64,
            run_workers: 2,
            run_depth: 16,
        }
    }
}

/// State shared by the accept loop and every handler.
struct Ctx {
    manager: Arc<RunManager>,
    sweeps: SweepManager,
    pool: ThreadPool,
    shutting_down: Arc<AtomicBool>,
    local_addr: SocketAddr,
}

/// A running server. Create with [`Server::start`]; stop with
/// [`Server::shutdown`] (or `POST /api/shutdown` followed by
/// [`Server::join`]).
pub struct Server {
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.ctx.local_addr).finish()
    }
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            manager: Arc::new(RunManager::new(config.run_workers, config.run_depth)),
            sweeps: SweepManager::default(),
            pool: ThreadPool::new(config.handler_workers, config.handler_backlog),
            shutting_down: Arc::new(AtomicBool::new(false)),
            local_addr,
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::Builder::new()
            .name("xui-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_ctx))
            .expect("spawn accept loop");
        Ok(Self { ctx, accept: Some(accept) })
    }

    /// The bound address (with the actual port when 0 was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local_addr
    }

    /// Whether a shutdown has been requested (by [`Server::shutdown`]
    /// or `POST /api/shutdown`).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutting_down.load(Ordering::Relaxed)
    }

    /// Blocks until the server has been asked to stop, then tears it
    /// down: the accept loop exits, queued runs are cancelled, running
    /// scenarios finish, live streams end with their `end` frame, and
    /// every thread is joined.
    pub fn join(mut self) {
        self.teardown();
    }

    /// Requests a stop and performs the same teardown as
    /// [`Server::join`].
    pub fn shutdown(mut self) {
        request_shutdown(&self.ctx);
        self.teardown();
    }

    fn teardown(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Cancel queued runs and let running ones finish first: that
        // closes their hubs, which is what ends the SSE handlers still
        // occupying pool workers. Sweep monitors wait on those runs, so
        // they join right after, before the handler pool drains.
        self.ctx.manager.shutdown();
        self.ctx.sweeps.shutdown();
        self.ctx.pool.shutdown();
    }
}

/// Flags the shutdown and pokes the listener so the blocking `accept`
/// returns.
fn request_shutdown(ctx: &Ctx) {
    ctx.shutting_down.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(ctx.local_addr);
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    for stream in listener.incoming() {
        if ctx.shutting_down.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // The accept thread is the pool's only submitter, so this check
        // cannot race another enqueue: shed load here with a `503`
        // instead of queueing unboundedly.
        if !ctx.pool.has_capacity() {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = Response::error(503, "server overloaded, try again").write_to(&mut stream);
            continue;
        }
        let job_ctx = Arc::clone(ctx);
        let _ = ctx.pool.execute(move || handle_connection(&job_ctx, stream));
    }
}

fn handle_connection(ctx: &Ctx, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let req = match http::parse_request(&mut reader) {
        Ok(req) => req,
        Err(http::ParseError::Eof) => return, // health-probe TCP connect
        Err(e) => {
            let _ = Response::error(400, &e.to_string()).write_to(&mut writer);
            return;
        }
    };
    let segments: Vec<String> = req.segments().iter().map(|s| (*s).to_string()).collect();
    let segs: Vec<&str> = segments.iter().map(String::as_str).collect();

    // The SSE endpoints write their own streaming responses.
    if req.method == "GET" && matches!(segs.as_slice(), ["api", "runs", _, "events"]) {
        stream_run_events(ctx, &req, segs[2], &mut writer);
        return;
    }
    if req.method == "GET" && matches!(segs.as_slice(), ["api", "sweeps", _, "events"]) {
        stream_sweep_events(ctx, &req, segs[2], &mut writer);
        return;
    }

    let response = route(ctx, &req, &segs);
    let _ = response.write_to(&mut writer);
}

fn route(ctx: &Ctx, req: &Request, segs: &[&str]) -> Response {
    match (req.method.as_str(), segs) {
        ("GET", ["api", "healthz"]) => Response::ok_json("{\"ok\":true}"),
        ("GET", ["api", "scenarios"]) => list_scenarios(),
        ("GET", ["api", "scenarios", name]) => show_scenario(name),
        ("POST", ["api", "runs"]) => submit_run(ctx, req),
        ("GET", ["api", "runs"]) => {
            Response::ok_json(serde_json::to_string(&ctx.manager.list_value()).unwrap_or_default())
        }
        ("GET", ["api", "runs", id]) => run_status(ctx, id),
        ("DELETE", ["api", "runs", id]) => delete_run(ctx, id),
        ("GET", ["api", "runs", id, "artifacts", artifact]) => run_artifact(ctx, id, artifact),
        ("POST", ["api", "sweeps"]) => submit_sweep(ctx, req),
        ("GET", ["api", "sweeps"]) => {
            Response::ok_json(serde_json::to_string(&ctx.sweeps.list_value()).unwrap_or_default())
        }
        ("GET", ["api", "sweeps", id]) => sweep_status(ctx, id),
        ("GET", ["api", "artifacts"]) => list_artifacts(),
        ("GET", ["api", "artifacts", name]) => show_artifact(name),
        ("POST", ["api", "shutdown"]) => {
            request_shutdown(ctx);
            Response::ok_json("{\"ok\":true,\"shutting_down\":true}")
        }
        ("GET" | "POST", _) => Response::not_found(&req.path),
        _ => Response::error(405, &format!("method {} not allowed", req.method)),
    }
}

fn list_scenarios() -> Response {
    let rows: Vec<Value> = registry::all()
        .iter()
        .map(|sc| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(sc.name.clone())),
                ("backend".to_string(), Value::Str(sc.backend.name().to_string())),
                ("title".to_string(), Value::Str(sc.title.clone())),
            ])
        })
        .collect();
    Response::ok_json(serde_json::to_string(&Value::Array(rows)).unwrap_or_default())
}

fn show_scenario(name: &str) -> Response {
    match registry::find(name) {
        Some(sc) => Response::ok_json(sc.to_json()),
        None => Response::not_found(&format!("scenario `{name}`")),
    }
}

/// Parses the `POST /api/runs` body: a preset name or an inline spec,
/// plus the hold and save knobs.
fn parse_submission(body: &str) -> Result<(Scenario, u64, bool), String> {
    let v = serde_json::value_from_str(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Value::Object(entries) = &v else {
        return Err("the body must be a JSON object".to_string());
    };
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let scenario = match field("scenario") {
        Some(Value::Str(name)) => registry::find(name)
            .ok_or_else(|| format!("unknown scenario `{name}` (see GET /api/scenarios)"))?,
        Some(spec @ Value::Object(_)) => Scenario::from_value(spec)
            .map_err(|e| format!("invalid scenario spec: {e}"))?,
        Some(other) => {
            return Err(format!(
                "`scenario` must be a preset name or a spec object, got {other:?}"
            ))
        }
        None => return Err("the body needs a `scenario` field".to_string()),
    };
    let hold_ms = match field("hold_ms") {
        Some(Value::UInt(n)) => u64::try_from(*n).unwrap_or(u64::MAX),
        Some(Value::Int(n)) if *n >= 0 => u64::try_from(*n).unwrap_or(u64::MAX),
        None | Some(Value::Null) => 0,
        Some(other) => return Err(format!("`hold_ms` must be an unsigned integer, got {other:?}")),
    };
    let save = match field("save") {
        Some(Value::Bool(b)) => *b,
        None | Some(Value::Null) => false,
        Some(other) => return Err(format!("`save` must be a boolean, got {other:?}")),
    };
    Ok((scenario, hold_ms, save))
}

fn submit_run(ctx: &Ctx, req: &Request) -> Response {
    let (scenario, hold_ms, save) = match parse_submission(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::error(400, &msg),
    };
    match ctx.manager.submit(scenario, hold_ms, save) {
        Ok(id) => Response::json(
            202,
            format!(
                "{{\"id\":{id},\"state\":\"queued\",\"status\":\"/api/runs/{id}\",\"events\":\"/api/runs/{id}/events\"}}"
            ),
        ),
        Err(e @ SubmitError::Invalid(_)) => Response::error(400, &e.to_string()),
        Err(e @ (SubmitError::Full { .. } | SubmitError::ShuttingDown)) => {
            Response::error(503, &e.to_string())
        }
    }
}

fn submit_sweep(ctx: &Ctx, req: &Request) -> Response {
    let (spec, save) = match sweeps::parse_sweep_submission(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::error(400, &msg),
    };
    if ctx.shutting_down.load(Ordering::Relaxed) {
        return Response::error(503, "server is shutting down");
    }
    match ctx.sweeps.submit(&ctx.manager, &ctx.shutting_down, &spec, save) {
        Ok((id, total)) => Response::json(202, sweeps::accepted_json(id, &spec.name, total)),
        Err(msg) => Response::error(400, &msg),
    }
}

fn sweep_status(ctx: &Ctx, raw_id: &str) -> Response {
    let Some(id) = parse_run_id(raw_id) else {
        return Response::error(400, &format!("sweep id `{raw_id}` is not a number"));
    };
    match ctx.sweeps.shared(id) {
        Some(s) => {
            Response::ok_json(serde_json::to_string(&s.status_value()).unwrap_or_default())
        }
        None => Response::not_found(&format!("sweep {id}")),
    }
}

fn parse_run_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn run_status(ctx: &Ctx, raw_id: &str) -> Response {
    let Some(id) = parse_run_id(raw_id) else {
        return Response::error(400, &format!("run id `{raw_id}` is not a number"));
    };
    match ctx.manager.status_value(id) {
        Some(v) => Response::ok_json(serde_json::to_string(&v).unwrap_or_default()),
        None => Response::not_found(&format!("run {id}")),
    }
}

/// `DELETE /api/runs/<id>`: cancels a still-queued run. 200 with the
/// final (`failed`/cancelled) status on success; 404 for unknown ids;
/// 409 once the run is running or terminal — deletion never rewrites
/// history, only un-queues work no worker has claimed yet.
fn delete_run(ctx: &Ctx, raw_id: &str) -> Response {
    let Some(id) = parse_run_id(raw_id) else {
        return Response::error(400, &format!("run id `{raw_id}` is not a number"));
    };
    match ctx.manager.delete(id) {
        Ok(status) => Response::ok_json(serde_json::to_string(&status).unwrap_or_default()),
        Err(CancelError::NotFound) => Response::not_found(&format!("run {id}")),
        Err(e @ CancelError::NotCancellable { .. }) => Response::error(409, &e.to_string()),
    }
}

fn run_artifact(ctx: &Ctx, raw_id: &str, artifact: &str) -> Response {
    let Some(id) = parse_run_id(raw_id) else {
        return Response::error(400, &format!("run id `{raw_id}` is not a number"));
    };
    if ctx.manager.status(id).is_none() {
        return Response::not_found(&format!("run {id}"));
    }
    match ctx.manager.artifact(id, artifact) {
        Some(body) => Response::ok_json(body),
        None => Response::not_found(&format!("artifact `{artifact}` of run {id}")),
    }
}

/// True for the artifact names the browser serves: the `results/<id>`
/// stems, no separators, no traversal.
fn safe_artifact_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        && !name.contains("..")
}

fn results_dir() -> PathBuf {
    Path::new("results").to_path_buf()
}

fn list_artifacts() -> Response {
    let mut names: Vec<String> = std::fs::read_dir(results_dir())
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| e.file_name().into_string().ok())
                .filter_map(|n| n.strip_suffix(".json").map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    let body = serde_json::to_string(&Value::Array(
        names.into_iter().map(Value::Str).collect(),
    ))
    .unwrap_or_default();
    Response::ok_json(body)
}

fn show_artifact(name: &str) -> Response {
    if !safe_artifact_name(name) {
        return Response::error(400, &format!("invalid artifact name `{name}`"));
    }
    let stem = name.strip_suffix(".json").unwrap_or(name);
    match std::fs::read_to_string(results_dir().join(format!("{stem}.json"))) {
        Ok(body) => Response::ok_json(body),
        Err(_) => Response::not_found(&format!("artifact `{name}`")),
    }
}

/// Default SSE subscriber queue capacity.
const DEFAULT_STREAM_CAP: usize = 1024;
/// Poll interval of the stream loop when the client asked for no pacing.
const STREAM_TICK: Duration = Duration::from_millis(10);
/// Upper bound on client-requested pacing, so a stream cannot park a
/// handler thread indefinitely between drains.
const MAX_DRAIN_MS: u64 = 1_000;

/// Streams one run's broadcast channel as SSE until the run ends, the
/// client disconnects, or the server shuts down.
fn stream_run_events(ctx: &Ctx, req: &Request, raw_id: &str, writer: &mut TcpStream) {
    let Some(id) = parse_run_id(raw_id) else {
        let _ = Response::error(400, &format!("run id `{raw_id}` is not a number")).write_to(writer);
        return;
    };
    let Some(shared) = ctx.manager.run_shared(id) else {
        let _ = Response::not_found(&format!("run {id}")).write_to(writer);
        return;
    };
    let cap = req
        .query_u64("cap")
        .map_or(DEFAULT_STREAM_CAP, |c| usize::try_from(c.max(1)).unwrap_or(1));
    let pacing = Duration::from_millis(req.query_u64("drain_ms").unwrap_or(0).min(MAX_DRAIN_MS));

    // Subscribe *before* the terminal check: if the run is already over
    // we replay the ring instead (complete history); if it finishes
    // right after the check, the subscription sees the close.
    let sub = shared.subscribe(cap);
    if ctx.manager.is_terminal(id) {
        drop(sub);
        replay_terminal_run(ctx, id, &shared, writer);
        return;
    }

    if writer.write_all(sse::STREAM_HEAD.as_bytes()).is_err() {
        return;
    }
    loop {
        let closed = sub.is_closed() || ctx.shutting_down.load(Ordering::Relaxed);
        for item in sub.drain() {
            if writer.write_all(sse::encode_item(&item).as_bytes()).is_err() {
                return; // client went away; subscription prunes itself
            }
        }
        if closed {
            break;
        }
        std::thread::sleep(if pacing.is_zero() { STREAM_TICK } else { pacing });
    }
    let _ = writer
        .write_all(sse::encode_end(sub.delivered_events(), sub.dropped_events()).as_bytes());
    let _ = writer.flush();
}

/// Streams one sweep's broadcast channel as SSE until every point is
/// terminal, the client disconnects, or the server shuts down. A
/// subscriber that attaches after the sweep ended gets a replay of the
/// final per-point states instead.
fn stream_sweep_events(ctx: &Ctx, req: &Request, raw_id: &str, writer: &mut TcpStream) {
    let Some(id) = parse_run_id(raw_id) else {
        let _ =
            Response::error(400, &format!("sweep id `{raw_id}` is not a number")).write_to(writer);
        return;
    };
    let Some(shared) = ctx.sweeps.shared(id) else {
        let _ = Response::not_found(&format!("sweep {id}")).write_to(writer);
        return;
    };
    let cap = req
        .query_u64("cap")
        .map_or(DEFAULT_STREAM_CAP, |c| usize::try_from(c.max(1)).unwrap_or(1));
    let pacing = Duration::from_millis(req.query_u64("drain_ms").unwrap_or(0).min(MAX_DRAIN_MS));

    // Subscribe before the terminal check, like the run stream: a sweep
    // finishing right after the check closes the subscription.
    let sub = shared.subscribe(cap);
    if shared.is_terminal() {
        drop(sub);
        replay_terminal_sweep(&shared, writer);
        return;
    }

    if writer.write_all(sse::STREAM_HEAD.as_bytes()).is_err() {
        return;
    }
    loop {
        let closed = sub.is_closed() || ctx.shutting_down.load(Ordering::Relaxed);
        for item in sub.drain() {
            if writer.write_all(sse::encode_item(&item).as_bytes()).is_err() {
                return;
            }
        }
        if closed {
            break;
        }
        std::thread::sleep(if pacing.is_zero() { STREAM_TICK } else { pacing });
    }
    let _ = writer
        .write_all(sse::encode_end(sub.delivered_events(), sub.dropped_events()).as_bytes());
    let _ = writer.flush();
}

/// Replays a finished sweep for a late subscriber: every point's final
/// state, then the summary, then `end`.
fn replay_terminal_sweep(shared: &Arc<SweepShared>, writer: &mut TcpStream) {
    if writer.write_all(sse::STREAM_HEAD.as_bytes()).is_err() {
        return;
    }
    let status = shared.status_value();
    let mut delivered = 0u64;
    if let Value::Object(entries) = &status {
        if let Some(Value::Array(points)) =
            entries.iter().find(|(k, _)| k == "points").map(|(_, v)| v)
        {
            for p in points {
                let frame =
                    sse::encode_frame("point", &serde_json::to_string(p).unwrap_or_default());
                if writer.write_all(frame.as_bytes()).is_err() {
                    return;
                }
                delivered += 1;
            }
        }
    }
    let frame = sse::encode_frame("sweep", &serde_json::to_string(&status).unwrap_or_default());
    if writer.write_all(frame.as_bytes()).is_err() {
        return;
    }
    delivered += 1;
    let _ = writer.write_all(sse::encode_end(delivered, 0).as_bytes());
    let _ = writer.flush();
}

/// The catch-up path for a subscriber that attached after the run
/// ended: replay the retained ring window, then the final state and
/// metrics, then `end` (whose drop count is the *ring's* overflow — the
/// only loss a late reader can have).
fn replay_terminal_run(ctx: &Ctx, id: u64, shared: &Arc<RunShared>, writer: &mut TcpStream) {
    if writer.write_all(sse::STREAM_HEAD.as_bytes()).is_err() {
        return;
    }
    let events = shared.ring_events();
    let mut delivered = 0u64;
    for ev in &events {
        if writer
            .write_all(sse::encode_item(&xui_telemetry::StreamItem::Event(*ev)).as_bytes())
            .is_err()
        {
            return;
        }
        delivered += 1;
    }
    if let Some(status) = ctx.manager.status(id) {
        let frame = sse::encode_frame(
            "state",
            &format!("{{\"id\":{id},\"state\":{}}}", json_string(&status.state)),
        );
        if writer.write_all(frame.as_bytes()).is_err() {
            return;
        }
        delivered += 1;
    }
    let metrics = sse::encode_frame("metrics", &shared.metrics_json());
    if writer.write_all(metrics.as_bytes()).is_err() {
        return;
    }
    delivered += 1;
    let _ = writer
        .write_all(sse::encode_end(delivered, shared.ring_dropped_events()).as_bytes());
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_parsing_accepts_names_specs_and_knobs() {
        let (sc, hold, save) =
            parse_submission("{\"scenario\":\"fig2_timeline\",\"hold_ms\":50,\"save\":true}")
                .expect("parses");
        assert_eq!(sc.name, "fig2_timeline");
        assert_eq!(hold, 50);
        assert!(save);

        let spec = registry::find("fig2_timeline").unwrap().to_json();
        let (sc, hold, save) =
            parse_submission(&format!("{{\"scenario\":{spec}}}")).expect("inline spec parses");
        assert_eq!(sc.name, "fig2_timeline");
        assert_eq!((hold, save), (0, false));
    }

    #[test]
    fn submission_parsing_rejects_garbage() {
        assert!(parse_submission("not json").is_err());
        assert!(parse_submission("[]").is_err());
        assert!(parse_submission("{}").is_err());
        assert!(parse_submission("{\"scenario\":\"no_such_preset\"}").is_err());
        assert!(parse_submission("{\"scenario\":\"fig2_timeline\",\"hold_ms\":\"x\"}").is_err());
        assert!(parse_submission("{\"scenario\":\"fig2_timeline\",\"save\":3}").is_err());
    }

    #[test]
    fn artifact_names_are_sanitized() {
        assert!(safe_artifact_name("fig2_timeline"));
        assert!(safe_artifact_name("BENCH_sweep.json"));
        assert!(!safe_artifact_name("../etc/passwd"));
        assert!(!safe_artifact_name("a/b"));
        assert!(!safe_artifact_name(""));
    }
}
