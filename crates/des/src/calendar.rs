//! The tiered event queue behind [`Engine`](crate::engine::Engine): a
//! calendar wheel with an overflow ladder for bulk pending events, a
//! plain binary heap below the activation threshold, and a sticky heap
//! fallback for pathological time distributions.
//!
//! # Why a total order makes the tiers invisible
//!
//! Every stored key is ordered by `(time, seq)` and `seq` is unique per
//! scheduled event, so the pop order is a *total* order — no two keys
//! ever compare equal. Whatever internal structure holds the keys, the
//! sequence of [`pop`](TieredQueue::pop) results is therefore identical
//! to the old single-`BinaryHeap` engine, byte for byte. The tiers only
//! change *how much work* ordering costs, never *what order* comes out.
//!
//! # Structure
//!
//! - **Heap tier** (`Mode::Heap`): the original `BinaryHeap<Reverse<_>>`.
//!   Queues stay here until they hold more than `activation` keys
//!   (default [`DEFAULT_ACTIVATION`]), so every small simulation runs on
//!   exactly the code path it always did.
//! - **Calendar tier** (`Mode::Calendar`): a wheel of unsorted buckets
//!   whose width is derived from the observed span of pending event
//!   times (span / bucket-count, i.e. the mean inter-event gap times the
//!   target occupancy). Enqueue is O(1): index the bucket, push. Dequeue
//!   sorts one bucket at a time on activation — O(1) amortized per event
//!   for the workloads the engine targets (timer churn with exponential
//!   gaps). Events beyond the wheel's end land in an unsorted *overflow
//!   ladder*; when the wheel drains, a new wheel is rebuilt from the
//!   overflow with freshly observed span/width. Far-future timers
//!   therefore sit untouched in the overflow until their epoch arrives —
//!   they are never scanned per pop.
//! - **Degraded heap** (`Mode::Heap` with `degraded` set): keys that
//!   land *before* the active bucket must be spliced into the sorted
//!   run the wheel is currently draining. A distribution that keeps
//!   doing this (e.g. adversarially front-loaded schedules) would turn
//!   the calendar into an O(n) insertion sort, so the queue counts
//!   spliced element moves *per active run* (the counter resets on each
//!   bucket activation) and permanently falls back to the heap when one
//!   run absorbs more than [`DEFAULT_DEGRADE_MOVES`]. Degrading moves
//!   every key once and changes nothing about pop order.
//!
//! Tombstones (keys whose slab generation no longer matches — cancelled
//! events) flow through the tiers like live keys and are discarded by the
//! engine when they surface, exactly as with the old heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::SimTime;

/// Queue ordering key: `Copy`, 24 bytes, ordered by (time, seq). `seq`
/// is unique per scheduled event, so slot/gen never influence ordering;
/// they only locate the slab entry when the key surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct QueueKey {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// Which queue implementation an [`Engine`](crate::engine::Engine)
/// orders its pending events with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// A single binary heap, unconditionally — the pre-calendar engine.
    /// O(log n) per operation at every size; useful as the baseline in
    /// capacity benchmarks.
    Heap,
    /// Tiered (the default): heap below the activation threshold,
    /// calendar wheel + overflow ladder above it, sticky heap fallback
    /// when the time distribution defeats the calendar.
    #[default]
    Tiered,
}

/// Keys stored (live + tombstones) before a `Tiered` queue leaves the
/// heap tier. Small simulations never pay calendar bookkeeping.
pub const DEFAULT_ACTIVATION: usize = 4096;

/// Cumulative spliced element moves (inserts landing before the active
/// bucket's sorted run) tolerated per active run before the queue
/// permanently degrades to the heap.
const DEFAULT_DEGRADE_MOVES: u64 = 1 << 22;

/// Population growth tolerated before the wheel is rebuilt with fresh
/// geometry. A wheel sized from K keys and then filled with `4K` more
/// has buckets (and therefore sort-on-activation runs) 4× the target;
/// beyond that the run length makes splices quadratic, so we pay one
/// O(n) redistribution — amortized O(1) per push across doublings.
const GROW_REBUILD_FACTOR: usize = 4;

/// Target mean bucket occupancy when (re)building a wheel.
const TARGET_PER_BUCKET: usize = 4;

/// Wheel size bounds: enough buckets to spread load, few enough that
/// scanning empty buckets stays cheap relative to the events they held.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;

enum Mode {
    Heap(BinaryHeap<Reverse<QueueKey>>),
    Calendar(Calendar),
}

/// One wheel epoch: a sorted run being drained (`current[cur..]`), the
/// unsorted buckets ahead of it, and the overflow ladder beyond the
/// wheel's end.
struct Calendar {
    /// The activated bucket, sorted ascending by (time, seq); consumed
    /// from index `cur` (the prefix is dead, reclaimed on exhaustion).
    current: Vec<QueueKey>,
    cur: usize,
    /// Unsorted future buckets; `cursor` is the next one to activate.
    buckets: Vec<Vec<QueueKey>>,
    cursor: usize,
    /// Wheel geometry: bucket `i` covers
    /// `[wheel_start + i*width, wheel_start + (i+1)*width)`.
    wheel_start: SimTime,
    width: SimTime,
    /// Keys at or beyond the wheel's end, unsorted; the source of the
    /// next wheel epoch.
    overflow: Vec<QueueKey>,
    /// Elements shifted by splices into the *current* run (the
    /// pathology signal). Reset on every bucket activation: a healthy
    /// workload splices a bounded amount per run, while a pathological
    /// one (every push landing inside a long-lived run) accumulates
    /// past [`DEFAULT_DEGRADE_MOVES`] before the run drains. A
    /// cumulative counter would instead trip on any sufficiently long
    /// healthy run — e.g. the hold-model capacity benchmark splices on
    /// ~1% of pushes and would cross any fixed total eventually.
    splice_moves: u64,
    /// Keys present when this wheel's geometry was chosen. Once the
    /// population exceeds [`GROW_REBUILD_FACTOR`] times this, the
    /// buckets are too coarse and the wheel is rebuilt.
    built_keys: usize,
}

impl Calendar {
    /// First time *not* covered by `current`: keys below this must be
    /// spliced into the sorted run; keys at/above it index a bucket or
    /// the overflow. u128 because `wheel_start + cursor * width` can
    /// exceed `u64::MAX` (schedules saturate at `u64::MAX`).
    fn current_horizon(&self) -> u128 {
        u128::from(self.wheel_start) + u128::from(self.width) * self.cursor as u128
    }

    /// First time beyond the wheel (start of the overflow ladder).
    fn wheel_end(&self) -> u128 {
        u128::from(self.wheel_start) + u128::from(self.width) * self.buckets.len() as u128
    }
}

/// The tiered queue. See the module docs for the design; the engine
/// only ever calls `push` / `pop` / `peek`, so the tier in use is an
/// implementation detail with observable cost but identical output.
pub(crate) struct TieredQueue {
    kind: QueueKind,
    mode: Mode,
    /// Stored keys, live and tombstone alike (activation threshold input).
    len: usize,
    activation: usize,
    degrade_moves: u64,
    /// Sticky: a pathological distribution sent us back to the heap.
    degraded: bool,
    /// Cumulative maintenance work in key touches: pushes, per-key sort
    /// and rebuild moves, bucket-activation scans. Exposed through
    /// `Engine::queue_work` so tests can assert e.g. that a far-future
    /// overflow event is not re-scanned per pop.
    work: u64,
}

impl TieredQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        Self {
            kind,
            mode: Mode::Heap(BinaryHeap::new()),
            len: 0,
            activation: DEFAULT_ACTIVATION,
            degrade_moves: DEFAULT_DEGRADE_MOVES,
            degraded: false,
            work: 0,
        }
    }

    /// Keys held, including tombstones (used by tests; the engine
    /// tracks live events itself).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn work(&self) -> u64 {
        self.work
    }

    pub(crate) fn kind(&self) -> QueueKind {
        self.kind
    }

    /// The tier currently ordering keys: `"heap"` or `"calendar"`.
    pub(crate) fn tier(&self) -> &'static str {
        match self.mode {
            Mode::Heap(_) => "heap",
            Mode::Calendar(_) => "calendar",
        }
    }

    /// Overrides the heap→calendar activation threshold (tests and
    /// benchmarks; 0 activates the calendar on the first push).
    pub(crate) fn set_activation(&mut self, keys: usize) {
        self.activation = keys;
    }

    pub(crate) fn push(&mut self, key: QueueKey) {
        self.len += 1;
        self.work += 1;
        let mut pathological = false;
        match &mut self.mode {
            Mode::Heap(heap) => heap.push(Reverse(key)),
            Mode::Calendar(cal) => {
                let t = u128::from(key.time);
                if t < cal.current_horizon() {
                    // Landed inside the run being drained: splice it in
                    // after the consumed prefix, keeping (time, seq) order.
                    let pos = cal.cur
                        + cal.current[cal.cur..]
                            .partition_point(|k| (k.time, k.seq) < (key.time, key.seq));
                    let moved = (cal.current.len() - pos) as u64;
                    cal.current.insert(pos, key);
                    cal.splice_moves += moved;
                    self.work += moved;
                    pathological = cal.splice_moves > self.degrade_moves;
                } else if t < cal.wheel_end() {
                    let idx = (((key.time - cal.wheel_start) / cal.width) as usize)
                        .min(cal.buckets.len() - 1);
                    cal.buckets[idx].push(key);
                } else {
                    cal.overflow.push(key);
                }
            }
        }
        if pathological {
            self.degrade_to_heap();
        } else if !self.degraded && self.kind == QueueKind::Tiered {
            let (len, activation) = (self.len, self.activation);
            match &mut self.mode {
                Mode::Heap(heap) if len > activation => {
                    let keys: Vec<QueueKey> =
                        std::mem::take(heap).into_iter().map(|Reverse(k)| k).collect();
                    self.rebuild_calendar(keys);
                }
                // The population outgrew the wheel's geometry: buckets
                // sized for `built_keys` now hold `GROW_REBUILD_FACTOR`×
                // the target run length, so redistribute over a fresh
                // span/width before sort-on-activation turns quadratic.
                Mode::Calendar(cal)
                    if len > cal.built_keys.saturating_mul(GROW_REBUILD_FACTOR) =>
                {
                    let keys = collect_keys(cal, len);
                    self.rebuild_calendar(keys);
                }
                _ => {}
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueueKey> {
        if matches!(self.mode, Mode::Calendar(_)) {
            self.advance();
        }
        let key = match &mut self.mode {
            Mode::Heap(heap) => heap.pop().map(|Reverse(k)| k),
            Mode::Calendar(cal) => {
                cal.current.get(cal.cur).copied().inspect(|_| cal.cur += 1)
            }
        };
        if key.is_some() {
            self.len -= 1;
        }
        key
    }

    pub(crate) fn peek(&mut self) -> Option<QueueKey> {
        if matches!(self.mode, Mode::Calendar(_)) {
            self.advance();
        }
        match &mut self.mode {
            Mode::Heap(heap) => heap.peek().map(|&Reverse(k)| k),
            Mode::Calendar(cal) => cal.current.get(cal.cur).copied(),
        }
    }

    /// Ensures `current[cur]` is the minimum stored key (calendar mode):
    /// activates the next non-empty bucket, rebuilding the wheel from
    /// the overflow ladder when the wheel drains.
    fn advance(&mut self) {
        loop {
            let Mode::Calendar(cal) = &mut self.mode else { return };
            if cal.cur < cal.current.len() {
                return;
            }
            cal.current.clear();
            cal.cur = 0;
            while cal.cursor < cal.buckets.len() {
                self.work += 1; // bucket-activation scan
                let bucket = &mut cal.buckets[cal.cursor];
                cal.cursor += 1;
                if bucket.is_empty() {
                    continue;
                }
                let mut run = std::mem::take(bucket);
                run.sort_unstable_by_key(|k| (k.time, k.seq));
                self.work += run.len() as u64;
                cal.current = run;
                cal.splice_moves = 0; // fresh run, fresh pathology budget
                return;
            }
            if cal.overflow.is_empty() {
                return; // queue empty; wheel stays exhausted until a rebuild
            }
            let keys = std::mem::take(&mut cal.overflow);
            self.rebuild_calendar(keys);
            // Loop to activate the first bucket of the new wheel.
        }
    }

    /// Builds a fresh wheel over `keys`, sizing buckets from the
    /// observed span: width ≈ span / bucket-count, i.e. the mean
    /// inter-event gap times [`TARGET_PER_BUCKET`].
    fn rebuild_calendar(&mut self, keys: Vec<QueueKey>) {
        debug_assert!(!keys.is_empty(), "rebuild over an empty key set");
        let min = keys.iter().map(|k| k.time).min().unwrap_or(0);
        let max = keys.iter().map(|k| k.time).max().unwrap_or(0);
        let nbuckets = (keys.len() / TARGET_PER_BUCKET)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let span = (max - min).saturating_add(1);
        let width = span.div_ceil(nbuckets as u64).max(1);
        let mut buckets = vec![Vec::new(); nbuckets];
        self.work += keys.len() as u64;
        let built_keys = keys.len();
        for key in keys {
            let idx = (((key.time - min) / width) as usize).min(nbuckets - 1);
            buckets[idx].push(key);
        }
        self.mode = Mode::Calendar(Calendar {
            current: Vec::new(),
            cur: 0,
            buckets,
            cursor: 0,
            wheel_start: min,
            width,
            overflow: Vec::new(),
            splice_moves: 0,
            built_keys,
        });
    }

    /// Permanent fallback: moves every stored key into a binary heap.
    /// The (time, seq) total order means pop order is unaffected.
    fn degrade_to_heap(&mut self) {
        let Mode::Calendar(cal) = &mut self.mode else { return };
        let keys: Vec<Reverse<QueueKey>> =
            collect_keys(cal, self.len).into_iter().map(Reverse).collect();
        self.work += keys.len() as u64;
        self.degraded = true;
        self.mode = Mode::Heap(BinaryHeap::from(keys));
    }
}

/// Drains every stored key out of a wheel (the live tail of `current`,
/// the unsorted buckets, the overflow ladder) for a rebuild or a
/// degrade. Order is irrelevant: both consumers re-establish it.
fn collect_keys(cal: &mut Calendar, len: usize) -> Vec<QueueKey> {
    let mut keys: Vec<QueueKey> = Vec::with_capacity(len);
    keys.extend(cal.current[cal.cur..].iter().copied());
    for bucket in &mut cal.buckets {
        keys.append(bucket);
    }
    keys.append(&mut cal.overflow);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time: u64, seq: u64) -> QueueKey {
        QueueKey { time, seq, slot: seq as u32, gen: 0 }
    }

    /// Pops everything and checks it comes out sorted by (time, seq).
    fn drain_sorted(q: &mut TieredQueue) -> Vec<QueueKey> {
        let mut out = Vec::new();
        while let Some(k) = q.pop() {
            if let Some(prev) = out.last() {
                let (p, c): (&QueueKey, &QueueKey) = (prev, &k);
                assert!((p.time, p.seq) < (c.time, c.seq), "out of order: {p:?} then {c:?}");
            }
            out.push(k);
        }
        assert_eq!(q.len(), 0);
        assert!(q.peek().is_none());
        out
    }

    #[test]
    fn heap_kind_never_activates_calendar() {
        let mut q = TieredQueue::new(QueueKind::Heap);
        q.set_activation(0);
        for i in 0..100 {
            q.push(key(i * 7 % 50, i));
        }
        assert_eq!(q.tier(), "heap");
        assert_eq!(drain_sorted(&mut q).len(), 100);
    }

    #[test]
    fn tiered_upgrades_past_activation_and_orders_identically() {
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(32);
        let mut reference = BinaryHeap::new();
        // A multiplicative-hash scramble of times, plus same-time ties.
        for i in 0..1000u64 {
            let t = (i.wrapping_mul(2654435761) >> 8) % 10_000;
            q.push(key(t, i));
            reference.push(Reverse(key(t, i)));
        }
        assert_eq!(q.tier(), "calendar");
        let got = drain_sorted(&mut q);
        let mut want = Vec::new();
        while let Some(Reverse(k)) = reference.pop() {
            want.push(k);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_push_pop_crosses_wheel_epochs() {
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(0);
        let mut seq = 0u64;
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        // Hold model: every pop reschedules ahead, forcing overflow
        // rebuilds as the wheel drains.
        for i in 0..64u64 {
            q.push(key(i * 100, seq));
            seq += 1;
        }
        for _ in 0..10_000 {
            let k = q.pop().expect("queue holds 64 keys");
            assert!((k.time, k.seq) > last || popped == 0, "order violated");
            last = (k.time, k.seq);
            popped += 1;
            let ahead = 1 + (k.seq * 2654435761) % 6400;
            q.push(key(k.time + ahead, seq));
            seq += 1;
        }
        assert_eq!(q.len(), 64);
    }

    #[test]
    fn far_future_overflow_key_is_not_rescanned_per_pop() {
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(0);
        let mut seq = 0u64;
        for i in 0..1024u64 {
            q.push(key(i, seq));
            seq += 1;
        }
        // One far-future timer, then drain the near keys.
        q.push(key(u64::MAX - 1, seq));
        let before = q.work();
        for _ in 0..1024 {
            q.pop();
        }
        let spent = q.work() - before;
        // Near keys cost O(1) amortized each; the overflow key must not
        // add a per-pop scan. Generous constant, but far below 1024 * n.
        assert!(spent < 1024 * 8, "drain cost {spent} key-touches");
        assert_eq!(q.pop().map(|k| k.time), Some(u64::MAX - 1));
    }

    #[test]
    fn saturated_far_future_times_do_not_overflow_geometry() {
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(0);
        q.push(key(u64::MAX, 0));
        q.push(key(0, 1));
        q.push(key(u64::MAX, 2));
        let order: Vec<(u64, u64)> = drain_sorted(&mut q).iter().map(|k| (k.time, k.seq)).collect();
        assert_eq!(order, vec![(0, 1), (u64::MAX, 0), (u64::MAX, 2)]);
    }

    #[test]
    fn population_growth_rebuilds_wheel_instead_of_degrading() {
        // The wheel's geometry is chosen from the first `activation`+1
        // keys. Pour in 100× more over the same span, then run a
        // hold-style pop/push interleave whose successors often land
        // inside the active run. Without the growth rebuild the runs
        // are ~100× the target length, splices shift thousands of keys
        // each, and the tight degrade budget below trips; with it the
        // wheel re-sizes as the population doubles and the calendar
        // survives.
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(64);
        q.degrade_moves = 1 << 14;
        let mut state = 7u64;
        let mut seq = 0u64;
        for _ in 0..6_400u64 {
            q.push(key(rand::splitmix64(&mut state) % 8192, seq));
            seq += 1;
        }
        assert_eq!(q.tier(), "calendar");
        for _ in 0..2_000 {
            let popped = q.pop().expect("queue holds keys");
            let gap = 1 + rand::splitmix64(&mut state) % 256;
            q.push(key(popped.time + gap, seq));
            seq += 1;
        }
        assert_eq!(q.tier(), "calendar", "healthy growth must not degrade");
        assert_eq!(drain_sorted(&mut q).len(), 6_400);
    }

    #[test]
    fn splice_storm_degrades_to_heap_and_keeps_order() {
        let mut q = TieredQueue::new(QueueKind::Tiered);
        q.set_activation(0);
        q.degrade_moves = 1 << 12;
        let mut seq = 0u64;
        // Two-time-value pile-up: one giant bucket becomes `current`.
        for _ in 0..2048u64 {
            q.push(key(1_000_001, seq));
            seq += 1;
        }
        // Activate the pile-up bucket: `current` becomes a 2048-key
        // sorted run at 1_000_001.
        assert_eq!(q.pop().map(|k| k.time), Some(1_000_001));
        assert_eq!(q.tier(), "calendar");
        // Keys landing before the whole run splice at its front, each
        // shifting ~2047 elements — the pathology signal.
        for _ in 0..16 {
            q.push(key(1_000_000, seq));
            seq += 1;
        }
        assert_eq!(q.tier(), "heap", "splice storm must trigger the fallback");
        let drained = drain_sorted(&mut q);
        assert_eq!(drained.len(), 2047 + 16);
        assert_eq!(drained[0].time, 1_000_000);
    }
}
