//! Random distributions used by the paper's workloads, implemented from
//! uniform draws so the only external randomness dependency is `rand`.
//!
//! - exponential inter-arrival times (Poisson arrival processes, §5.3 and
//!   §5.4: "an exponential distribution for inter-packet arrival times");
//! - the bimodal RocksDB service distribution (99.5% GET / 0.5% SCAN);
//! - bounded uniform noise for accelerator response times (§5.4: "random
//!   noise with varying magnitude").

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sampleable distribution over non-negative durations (in ticks).
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws one value rounded to integer ticks (at least 0).
    fn sample_ticks<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let v = self.sample(rng);
        if v <= 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

/// Exponential distribution with the given mean.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use xui_des::dist::{Exp, Sample};
///
/// let exp = Exp::with_mean(2000.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let draws: Vec<f64> = (0..10_000).map(|_| exp.sample(&mut rng)).collect();
/// let mean = draws.iter().sum::<f64>() / draws.len() as f64;
/// assert!((mean - 2000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given mean (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self { mean }
    }

    /// Creates from a rate λ (events per tick).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        Self::with_mean(1.0 / rate)
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Sample for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -self.mean * (1.0 - u).ln()
    }
}

/// A constant (deterministic) "distribution".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.0
    }
}

/// Bimodal mixture: with probability `p_heavy` draw `heavy`, else `light`.
/// Models the paper's RocksDB workload (99.5% GET @ 1.2 µs, 0.5% SCAN @
/// 580 µs).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use xui_des::dist::{Bimodal, Sample};
///
/// // Paper workload at 2 GHz: GET = 2400 cycles, SCAN = 1_160_000 cycles.
/// let service = Bimodal::new(0.005, 1_160_000.0, 2_400.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let v = service.sample(&mut rng);
/// assert!(v == 2_400.0 || v == 1_160_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bimodal {
    p_heavy: f64,
    heavy: f64,
    light: f64,
}

impl Bimodal {
    /// Creates a bimodal mixture.
    ///
    /// # Panics
    ///
    /// Panics if `p_heavy` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_heavy: f64, heavy: f64, light: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_heavy), "p_heavy must be in [0,1]");
        Self {
            p_heavy,
            heavy,
            light,
        }
    }

    /// Expected value of the mixture.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.p_heavy * self.heavy + (1.0 - self.p_heavy) * self.light
    }

    /// Draws a value along with whether it was the heavy mode (useful for
    /// tagging requests as GET vs SCAN).
    pub fn sample_tagged<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, bool) {
        let heavy = rng.gen::<f64>() < self.p_heavy;
        (if heavy { self.heavy } else { self.light }, heavy)
    }
}

impl Sample for Bimodal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_tagged(rng).0
    }
}

/// A base value plus uniform noise in `[-magnitude, +magnitude]`,
/// clamped at zero. Models accelerator offload-latency variability
/// (§5.4 "we model offload latencies by adding random noise with varying
/// magnitude to the response time of the accelerator").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Noisy {
    base: f64,
    magnitude: f64,
}

impl Noisy {
    /// Creates a noisy value.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` is negative.
    #[must_use]
    pub fn new(base: f64, magnitude: f64) -> Self {
        assert!(magnitude >= 0.0, "magnitude must be non-negative");
        Self { base, magnitude }
    }

    /// The noiseless base value.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }
}

impl Sample for Noisy {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.magnitude == 0.0 {
            return self.base;
        }
        let noise = rng.gen_range(-self.magnitude..=self.magnitude);
        (self.base + noise).max(0.0)
    }
}

/// An open-loop Poisson arrival process: successive arrival times with
/// exponential gaps.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use xui_des::dist::PoissonProcess;
///
/// // 100k requests/s at 2 GHz ⇒ rate 100_000 / 2e9 per cycle.
/// let mut arrivals = PoissonProcess::with_rate(100_000.0 / 2e9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let t1 = arrivals.next_arrival(&mut rng);
/// let t2 = arrivals.next_arrival(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    gap: Exp,
    next: f64,
}

impl PoissonProcess {
    /// Creates a process with the given event rate (events per tick).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        Self {
            gap: Exp::with_rate(rate),
            next: 0.0,
        }
    }

    /// Mean gap between arrivals, in ticks.
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        self.gap.mean()
    }

    /// Draws the next absolute arrival time in ticks.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.next += self.gap.sample(rng).max(1e-9);
        self.next.round() as u64
    }

    /// Pre-draws the next `n` arrival times, appending them to `out`
    /// (non-decreasing). Draw-for-draw identical to `n` calls of
    /// [`next_arrival`](Self::next_arrival) — batching changes *when*
    /// the randomness is consumed, never *what* is drawn — so open-loop
    /// generators can amortize one engine event per batch instead of
    /// one per packet without perturbing seeded reproducibility.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize, out: &mut Vec<u64>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_arrival(rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn exp_mean_converges() {
        let exp = Exp::with_mean(500.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 500.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn exp_with_rate_inverts_mean() {
        let exp = Exp::with_rate(0.01);
        assert!((exp.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_zero_mean() {
        let _ = Exp::with_mean(0.0);
    }

    #[test]
    fn constant_is_constant() {
        let c = Constant(7.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(c.sample(&mut rng), 7.5);
        assert_eq!(c.sample_ticks(&mut rng), 8);
    }

    #[test]
    fn bimodal_fraction_converges() {
        let b = Bimodal::new(0.005, 1_160_000.0, 2_400.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let heavy = (0..n)
            .filter(|_| b.sample_tagged(&mut rng).1)
            .count();
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.005).abs() < 0.001, "frac={frac}");
        assert!((b.mean() - (0.005 * 1_160_000.0 + 0.995 * 2_400.0)).abs() < 1e-6);
    }

    #[test]
    fn noisy_stays_in_band_and_nonnegative() {
        let n = Noisy::new(4000.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = n.sample(&mut rng);
            assert!((3000.0..=5000.0).contains(&v), "v={v}");
        }
        let clamped = Noisy::new(10.0, 100.0);
        for _ in 0..1000 {
            assert!(clamped.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let n = Noisy::new(4000.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(n.sample(&mut rng), 4000.0);
    }

    #[test]
    fn poisson_arrivals_are_monotonic_and_rate_correct() {
        let mut p = PoissonProcess::with_rate(1.0 / 200.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut last = 0;
        let n = 20_000;
        for _ in 0..n {
            let t = p.next_arrival(&mut rng);
            assert!(t >= last);
            last = t;
        }
        let observed_rate = f64::from(n) / last as f64;
        assert!(
            (observed_rate - 1.0 / 200.0).abs() / (1.0 / 200.0) < 0.05,
            "rate={observed_rate}"
        );
    }

    #[test]
    fn fill_matches_one_by_one_draws() {
        let mut batched = PoissonProcess::with_rate(1.0 / 350.0);
        let mut serial = batched;
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut out = Vec::new();
        batched.fill(&mut rng_a, 1000, &mut out);
        batched.fill(&mut rng_a, 500, &mut out);
        let want: Vec<u64> = (0..1500).map(|_| serial.next_arrival(&mut rng_b)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn same_seed_same_stream() {
        let exp = Exp::with_mean(100.0);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1234);
            (0..100).map(|_| exp.sample_ticks(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1234);
            (0..100).map(|_| exp.sample_ticks(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
