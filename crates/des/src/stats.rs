//! Measurement utilities: an HDR-style log-bucketed histogram for latency
//! percentiles, and cycle accounting for the paper's "free cycles"
//! breakdowns (Figures 8 and 9).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS; // 64 sub-buckets/octave: ≤1.6% error
const EXACT_LIMIT: u64 = SUB_COUNT * 2; // values < 128 recorded exactly

fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ 7
        let octave = (msb - SUB_BITS) as u64; // ≥ 1
        let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
        (EXACT_LIMIT + (octave - 1) * SUB_COUNT + sub) as usize
    }
}

fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < EXACT_LIMIT {
        index
    } else {
        let rel = index - EXACT_LIMIT;
        let octave = rel / SUB_COUNT + 1;
        let sub = rel % SUB_COUNT;
        let width = 1u64 << octave;
        // Lower bound of the bucket, plus (width - 1) for the upper bound.
        ((SUB_COUNT + sub) << octave) + (width - 1)
    }
}

/// A log-bucketed histogram of non-negative integer samples (e.g. latency
/// in cycles), with ≤1.6% relative quantile error and exact min/max/mean.
///
/// # Examples
///
/// ```
/// use xui_des::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((490..=515).contains(&p50), "p50={p50}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one bucket update — the batching
    /// entry point for hot loops that observe the same value repeatedly
    /// (e.g. a poller charging one tick cost per poll): one bucket-index
    /// computation and one add instead of `n`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum (0 if empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at the given percentile (0–100), with ≤1.6% relative
    /// error. Returns 0 for an empty histogram.
    ///
    /// The edges are exact: `percentile(0.0)` returns [`Histogram::min`]
    /// and `percentile(100.0)` returns [`Histogram::max`], bit-for-bit —
    /// summaries feed the results JSON figures are reconstructed from,
    /// so the extremes must not pick up log-bucket rounding.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min();
        }
        if p == 100.0 {
            return self.max();
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_high(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &n) in other.buckets.iter().enumerate() {
            self.buckets[idx] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// A compact summary (count/mean/p50/p95/p99/p999/max).
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max(),
        }
    }
}

/// Compact percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

/// Cycle accounting by named category — how the paper splits a core's time
/// into "networking cycles", "polling cycles" and "free cycles" (Fig 8) or
/// notification overhead vs. free cycles (Fig 9).
///
/// # Examples
///
/// ```
/// use xui_des::stats::CycleAccount;
///
/// let mut acct = CycleAccount::new();
/// acct.add("networking", 400);
/// acct.add("polling", 600);
/// assert_eq!(acct.total(), 1000);
/// assert!((acct.fraction("polling") - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAccount {
    categories: BTreeMap<String, u64>,
}

impl CycleAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds cycles to a category.
    pub fn add(&mut self, category: &str, cycles: u64) {
        *self.categories.entry(category.to_owned()).or_insert(0) += cycles;
    }

    /// Cycles recorded under `category`.
    #[must_use]
    pub fn get(&self, category: &str) -> u64 {
        self.categories.get(category).copied().unwrap_or(0)
    }

    /// Total cycles across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.categories.values().sum()
    }

    /// Fraction of the total in `category` (0.0 if the account is empty).
    #[must_use]
    pub fn fraction(&self, category: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }

    /// Iterates categories in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.categories.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_equals_n_records() {
        let mut batched = Histogram::new();
        let mut looped = Histogram::new();
        for (v, n) in [(3u64, 5u64), (1000, 17), (0, 2), (123_456, 1)] {
            batched.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        batched.record_n(42, 0); // no-op
        assert_eq!(batched, looped);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            let got = h.percentile(p);
            let expected = ((p / 100.0) * EXACT_LIMIT as f64).ceil() as u64 - 1;
            assert!(
                got.abs_diff(expected) <= 1,
                "p{p}: got {got} expected {expected}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        // Every percentile — including the 0/100 edges — is 0 when empty,
        // and none of them panic on the empty-bucket path.
        for p in [0.0, 0.1, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty histogram");
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p999, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn percentile_edges_ignore_bucket_rounding() {
        // 130 lands in a log bucket whose upper bound is 131; p0 used to
        // report that bound instead of the recorded minimum.
        let mut h = Histogram::new();
        h.record(130);
        h.record(1000);
        assert_eq!(h.percentile(0.0), 130);
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(123_456);
        for p in [0.0, 50.0, 100.0] {
            let got = h.percentile(p);
            let err = got.abs_diff(123_456) as f64 / 123_456.0;
            assert!(err <= 0.02, "p{p}: got {got}");
        }
        assert_eq!(h.min(), 123_456);
        assert_eq!(h.max(), 123_456);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0);
        assert!(a.max() >= 1_000_000);
    }

    #[test]
    fn summary_fields_are_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 7);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn cycle_account_fractions() {
        let mut acct = CycleAccount::new();
        acct.add("a", 25);
        acct.add("b", 75);
        acct.add("a", 25);
        assert_eq!(acct.get("a"), 50);
        assert_eq!(acct.total(), 125);
        assert!((acct.fraction("b") - 0.6).abs() < 1e-12);
        assert_eq!(acct.fraction("missing"), 0.0);
        let names: Vec<&str> = acct.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn empty_account_fraction_is_zero() {
        let acct = CycleAccount::new();
        assert_eq!(acct.fraction("anything"), 0.0);
        assert_eq!(acct.total(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Every recorded value falls in a bucket whose representative is
        /// within 2% of it (log-bucket error bound).
        #[test]
        fn bucket_error_bound(v in 0u64..u64::MAX / 2) {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            prop_assert!(high >= v, "high {high} < value {v}");
            if v >= 128 {
                let err = (high - v) as f64 / v as f64;
                prop_assert!(err <= 0.02, "err {err} for value {v}");
            }
        }

        /// Percentiles are monotone in p, bounded by min/max.
        #[test]
        fn percentiles_are_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0;
            for p in 0..=20 {
                let q = h.percentile(p as f64 * 5.0);
                prop_assert!(q >= last);
                last = q;
            }
            prop_assert_eq!(h.percentile(0.0), h.min());
            prop_assert_eq!(h.percentile(100.0), h.max());
        }

        /// The percentile edges are *exact* for arbitrary data: p0 is the
        /// recorded minimum and p100 the recorded maximum, bit-for-bit,
        /// with no log-bucket rounding. Summaries feed the results JSON
        /// the figures are reconstructed from, so the extremes must not
        /// drift to a bucket boundary (e.g. {130, 1000} once reported
        /// p0 = 131, the upper bound of 130's bucket).
        #[test]
        fn percentile_edges_are_exact(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            prop_assert_eq!(h.percentile(0.0), min);
            prop_assert_eq!(h.percentile(100.0), max);
            prop_assert_eq!(h.min(), min);
            prop_assert_eq!(h.max(), max);
        }

        /// Mean is exact regardless of bucketing.
        #[test]
        fn mean_is_exact(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let expected = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean() - expected).abs() < 1e-6);
        }

        /// Merging shards then asking for a quantile gives *exactly* the
        /// same answer as recording every sample into one histogram —
        /// buckets add, so the merged state is identical, making sharded
        /// metric collection lossless.
        #[test]
        fn merge_then_quantile_equals_record_all(
            a in proptest::collection::vec(0u64..5_000_000, 0..200),
            b in proptest::collection::vec(0u64..5_000_000, 0..200),
        ) {
            let mut ha = Histogram::new();
            let mut hb = Histogram::new();
            let mut combined = Histogram::new();
            for &v in &a {
                ha.record(v);
                combined.record(v);
            }
            for &v in &b {
                hb.record(v);
                combined.record(v);
            }
            ha.merge(&hb);
            prop_assert_eq!(&ha, &combined, "merged state differs from combined recording");
            for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                prop_assert_eq!(ha.percentile(p), combined.percentile(p));
            }
            prop_assert_eq!(ha.summary(), combined.summary());
        }

        /// Merging with an empty histogram is an identity in both
        /// directions — in particular it must not poison min (empty's
        /// internal min is the u64::MAX sentinel).
        #[test]
        fn merge_with_empty_is_identity(values in proptest::collection::vec(0u64..1_000_000, 0..100)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut left = h.clone();
            left.merge(&Histogram::new());
            prop_assert_eq!(&left, &h);
            let mut right = Histogram::new();
            right.merge(&h);
            prop_assert_eq!(right.min(), h.min());
            prop_assert_eq!(right.max(), h.max());
            prop_assert_eq!(right.count(), h.count());
            for p in [0.0, 50.0, 100.0] {
                prop_assert_eq!(right.percentile(p), h.percentile(p));
            }
        }
    }
}
