//! A deterministic discrete-event engine.
//!
//! Events are closures scheduled at absolute times. Ties are broken by
//! scheduling order (FIFO among same-time events), which — together with
//! seeded RNG — makes every simulation run bit-reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Simulation time in ticks. Experiments in this workspace interpret ticks
/// as CPU cycles at 2 GHz (2000 ticks = 1 µs), matching the paper's
/// operating point.
pub type SimTime = u64;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A boxed event action.
type Action<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event engine: a clock plus a priority queue of pending events.
///
/// The engine is generic over a world state `S`; each event receives
/// `&mut S` and `&mut Engine<S>` so it can mutate the world and schedule
/// further events.
///
/// # Examples
///
/// ```
/// use xui_des::engine::Engine;
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// let mut log = Vec::new();
/// engine.schedule_at(10, |s, _| s.push(10));
/// engine.schedule_at(5, |s, eng| {
///     s.push(5);
///     eng.schedule_in(2, |s, _| s.push(7));
/// });
/// engine.run(&mut log);
/// assert_eq!(log, vec![5, 7, 10]);
/// ```
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    next_id: u64,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    cancelled: HashSet<EventId>,
    executed: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Engine<S> {
    /// Creates an engine at time 0 with no events.
    #[must_use]
    pub fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events (including cancelled ones not yet
    /// reaped).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — scheduling into the past is a
    /// causality bug in the caller.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) -> EventId {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < {}",
            time,
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            id,
            action: Box::new(action),
        }));
        self.seq += 1;
        id
    }

    /// Schedules `action` after a relative `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) -> EventId {
        let time = self.now.saturating_add(delay);
        self.schedule_at(time, action)
    }

    /// Cancels a previously scheduled event. Cancelling an event that
    /// already ran (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Runs one event; returns `false` if the queue was empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "heap returned out-of-order event");
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(state, self);
            return true;
        }
        false
    }

    /// Runs until the queue drains.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs until the queue drains or the clock passes `until`
    /// (events scheduled later stay pending). Returns the number of
    /// events executed by this call.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) -> u64 {
        let start = self.executed;
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= until => {
                    self.step(state);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(30, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(30));
        engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(10));
        engine.schedule_at(20, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(20));
        engine.run(&mut log);
        assert_eq!(log, vec![10, 20, 30]);
        assert_eq!(engine.executed(), 3);
        assert_eq!(engine.now(), 30);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..10u64 {
            engine.schedule_at(5, move |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| {
                s.push(i);
            });
        }
        engine.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut engine: Engine<u64> = Engine::new();
        let mut count = 0u64;
        fn tick(count: &mut u64, engine: &mut Engine<u64>) {
            *count += 1;
            if *count < 5 {
                engine.schedule_in(10, tick);
            }
        }
        engine.schedule_at(0, tick);
        engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(engine.now(), 40);
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut engine: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        let keep = engine.schedule_at(1, |s: &mut Vec<&'static str>, _: &mut Engine<_>| {
            s.push("keep");
        });
        let drop_it = engine.schedule_at(2, |s: &mut Vec<&'static str>, _: &mut Engine<_>| {
            s.push("drop");
        });
        engine.cancel(drop_it);
        let _ = keep;
        engine.run(&mut log);
        assert_eq!(log, vec!["keep"]);
        assert_eq!(engine.executed(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(10));
        engine.schedule_at(100, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(100));
        let ran = engine.run_until(&mut log, 50);
        assert_eq!(ran, 1);
        assert_eq!(log, vec![10]);
        assert_eq!(engine.now(), 50);
        assert_eq!(engine.pending(), 1);
        engine.run(&mut log);
        assert_eq!(log, vec![10, 100]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(10, |_: &mut (), _: &mut Engine<()>| {});
        engine.run(&mut ());
        engine.schedule_at(5, |_: &mut (), _: &mut Engine<()>| {});
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Execution order is a stable sort of (time, insertion order).
        #[test]
        fn execution_is_stable_time_sort(times in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
            let mut log = Vec::new();
            for (i, t) in times.iter().copied().enumerate() {
                engine.schedule_at(t, move |s: &mut Vec<(u64, usize)>, _: &mut Engine<_>| {
                    s.push((t, i));
                });
            }
            engine.run(&mut log);
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort_by_key(|&(t, i)| (t, i));
            prop_assert_eq!(log, expected);
        }
    }
}
