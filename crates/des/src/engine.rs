//! A deterministic discrete-event engine.
//!
//! Events are closures scheduled at absolute times. Ties are broken by
//! scheduling order (FIFO among same-time events), which — together with
//! seeded RNG — makes every simulation run bit-reproducible.
//!
//! # Hot-path layout
//!
//! Event actions live in a slab (`Vec<Slot>` plus a free list); the
//! event queue orders small `Copy` keys only. This keeps key moves
//! cheap (24 bytes per element instead of a fat struct with a boxed
//! closure) and makes cancellation O(1): the slot is freed **eagerly** —
//! the action is dropped and the slot returned to the free list
//! immediately — while the queue entry remains as a tombstone, detected
//! by generation mismatch when it surfaces. No `HashSet` of cancelled
//! ids is consulted on the pop path.
//!
//! The queue itself is tiered (see [`crate::calendar`]): a binary heap
//! below [`DEFAULT_ACTIVATION`] pending keys — so small simulations run
//! the code path they always did — and a calendar wheel with an
//! overflow ladder above it, giving O(1) amortized enqueue/dequeue for
//! the bulk timer churn of datacenter-scale workloads. Keys are totally
//! ordered by (time, seq), so the tier in use can never change the
//! execution order: results are byte-identical across [`QueueKind`]s.

use crate::calendar::{QueueKey, TieredQueue};

pub use crate::calendar::{QueueKind, DEFAULT_ACTIVATION};

/// Simulation time in ticks. Experiments in this workspace interpret ticks
/// as CPU cycles at 2 GHz (2000 ticks = 1 µs), matching the paper's
/// operating point.
pub type SimTime = u64;

/// Handle to a scheduled event, usable for cancellation.
///
/// Encodes `(generation << 32) | slot`; the generation makes handles to
/// completed/cancelled events permanently stale even after the slot is
/// reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        Self((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A boxed event action.
type Action<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

/// Observer hooks for engine activity, used by the telemetry layer to
/// record schedule/fire/cancel events and queue-depth samples without
/// the engine depending on any telemetry crate.
///
/// All methods have empty default bodies, so a probe implements only
/// what it cares about. When no probe is installed the engine pays one
/// `Option` check per operation — nothing else.
pub trait EngineProbe {
    /// An event was scheduled at absolute time `at` while the clock read
    /// `now`; `pending` is the live-event count *after* the insert.
    fn on_schedule(&mut self, now: SimTime, at: SimTime, pending: usize) {
        let _ = (now, at, pending);
    }

    /// An event fired at time `at`; `pending` is the live-event count
    /// *after* removal (the fired event no longer counts).
    fn on_fire(&mut self, at: SimTime, pending: usize) {
        let _ = (at, pending);
    }

    /// A live event was cancelled at time `now`; `pending` is the count
    /// *after* the cancellation. Stale/no-op cancels are not reported.
    fn on_cancel(&mut self, now: SimTime, pending: usize) {
        let _ = (now, pending);
    }
}

/// One slab entry. `gen` is bumped every time the slot is vacated, so
/// heap keys and `EventId`s carrying an old generation are recognized as
/// tombstones/stale in O(1).
struct Slot<S> {
    gen: u32,
    action: Option<Action<S>>,
}

/// The event engine: a clock plus a priority queue of pending events.
///
/// The engine is generic over a world state `S`; each event receives
/// `&mut S` and `&mut Engine<S>` so it can mutate the world and schedule
/// further events.
///
/// # Examples
///
/// ```
/// use xui_des::engine::Engine;
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// let mut log = Vec::new();
/// engine.schedule_at(10, |s, _| s.push(10));
/// engine.schedule_at(5, |s, eng| {
///     s.push(5);
///     eng.schedule_in(2, |s, _| s.push(7));
/// });
/// engine.run(&mut log);
/// assert_eq!(log, vec![5, 7, 10]);
/// ```
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    queue: TieredQueue,
    slots: Vec<Slot<S>>,
    free: Vec<u32>,
    /// Scheduled, not-yet-run, not-cancelled events.
    live: usize,
    executed: u64,
    probe: Option<Box<dyn EngineProbe>>,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Engine<S> {
    /// Creates an engine at time 0 with no events, using the default
    /// tiered queue ([`QueueKind::Tiered`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_queue(QueueKind::default())
    }

    /// Creates an engine with an explicit [`QueueKind`]. Execution order
    /// — and therefore every simulation result — is identical across
    /// kinds; only the queue-maintenance cost differs. `QueueKind::Heap`
    /// exists as the baseline for capacity benchmarks.
    #[must_use]
    pub fn with_queue(kind: QueueKind) -> Self {
        Self {
            now: 0,
            seq: 0,
            queue: TieredQueue::new(kind),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            executed: 0,
            probe: None,
        }
    }

    /// The [`QueueKind`] this engine was built with.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The queue tier currently ordering events: `"heap"` (below the
    /// activation threshold, or after a pathological-distribution
    /// fallback) or `"calendar"`.
    #[must_use]
    pub fn queue_tier(&self) -> &'static str {
        self.queue.tier()
    }

    /// Cumulative queue-maintenance work in key touches (pushes, sort
    /// and rebuild moves, bucket-activation scans). A diagnostic for
    /// tests and benchmarks: e.g. a far-future timer parked in the
    /// overflow ladder must not add a scan per executed event.
    #[must_use]
    pub fn queue_work(&self) -> u64 {
        self.queue.work()
    }

    /// Overrides the heap→calendar activation threshold (default
    /// [`DEFAULT_ACTIVATION`] stored keys). Mainly for tests and
    /// benchmarks: 0 engages the calendar from the first event.
    pub fn set_queue_activation(&mut self, keys: usize) {
        self.queue.set_activation(keys);
    }

    /// Installs an [`EngineProbe`]; replaces any existing probe.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// Removes and returns the installed probe, if any.
    pub fn take_probe(&mut self) -> Option<Box<dyn EngineProbe>> {
        self.probe.take()
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events (scheduled, not yet run, not cancelled).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Slab capacity currently allocated (diagnostics; bounded by the
    /// peak number of simultaneously pending events, not by throughput).
    #[must_use]
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `action` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — scheduling into the past is a
    /// causality bug in the caller.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) -> EventId {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < {}",
            time,
            self.now
        );
        let action: Action<S> = Box::new(action);
        let slot = match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.slots[slot as usize];
                debug_assert!(entry.action.is_none(), "free list returned an occupied slot");
                entry.action = Some(action);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX simultaneously pending events");
                self.slots.push(Slot {
                    gen: 0,
                    action: Some(action),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.queue.push(QueueKey {
            time,
            seq: self.seq,
            slot,
            gen,
        });
        self.seq += 1;
        self.live += 1;
        if let Some(probe) = &mut self.probe {
            probe.on_schedule(self.now, time, self.live);
        }
        EventId::new(slot, gen)
    }

    /// Schedules `action` after a relative `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) -> EventId {
        let time = self.now.saturating_add(delay);
        self.schedule_at(time, action)
    }

    /// Cancels a previously scheduled event, **eagerly** dropping its
    /// action and returning its slab slot to the free list; only a
    /// tombstone heap key remains. Cancelling an event that already ran
    /// (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let slot = id.slot() as usize;
        if let Some(entry) = self.slots.get_mut(slot) {
            if entry.gen == id.gen() && entry.action.is_some() {
                entry.action = None;
                entry.gen = entry.gen.wrapping_add(1);
                self.free.push(id.slot());
                self.live -= 1;
                if let Some(probe) = &mut self.probe {
                    probe.on_cancel(self.now, self.live);
                }
            }
        }
    }

    /// Takes the action for a surfaced queue key, freeing its slot;
    /// `None` if the key is a tombstone (its event was cancelled).
    fn claim(&mut self, key: QueueKey) -> Option<Action<S>> {
        let entry = &mut self.slots[key.slot as usize];
        if entry.gen != key.gen {
            return None;
        }
        let action = entry.action.take()?;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        Some(action)
    }

    /// Runs one event; returns `false` if no live event remains.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(key) = self.queue.pop() {
            let Some(action) = self.claim(key) else {
                continue; // tombstone
            };
            debug_assert!(key.time >= self.now, "queue returned out-of-order event");
            self.now = key.time;
            self.executed += 1;
            if let Some(probe) = &mut self.probe {
                probe.on_fire(key.time, self.live);
            }
            action(state, self);
            return true;
        }
        false
    }

    /// Time of the next live event, discarding any tombstones on top of
    /// the queue along the way.
    fn next_event_time(&mut self) -> Option<SimTime> {
        while let Some(key) = self.queue.peek() {
            let entry = &self.slots[key.slot as usize];
            if entry.gen == key.gen && entry.action.is_some() {
                return Some(key.time);
            }
            self.queue.pop();
        }
        None
    }

    /// Runs until the queue drains.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs until the queue drains or the clock passes `until`
    /// (events scheduled later stay pending). Returns the number of
    /// events executed by this call.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) -> u64 {
        let start = self.executed;
        while self.next_event_time().is_some_and(|t| t <= until) {
            self.step(state);
        }
        self.now = self.now.max(until);
        self.executed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(30, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(30));
        engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(10));
        engine.schedule_at(20, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(20));
        engine.run(&mut log);
        assert_eq!(log, vec![10, 20, 30]);
        assert_eq!(engine.executed(), 3);
        assert_eq!(engine.now(), 30);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..10u64 {
            engine.schedule_at(5, move |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| {
                s.push(i);
            });
        }
        engine.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut engine: Engine<u64> = Engine::new();
        let mut count = 0u64;
        fn tick(count: &mut u64, engine: &mut Engine<u64>) {
            *count += 1;
            if *count < 5 {
                engine.schedule_in(10, tick);
            }
        }
        engine.schedule_at(0, tick);
        engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(engine.now(), 40);
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut engine: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        let keep = engine.schedule_at(1, |s: &mut Vec<&'static str>, _: &mut Engine<_>| {
            s.push("keep");
        });
        let drop_it = engine.schedule_at(2, |s: &mut Vec<&'static str>, _: &mut Engine<_>| {
            s.push("drop");
        });
        engine.cancel(drop_it);
        let _ = keep;
        engine.run(&mut log);
        assert_eq!(log, vec!["keep"]);
        assert_eq!(engine.executed(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(10));
        engine.schedule_at(100, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(100));
        let ran = engine.run_until(&mut log, 50);
        assert_eq!(ran, 1);
        assert_eq!(log, vec![10]);
        assert_eq!(engine.now(), 50);
        assert_eq!(engine.pending(), 1);
        engine.run(&mut log);
        assert_eq!(log, vec![10, 100]);
    }

    #[test]
    fn run_until_ignores_cancelled_event_on_top() {
        // A tombstone heap entry inside the horizon must not trick
        // run_until into executing a live event beyond the horizon.
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        let inside = engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| {
            s.push(10);
        });
        engine.schedule_at(100, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(100));
        engine.cancel(inside);
        let ran = engine.run_until(&mut log, 50);
        assert_eq!(ran, 0);
        assert!(log.is_empty());
        assert_eq!(engine.now(), 50);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(10, |_: &mut (), _: &mut Engine<()>| {});
        engine.run(&mut ());
        engine.schedule_at(5, |_: &mut (), _: &mut Engine<()>| {});
    }

    #[test]
    fn cancel_frees_slot_eagerly_and_reschedule_reuses_it() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let a = engine.schedule_at(10, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(1));
        assert_eq!(engine.slab_capacity(), 1);
        engine.cancel(a);
        assert_eq!(engine.pending(), 0);

        // The freed slot is reused immediately — capacity does not grow.
        let b = engine.schedule_at(20, |s: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| s.push(2));
        assert_eq!(engine.slab_capacity(), 1);
        assert_ne!(a, b, "reused slot must carry a fresh generation");

        // The stale handle no longer cancels anything.
        engine.cancel(a);
        assert_eq!(engine.pending(), 1);

        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![2]);
        assert_eq!(engine.executed(), 1);
    }

    #[test]
    fn heavy_cancel_reschedule_churn_keeps_slab_small() {
        // A timer wheel pattern: schedule, cancel, reschedule, repeatedly.
        // With eager freeing the slab stays at O(live), not O(churn).
        let mut engine: Engine<u64> = Engine::new();
        let mut last = None;
        for i in 0..10_000u64 {
            if let Some(id) = last.take() {
                engine.cancel(id);
            }
            last = Some(
                engine.schedule_at(i + 1, |s: &mut u64, _: &mut Engine<u64>| *s += 1),
            );
        }
        assert_eq!(engine.pending(), 1);
        assert!(
            engine.slab_capacity() <= 2,
            "slab grew to {} despite eager slot reuse",
            engine.slab_capacity()
        );
        let mut hits = 0u64;
        engine.run(&mut hits);
        assert_eq!(hits, 1, "only the last scheduled event survives");
    }

    #[test]
    fn probe_sees_schedule_fire_cancel_exactly() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Log {
            events: Vec<(&'static str, SimTime, usize)>,
        }
        struct TestProbe(Rc<RefCell<Log>>);
        impl EngineProbe for TestProbe {
            fn on_schedule(&mut self, _now: SimTime, at: SimTime, pending: usize) {
                self.0.borrow_mut().events.push(("sched", at, pending));
            }
            fn on_fire(&mut self, at: SimTime, pending: usize) {
                self.0.borrow_mut().events.push(("fire", at, pending));
            }
            fn on_cancel(&mut self, now: SimTime, pending: usize) {
                self.0.borrow_mut().events.push(("cancel", now, pending));
            }
        }

        let log = Rc::new(RefCell::new(Log::default()));
        let mut engine: Engine<()> = Engine::new();
        engine.set_probe(Box::new(TestProbe(Rc::clone(&log))));

        let _a = engine.schedule_at(10, |_: &mut (), _: &mut Engine<()>| {});
        let b = engine.schedule_at(20, |_: &mut (), _: &mut Engine<()>| {});
        engine.cancel(b);
        engine.cancel(b); // stale: must not be reported
        engine.run(&mut ());
        assert!(engine.take_probe().is_some());
        assert!(engine.take_probe().is_none());

        assert_eq!(
            log.borrow().events,
            vec![
                ("sched", 10, 1),
                ("sched", 20, 2),
                ("cancel", 0, 1),
                ("fire", 10, 0),
            ]
        );
    }

    #[test]
    fn queue_kinds_are_observably_identical_on_a_small_run() {
        let run = |kind: QueueKind| {
            let mut engine: Engine<Vec<u64>> = Engine::with_queue(kind);
            engine.set_queue_activation(0);
            let mut log = Vec::new();
            let cancel = engine.schedule_at(7, |s: &mut Vec<u64>, _: &mut Engine<_>| s.push(7));
            for t in [3u64, 9, 3, 1] {
                engine.schedule_at(t, move |s: &mut Vec<u64>, _: &mut Engine<_>| s.push(t));
            }
            engine.cancel(cancel);
            engine.run_until(&mut log, 3);
            engine.schedule_in(0, |s: &mut Vec<u64>, _: &mut Engine<_>| s.push(100));
            engine.run(&mut log);
            (log, engine.now(), engine.executed())
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Tiered));
    }

    #[test]
    fn calendar_engine_does_not_scan_far_future_event_per_step() {
        // The run_until horizon fast path: a timer parked ~10^12 ticks
        // out must sit untouched in the overflow ladder while thousands
        // of near events churn — not be re-examined on every step.
        let mut engine: Engine<u64> = Engine::new();
        engine.set_queue_activation(0);
        engine.schedule_at(1_000_000_000_000, |s: &mut u64, _: &mut Engine<u64>| *s += 1);
        fn tick(count: &mut u64, engine: &mut Engine<u64>) {
            *count += 1;
            if *count < 4096 {
                engine.schedule_in(100, tick);
            }
        }
        engine.schedule_at(1, tick);
        let mut count = 0u64;
        // Step through many horizons, like a polling co-simulation loop.
        for h in 1..=1024u64 {
            engine.run_until(&mut count, h * 500);
        }
        assert_eq!(count, 4096);
        assert_eq!(engine.queue_tier(), "calendar");
        assert_eq!(engine.pending(), 1, "the far-future timer survives");
        // Work is key touches: each of the ~4k events costs O(1)
        // amortized. If the far event were scanned per step or per
        // horizon, work would be ~4096 * 4096.
        let work = engine.queue_work();
        assert!(work < 4096 * 16, "queue work blew up: {work}");
    }

    #[test]
    fn stale_id_after_execution_is_inert() {
        let mut engine: Engine<u64> = Engine::new();
        let id = engine.schedule_at(1, |s: &mut u64, _: &mut Engine<u64>| *s += 1);
        let mut n = 0u64;
        engine.run(&mut n);
        assert_eq!(n, 1);
        // Slot was freed by execution; a newcomer takes it.
        let id2 = engine.schedule_at(2, |s: &mut u64, _: &mut Engine<u64>| *s += 10);
        engine.cancel(id); // stale: must not hit id2's slot
        engine.run(&mut n);
        assert_eq!(n, 11);
        let _ = id2;
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Execution order is a stable sort of (time, insertion order).
        #[test]
        fn execution_is_stable_time_sort(times in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
            let mut log = Vec::new();
            for (i, t) in times.iter().copied().enumerate() {
                engine.schedule_at(t, move |s: &mut Vec<(u64, usize)>, _: &mut Engine<_>| {
                    s.push((t, i));
                });
            }
            engine.run(&mut log);
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort_by_key(|&(t, i)| (t, i));
            prop_assert_eq!(log, expected);
        }
    }

    /// Interprets a random op tape against an engine and returns every
    /// observable: fired tags in order, clock, executed count, pending.
    ///
    /// Ops: 0 = schedule near (within ~1k ticks), 1 = schedule far
    /// (up to ~10^9 ticks out — lands in the calendar's overflow
    /// ladder), 2 = cancel a random outstanding id (tombstones inside
    /// and outside the active bucket horizon), 3 = run_until a horizon.
    fn replay_ops(
        kind: QueueKind,
        activation: usize,
        ops: &[(u8, u64)],
    ) -> (Vec<u64>, SimTime, u64, usize) {
        let mut engine: Engine<Vec<u64>> = Engine::with_queue(kind);
        engine.set_queue_activation(activation);
        let mut log = Vec::new();
        let mut tag = 0u64;
        let mut ids: Vec<EventId> = Vec::new();
        for &(op, a) in ops {
            match op % 4 {
                0 | 1 => {
                    let span = if op % 4 == 0 { 1_000 } else { 1_000_000_000 };
                    let t = engine.now().saturating_add(a % span);
                    let my_tag = tag;
                    tag += 1;
                    ids.push(engine.schedule_at(t, move |s: &mut Vec<u64>, _: &mut Engine<_>| {
                        s.push(my_tag);
                    }));
                }
                2 => {
                    if !ids.is_empty() {
                        let id = ids.remove(a as usize % ids.len());
                        engine.cancel(id); // may already be stale — same both sides
                    }
                }
                _ => {
                    let horizon = engine.now().saturating_add(a % 100_000);
                    engine.run_until(&mut log, horizon);
                }
            }
        }
        engine.run(&mut log);
        (log, engine.now(), engine.executed(), engine.pending())
    }

    proptest! {
        /// The tentpole invariant: the calendar-tier engine is
        /// observably identical to the plain binary-heap engine under
        /// arbitrary schedule/cancel/run_until interleavings.
        #[test]
        fn calendar_and_heap_engines_are_equivalent(
            ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..250),
        ) {
            let heap = replay_ops(QueueKind::Heap, 0, &ops);
            // Activation 0: pure calendar path from the first event.
            prop_assert_eq!(&replay_ops(QueueKind::Tiered, 0, &ops), &heap);
            // A mid-tape threshold: upgrade happens somewhere inside the run.
            prop_assert_eq!(&replay_ops(QueueKind::Tiered, 16, &ops), &heap);
        }
    }

    proptest! {
        /// Random interleavings of schedule/cancel: exactly the
        /// never-cancelled events run, in (time, seq) order, and the slab
        /// never exceeds the peak number of simultaneously live events.
        #[test]
        fn cancellation_churn_is_exact(
            ops in proptest::collection::vec((0u64..500, any::<bool>()), 1..200),
        ) {
            let mut engine: Engine<Vec<u64>> = Engine::new();
            let mut expected: Vec<(u64, u64)> = Vec::new(); // (time, tag)
            let mut tag = 0u64;
            let mut cancellable: Vec<(EventId, u64)> = Vec::new();
            for (t, do_cancel) in ops {
                if do_cancel && !cancellable.is_empty() {
                    let (id, victim_tag) = cancellable.remove(t as usize % cancellable.len());
                    engine.cancel(id);
                    expected.retain(|&(_, tg)| tg != victim_tag);
                } else {
                    let my_tag = tag;
                    tag += 1;
                    let id = engine.schedule_at(t, move |s: &mut Vec<u64>, _: &mut Engine<_>| {
                        s.push(my_tag);
                    });
                    cancellable.push((id, my_tag));
                    expected.push((t, my_tag));
                }
            }
            let mut log = Vec::new();
            engine.run(&mut log);
            expected.sort_by_key(|&(t, tg)| (t, tg)); // tag order == seq order
            let expected_tags: Vec<u64> = expected.iter().map(|&(_, tg)| tg).collect();
            prop_assert_eq!(log, expected_tags);
            prop_assert_eq!(engine.pending(), 0);
        }
    }
}
