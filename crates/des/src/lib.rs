//! # xui-des
//!
//! A deterministic discrete-event simulation kernel used by the
//! system-level experiments of the xUI reproduction (Figures 6–9 of the
//! paper): an event [`engine`](engine::Engine), the random
//! [`dist`]ributions the paper's workloads draw from (Poisson arrivals,
//! bimodal service times, noisy offload latencies), and measurement
//! [`stats`] (log-bucketed latency histograms, cycle accounting).
//!
//! Time is measured in integer ticks; the experiments interpret ticks as
//! CPU cycles at the paper's 2 GHz operating point (2000 ticks = 1 µs).
//!
//! ## Example: an M/D/1 queue in a few lines
//!
//! ```
//! use rand::SeedableRng;
//! use xui_des::dist::PoissonProcess;
//! use xui_des::engine::Engine;
//! use xui_des::stats::Histogram;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut arrivals = PoissonProcess::with_rate(0.5 / 100.0); // 50% load
//! let mut engine: Engine<(u64, Histogram)> = Engine::new(); // (server_free_at, latencies)
//! for _ in 0..10_000 {
//!     let t = arrivals.next_arrival(&mut rng);
//!     engine.schedule_at(t, move |(free_at, lat), eng| {
//!         let start = eng.now().max(*free_at);
//!         *free_at = start + 100; // deterministic 100-tick service
//!         lat.record(*free_at - eng.now());
//!     });
//! }
//! let mut state = (0u64, Histogram::new());
//! engine.run(&mut state);
//! assert!(state.1.mean() >= 100.0); // waiting adds to service time
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod stats;

pub use engine::{Engine, EventId, QueueKind, SimTime};
pub use stats::{CycleAccount, Histogram, Summary};
